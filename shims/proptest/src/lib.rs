//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of proptest this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_filter`/`boxed`, range /
//! tuple / collection / `Just` / simple-regex strategies, `any::<T>()`,
//! and the `proptest!` / `prop_assert*!` / `prop_oneof!` macros.
//!
//! Differences from upstream, deliberate for a hermetic build:
//!
//! - **No shrinking.** A failing case panics with the generated inputs in
//!   the assertion message instead of a minimized counterexample.
//! - **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name (plus an optional `PROPTEST_SEED` environment
//!   override), so failures reproduce exactly across runs.
//! - **String strategies** accept only the tiny regex subset the
//!   workspace uses (`.{a,b}`-style length classes); anything else falls
//!   back to bounded arbitrary printable strings.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Test-runner plumbing: the RNG handed to strategies.
pub mod test_runner {
    use super::*;

    /// The random source driving one property test.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) ChaCha8Rng);

    impl TestRng {
        /// Creates a deterministic RNG for the named test, honouring a
        /// `PROPTEST_SEED` environment override.
        pub fn for_test(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis.
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            if let Ok(v) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = v.parse::<u64>() {
                    seed ^= extra;
                }
            }
            Self(ChaCha8Rng::seed_from_u64(seed))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

use test_runner::TestRng;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred`, retrying (bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy {
    type Value: Debug;
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(std::rc::Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(std::rc::Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.whence);
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T: Debug> Union<T> {
    /// Creates a union over the given alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self(options)
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.0.len());
        self.0[i].sample(rng)
    }
}

// ---------------------------------------------------------------- ranges --

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.random_range(self.clone())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

// ---------------------------------------------------------------- tuples --

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ------------------------------------------------------------- arbitrary --

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly printable ASCII with occasional wider code points.
        if rng.random_bool(0.9) {
            char::from(rng.random_range(0x20u8..0x7f))
        } else {
            char::from_u32(rng.random_range(0xa0u32..0x2fff)).unwrap_or('\u{fffd}')
        }
    }
}

/// Strategy returned by [`any`].
pub struct ArbitraryStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(PhantomData)
}

// ------------------------------------------------------------- str regex --

/// `&str` literals act as (very small subset) regex string strategies.
///
/// Supported: `X{a,b}` where `X` is `.` (any char except newlines) or a
/// character class `[...]` with literal characters and `a-z` ranges.
/// Unsupported patterns fall back to arbitrary strings of length 0..=64.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (lens, class) = match parse_simple_regex(self) {
            Some(parsed) => parsed,
            None => (0..=64, CharClass::Any),
        };
        let len = rng.random_range(lens);
        (0..len).map(|_| class.sample(rng)).collect()
    }
}

enum CharClass {
    /// Any char except `\n`/`\r` (regex `.` semantics).
    Any,
    /// An explicit set of chars.
    Set(Vec<char>),
}

impl CharClass {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            CharClass::Any => loop {
                let c = char::arbitrary(rng);
                if c != '\n' && c != '\r' {
                    return c;
                }
            },
            CharClass::Set(chars) => chars[rng.random_range(0..chars.len())],
        }
    }
}

fn parse_simple_regex(pattern: &str) -> Option<(RangeInclusive<usize>, CharClass)> {
    let (class, rest) = if let Some(rest) = pattern.strip_prefix('.') {
        (CharClass::Any, rest)
    } else if let Some(end) = pattern.strip_prefix('[').and_then(|r| r.find(']')) {
        // `end` indexes the `]` in the tail after `[`, so the class body
        // is pattern[1..=end] — the bracket itself is not part of it.
        let body = &pattern[1..=end];
        let mut chars = Vec::new();
        let raw: Vec<char> = body.chars().collect();
        let mut i = 0;
        while i < raw.len() {
            if i + 2 < raw.len() && raw[i + 1] == '-' {
                let (lo, hi) = (raw[i] as u32, raw[i + 2] as u32);
                for c in lo..=hi {
                    chars.extend(char::from_u32(c));
                }
                i += 3;
            } else {
                chars.push(raw[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        (CharClass::Set(chars), &pattern[end + 2..])
    } else {
        return None;
    };
    if rest.is_empty() {
        return Some((1..=1, class));
    }
    if rest == "*" {
        return Some((0..=64, class));
    }
    if rest == "+" {
        return Some((1..=64, class));
    }
    let body = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match body.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = body.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((lo..=hi, class))
}

// ------------------------------------------------------------ collection --

/// Collection strategies (`prop::collection::vec`).
pub mod prop {
    /// Re-export for `prop::collection::vec(...)` paths.
    pub mod collection {
        use super::super::*;

        /// Accepted size arguments for [`vec`].
        pub trait SizeRange {
            /// Draws a concrete size.
            fn sample_size(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn sample_size(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for Range<usize> {
            fn sample_size(&self, rng: &mut TestRng) -> usize {
                rng.random_range(self.clone())
            }
        }

        impl SizeRange for RangeInclusive<usize> {
            fn sample_size(&self, rng: &mut TestRng) -> usize {
                rng.random_range(self.clone())
            }
        }

        /// Strategy for vectors of `element` values with `size` entries.
        pub struct VecStrategy<S, Z> {
            element: S,
            size: Z,
        }

        impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.sample_size(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Generates vectors whose length is drawn from `size`.
        pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
            VecStrategy { element, size }
        }
    }
}

// ---------------------------------------------------------------- macros --

/// Runs each contained test function over many random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&{ $strat }, &mut rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner::TestRng;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_tuples_vec_and_map() {
        let mut rng = TestRng::for_test("shim_smoke");
        let s = prop::collection::vec((0.0f32..1.0, 1usize..4), 2..5).prop_map(|v| v.len());
        for _ in 0..50 {
            let n = s.sample(&mut rng);
            assert!((2..5).contains(&n));
        }
    }

    #[test]
    fn regex_subset() {
        let mut rng = TestRng::for_test("regex");
        for _ in 0..50 {
            let s = ".{0,12}".sample(&mut rng);
            assert!(s.chars().count() <= 12);
            assert!(!s.contains('\n'));
            let t = "[a-c]{2,3}".sample(&mut rng);
            assert!((2..=3).contains(&t.chars().count()));
            assert!(t.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn oneof_and_just() {
        let mut rng = TestRng::for_test("oneof");
        let s = prop_oneof![Just(1usize), (5usize..7).prop_map(|x| x)];
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!(v == 1 || (5..7).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_binds_arguments(a in 0u64..10, b in prop::collection::vec(any::<bool>(), 0..4)) {
            prop_assert!(a < 10);
            prop_assert!(b.len() < 4);
        }
    }
}
