//! Offline vendored subset of the `rand` 0.9 API.
//!
//! The build environment has no network access and no crates.io cache, so
//! the workspace ships a minimal, self-contained implementation of the
//! slice of `rand` it actually uses: [`RngCore`], [`Rng::random_range`],
//! [`Rng::random_bool`], and [`SeedableRng::seed_from_u64`]. The sampling
//! algorithms are not bit-compatible with upstream `rand`; everything in
//! this workspace that depends on exact reproducibility seeds its own
//! generator, so only self-consistency matters.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit generator.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable generators; mirrors `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 and constructs the
    /// generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled uniformly from a range.
///
/// The blanket [`SampleRange`] impls below are parameterised over this
/// trait (one impl per range *shape*, not per element type) so that type
/// inference can unify the range's element type with the result type the
/// caller's context demands — matching upstream `rand`'s behaviour.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "empty range");
        low + (high - low) * unit_f64(rng.next_u64())
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "empty range");
        low + (high - low) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "empty range");
        let v = low + (high - low) * unit_f64(rng.next_u64()) as f32;
        // Guard against rounding up to the exclusive bound.
        if v >= high {
            low
        } else {
            v
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "empty range");
        low + (high - low) * unit_f64(rng.next_u64()) as f32
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range");
                let span = (high as i128 - low as i128) as u128;
                let idx = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + idx) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty range");
                let span = (high as i128 - low as i128 + 1) as u128;
                let idx = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + idx) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform sampling from a range type; mirrors `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Module alias so `rand::rngs::...`-style paths keep working if needed.
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // Weak mixing, good enough to exercise the range code.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let f = rng.random_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let d = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&d));
            let i = rng.random_range(3usize..10);
            assert!((3..10).contains(&i));
            let j = rng.random_range(1i64..=4);
            assert!((1..=4).contains(&j));
        }
    }

    #[test]
    fn bool_probability_edges() {
        let mut rng = Counter(1);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
