//! Offline vendored subset of the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of criterion this workspace's benches use: `Criterion`,
//! `benchmark_group` with `sample_size`/`throughput`/`bench_function`/
//! `finish`, `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is a simple warm-up + timed-batch loop reporting the mean
//! and min/max per-iteration time (plus element throughput when set). It
//! has no statistical outlier analysis, HTML reports, or saved baselines;
//! results print to stdout, one line per benchmark. Honoring upstream's
//! CLI contract just enough for `cargo bench` pass-through arguments, a
//! single positional argument acts as a substring filter on benchmark
//! names and `--bench`/`--test`-style flags are ignored.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterised benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id like `name/param`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    /// Mean/min/max per-iteration time of the measured batches.
    result: Option<(Duration, Duration, Duration)>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine`: warm-up, then `sample_size` timed batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the batch so each one takes roughly 5 ms.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(200) {
            std::hint::black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let batch = ((0.005 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed() / u32::try_from(batch).expect("batch fits u32");
            total += elapsed;
            min = min.min(elapsed);
            max = max.max(elapsed);
        }
        let mean = total / u32::try_from(self.sample_size).expect("sample size fits u32");
        self.result = Some((mean, min, max));
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Sets the per-iteration throughput annotation.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides measurement time (accepted for API parity; unused).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut bencher = Bencher {
            result: None,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&full, self.throughput, bencher.result);
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes its extra args through; treat the first
        // non-flag argument as a name filter like upstream does.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    /// Accepted for API parity with upstream's configuration chain.
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.matches(name) {
            let mut bencher = Bencher {
                result: None,
                sample_size: 10,
            };
            f(&mut bencher);
            report(name, None, bencher.result);
        }
        self
    }

    /// Final-report hook (no-op; exists for API parity).
    pub fn final_summary(&mut self) {}
}

fn report(
    name: &str,
    throughput: Option<Throughput>,
    result: Option<(Duration, Duration, Duration)>,
) {
    let Some((mean, min, max)) = result else {
        println!("{name:<48} (no measurement)");
        return;
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / mean.as_secs_f64().max(1e-12);
            format!("  {per_sec:>12.0} elem/s")
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / mean.as_secs_f64().max(1e-12);
            format!("  {:>12.1} MiB/s", per_sec / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!(
        "{name:<48} mean {:>12?}  [min {:>12?}, max {:>12?}]{rate}",
        mean, min, max
    );
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut ran = false;
        {
            let mut group = c.benchmark_group("shim");
            group.sample_size(2);
            group.throughput(Throughput::Elements(10));
            group.bench_function(BenchmarkId::from_parameter(1), |b| {
                b.iter(|| {
                    ran = true;
                    std::hint::black_box(1 + 1)
                })
            });
            group.finish();
        }
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("scan", 4).to_string(), "scan/4");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
