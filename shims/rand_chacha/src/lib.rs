//! Offline vendored ChaCha8 random number generator.
//!
//! A self-contained ChaCha8 keystream generator implementing the workspace
//! `rand` shim's [`RngCore`]/[`SeedableRng`] traits. The keystream is the
//! standard ChaCha construction (8 rounds, 32-byte key, 64-bit block
//! counter), so the statistical quality matches the real `rand_chacha`
//! crate; the word-to-output mapping is not bit-compatible with upstream,
//! which nothing in this workspace relies on.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// The ChaCha8 generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// Block counter (state words 12..14).
    counter: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "exhausted".
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let mut working = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            block: [0u32; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniformity_smoke() {
        // Mean of many uniform [0,1) draws must be close to 0.5.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(0.0f64..1.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bit_balance() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64,000 bits, expect ~32,000 ones within 5 sigma (~630).
        assert!((i64::from(ones) - 32_000).abs() < 1_000, "ones {ones}");
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
