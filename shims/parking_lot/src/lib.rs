//! Offline vendored subset of the `parking_lot` API, backed by `std::sync`.
//!
//! Provides [`Mutex`] and [`RwLock`] with `parking_lot`'s non-poisoning
//! guard-returning API. Lock poisoning is handled by unwrapping into the
//! inner guard: a panic while holding a lock aborts the surrounding test
//! or request anyway, matching `parking_lot`'s semantics closely enough
//! for this workspace.

#![forbid(unsafe_code)]

use std::sync;

/// A mutual exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert!(l.try_read().is_some());
        assert!(l.try_write().is_some());
    }
}
