//! Estimator-quality suite: both sketch strategies must produce Hamming
//! distances that track the analytic collision probability within
//! Chernoff/Hoeffding tolerance bands, and must rank identically on a
//! clustered recall benchmark.
//!
//! The bands are sized for an overall failure probability of `DELTA`
//! over the builder seed; the seeds below are pinned, so the suite is
//! fully deterministic.

use ferret_core::engine::QueryOptions;
use ferret_core::sketch::{SketchBuilder, SketchParams, SketchStrategy};
use ferret_eval::benchmark::BenchmarkSuite;
use ferret_eval::estimator::{
    clustered_objects, evaluate_builder, evaluate_strategy, recall_parity, seeded_corpus,
};

const DELTA: f64 = 1e-6;
const SEED: u64 = 0x00FE_44E7;

const STRATEGIES: [SketchStrategy; 2] = [SketchStrategy::Classic, SketchStrategy::OnePass];

/// Parameter shapes covering the interesting corners of the
/// construction: no folding, heavy folding, skewed ranges, and explicit
/// dimension weights (including a zero-range dimension).
fn param_shapes() -> Vec<(&'static str, SketchParams)> {
    vec![
        (
            "k1-uniform",
            SketchParams::new(512, vec![0.0; 8], vec![1.0; 8]).unwrap(),
        ),
        (
            "k4-uniform",
            SketchParams::with_options(512, 4, vec![0.0; 8], vec![1.0; 8], None).unwrap(),
        ),
        (
            "k2-skewed-ranges",
            SketchParams::with_options(
                512,
                2,
                vec![-10.0, 0.0, 0.0, 5.0],
                vec![10.0, 0.5, 100.0, 5.0],
                None,
            )
            .unwrap(),
        ),
        (
            "k2-weighted",
            SketchParams::with_options(
                512,
                2,
                vec![0.0; 6],
                vec![1.0; 6],
                Some(vec![4.0, 2.0, 1.0, 1.0, 0.5, 0.0]),
            )
            .unwrap(),
        ),
    ]
}

#[test]
fn both_strategies_pass_tolerance_bands_on_all_shapes() {
    for (name, params) in param_shapes() {
        let corpus = seeded_corpus(&params, 12, SEED);
        for strategy in STRATEGIES {
            let report = evaluate_strategy(&params, SEED, strategy, &corpus, DELTA);
            assert!(
                report.pass(),
                "{name}/{strategy}: {} of {} pairs outside the band \
                 (max deviation {:.4}, tolerance {:.4})",
                report.violations().len(),
                report.checks.len(),
                report.max_deviation(),
                report.checks[0].tolerance,
            );
            // The bands are loose by construction; the typical deviation
            // must be much tighter than the worst-case bound, otherwise
            // the estimator is systematically biased.
            assert!(
                report.mean_abs_deviation() < report.checks[0].tolerance / 2.0,
                "{name}/{strategy}: mean deviation {:.4} suspiciously close to band {:.4}",
                report.mean_abs_deviation(),
                report.checks[0].tolerance,
            );
        }
    }
}

#[test]
fn strategies_report_identical_observations() {
    // Beyond both being within-band: the two strategies are bit-identical
    // by construction, so their observed Hamming fractions must agree
    // exactly, pair for pair.
    for (name, params) in param_shapes() {
        let corpus = seeded_corpus(&params, 10, SEED ^ 0xA5A5);
        let classic = evaluate_strategy(&params, SEED, SketchStrategy::Classic, &corpus, DELTA);
        let one_pass = evaluate_strategy(&params, SEED, SketchStrategy::OnePass, &corpus, DELTA);
        for (c, o) in classic.checks.iter().zip(&one_pass.checks) {
            assert_eq!(
                c.observed, o.observed,
                "{name}: pair ({}, {})",
                c.left, c.right
            );
        }
    }
}

#[test]
fn negative_control_mismatched_builders_fail_bands() {
    // Sketch the corpus with one builder but score the pairs against
    // sketches from a differently seeded builder: the Hamming fractions
    // of close pairs then hover near coin-flip level, far outside the
    // band around their small expectations. If this "estimator" passed,
    // the bands would be too loose to certify anything.
    let params = SketchParams::new(512, vec![0.0; 8], vec![1.0; 8]).unwrap();
    let a = SketchBuilder::new(params.clone(), SEED);
    let b = SketchBuilder::new(params.clone(), SEED ^ 0xDEAD_BEEF);
    // Close pairs: base vector plus a tiny perturbation.
    let base = seeded_corpus(&params, 6, SEED);
    let mut corpus = Vec::new();
    for v in &base {
        corpus.push(v.clone());
        corpus.push(v.iter().map(|x| x + 0.01).collect());
    }
    // Interleave: even indices sketched by `a`, odd by `b`.
    let report_ok = evaluate_builder(&a, &corpus, DELTA);
    assert!(report_ok.pass(), "sanity: single builder must pass");
    let sketches: Vec<_> = corpus
        .iter()
        .enumerate()
        .map(|(i, v)| {
            if i % 2 == 0 {
                a.sketch_components(v)
            } else {
                b.sketch_components(v)
            }
        })
        .collect();
    let n = a.nbits() as f64;
    let mut worst = 0.0f64;
    let mut violated = false;
    for check in &report_ok.checks {
        // Re-score the same pairs with the mismatched sketches; pairs
        // with one even and one odd index cross the builder boundary.
        if check.left % 2 == check.right % 2 {
            continue;
        }
        let observed =
            f64::from(sketches[check.left].hamming_unchecked(&sketches[check.right])) / n;
        let deviation = (observed - check.expected).abs();
        worst = worst.max(deviation);
        if deviation > check.tolerance {
            violated = true;
        }
    }
    assert!(
        violated,
        "mismatched builders stayed within bands (worst deviation {worst:.4}) — \
         the harness has no statistical power"
    );
}

#[test]
fn recall_parity_between_strategies_is_exact() {
    let params = SketchParams::with_options(256, 2, vec![-1.0; 8], vec![1.0; 8], None).unwrap();
    let (objects, sets) = clustered_objects(&params, 6, 5, 0.02, SEED);
    let suite = BenchmarkSuite::from_sets(&sets);
    for options in [
        QueryOptions::default(),
        QueryOptions::brute_force_sketch(10),
    ] {
        let report = recall_parity(&params, SEED, &objects, &suite, &options).unwrap();
        assert_eq!(report.queries, 6);
        assert!(
            report.identical(),
            "{} of {} queries diverged between strategies",
            report.divergent_queries,
            report.queries
        );
        assert_eq!(report.classic.first_tier, report.one_pass.first_tier);
        assert_eq!(report.classic.second_tier, report.one_pass.second_tier);
        assert_eq!(
            report.classic.average_precision,
            report.one_pass.average_precision
        );
        // Tight clusters inside the range: the sketch pipeline must
        // actually find them, not merely agree on garbage.
        assert!(
            report.classic.average_precision > 0.8,
            "average precision {:.3} too low for tight clusters",
            report.classic.average_precision
        );
    }
}
