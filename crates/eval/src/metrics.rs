//! Search-quality metrics (paper §6.2): first tier, second tier, and
//! average precision.
//!
//! All three metrics score a ranked result list against an unordered gold
//! standard similarity set `Q` containing the query. The query itself is
//! excluded from both the result list and the target set before scoring.

use ferret_core::object::ObjectId;

/// The three quality metrics of one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityScores {
    /// Recall within the top `|Q| − 1` results.
    pub first_tier: f64,
    /// Recall within the top `2(|Q| − 1)` results.
    pub second_tier: f64,
    /// Rank-weighted precision: `(1/k) Σ_i i / rank_i`.
    pub average_precision: f64,
}

/// Scores one query's ranked results against its gold similarity set.
///
/// * `query` — the seed object (a member of `gold`).
/// * `gold` — the unordered similarity set, including the query.
/// * `ranked` — result ids in rank order; may include the query, which is
///   skipped.
/// * `dataset_size` — total objects in the dataset; gold objects missing
///   from `ranked` are assigned this rank ("a default rank equal to the
///   size of the dataset").
///
/// Returns `None` if the gold set (excluding the query) is empty.
pub fn score_query(
    query: ObjectId,
    gold: &[ObjectId],
    ranked: &[ObjectId],
    dataset_size: usize,
) -> Option<QualityScores> {
    let targets: Vec<ObjectId> = gold.iter().copied().filter(|&id| id != query).collect();
    let k = targets.len();
    if k == 0 {
        return None;
    }
    // Ranks of results with the query removed, 1-based.
    let mut rank_of = std::collections::HashMap::new();
    let mut rank = 0usize;
    for &id in ranked {
        if id == query {
            continue;
        }
        rank += 1;
        rank_of.entry(id).or_insert(rank);
    }
    // Sorted ranks of the gold objects.
    let mut gold_ranks: Vec<usize> = targets
        .iter()
        .map(|id| {
            rank_of
                .get(id)
                .copied()
                .unwrap_or(dataset_size.max(rank + 1))
        })
        .collect();
    gold_ranks.sort_unstable();

    let in_top = |top: usize| gold_ranks.iter().filter(|&&r| r <= top).count() as f64;
    let first_tier = in_top(k) / k as f64;
    let second_tier = in_top(2 * k) / k as f64;
    // Average precision: the i-th best-ranked gold object contributes
    // i / rank_i.
    let average_precision = gold_ranks
        .iter()
        .enumerate()
        .map(|(i, &r)| (i + 1) as f64 / r as f64)
        .sum::<f64>()
        / k as f64;
    Some(QualityScores {
        first_tier,
        second_tier,
        average_precision,
    })
}

/// Accumulates per-query scores into dataset-level averages.
#[derive(Debug, Clone, Default)]
pub struct QualityAccumulator {
    count: usize,
    first_tier: f64,
    second_tier: f64,
    average_precision: f64,
}

impl QualityAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one query's scores.
    pub fn add(&mut self, scores: QualityScores) {
        self.count += 1;
        self.first_tier += scores.first_tier;
        self.second_tier += scores.second_tier;
        self.average_precision += scores.average_precision;
    }

    /// Number of queries accumulated.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The mean scores (`None` if nothing was accumulated).
    pub fn mean(&self) -> Option<QualityScores> {
        if self.count == 0 {
            return None;
        }
        let n = self.count as f64;
        Some(QualityScores {
            first_tier: self.first_tier / n,
            second_tier: self.second_tier / n,
            average_precision: self.average_precision / n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<ObjectId> {
        v.iter().map(|&i| ObjectId(i)).collect()
    }

    /// The paper's worked example: Q = {q1, q2, q3}, query q1, top-2
    /// results r1, q2 -> first tier 50%.
    #[test]
    fn paper_first_tier_example() {
        let s = score_query(
            ObjectId(1),
            &ids(&[1, 2, 3]),
            &ids(&[100, 2, 101, 102]),
            1000,
        )
        .unwrap();
        assert!((s.first_tier - 0.5).abs() < 1e-12);
    }

    /// Paper: top-4 results r1, q2, q3, r4 -> second tier 100%.
    #[test]
    fn paper_second_tier_example() {
        let s = score_query(ObjectId(1), &ids(&[1, 2, 3]), &ids(&[100, 2, 3, 101]), 1000).unwrap();
        assert!((s.second_tier - 1.0).abs() < 1e-12);
        assert!((s.first_tier - 0.5).abs() < 1e-12);
    }

    /// Paper: results r1, q2, q3, r4 -> average precision
    /// 1/2 · (1/2 + 2/3) = 0.583.
    #[test]
    fn paper_average_precision_example() {
        let s = score_query(ObjectId(1), &ids(&[1, 2, 3]), &ids(&[100, 2, 3, 101]), 1000).unwrap();
        assert!((s.average_precision - (0.5 * (0.5 + 2.0 / 3.0))).abs() < 1e-9);
    }

    #[test]
    fn perfect_results_score_one() {
        let s = score_query(ObjectId(1), &ids(&[1, 2, 3, 4]), &ids(&[2, 3, 4, 99]), 10).unwrap();
        assert_eq!(s.first_tier, 1.0);
        assert_eq!(s.second_tier, 1.0);
        assert!((s.average_precision - 1.0).abs() < 1e-12);
    }

    #[test]
    fn query_in_results_is_skipped() {
        // The query itself leading the results must not consume a rank.
        let s = score_query(ObjectId(1), &ids(&[1, 2]), &ids(&[1, 2]), 10).unwrap();
        assert_eq!(s.first_tier, 1.0);
        assert!((s.average_precision - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_gold_gets_dataset_rank() {
        // Gold object 2 not returned at all: rank = dataset size (100).
        let s = score_query(ObjectId(1), &ids(&[1, 2]), &ids(&[50, 51]), 100).unwrap();
        assert_eq!(s.first_tier, 0.0);
        assert_eq!(s.second_tier, 0.0);
        assert!((s.average_precision - 0.01).abs() < 1e-12);
    }

    #[test]
    fn empty_gold_set_is_none() {
        assert!(score_query(ObjectId(1), &ids(&[1]), &ids(&[2]), 10).is_none());
        assert!(score_query(ObjectId(1), &[], &ids(&[2]), 10).is_none());
    }

    #[test]
    fn duplicate_result_ids_use_first_rank() {
        let s = score_query(ObjectId(1), &ids(&[1, 2]), &ids(&[2, 3, 2]), 10).unwrap();
        assert_eq!(s.first_tier, 1.0);
    }

    #[test]
    fn accumulator_averages() {
        let mut acc = QualityAccumulator::new();
        assert!(acc.mean().is_none());
        acc.add(QualityScores {
            first_tier: 1.0,
            second_tier: 1.0,
            average_precision: 1.0,
        });
        acc.add(QualityScores {
            first_tier: 0.0,
            second_tier: 0.5,
            average_precision: 0.2,
        });
        let m = acc.mean().unwrap();
        assert_eq!(acc.count(), 2);
        assert!((m.first_tier - 0.5).abs() < 1e-12);
        assert!((m.second_tier - 0.75).abs() < 1e-12);
        assert!((m.average_precision - 0.6).abs() < 1e-12);
    }

    #[test]
    fn scores_are_bounded() {
        // Randomized sanity: scores always in [0, 1].
        for shift in 0..20u64 {
            let ranked: Vec<ObjectId> = (0..50).map(|i| ObjectId((i * 7 + shift) % 60)).collect();
            let s = score_query(ObjectId(0), &ids(&[0, 5, 10, 15]), &ranked, 60).unwrap();
            for v in [s.first_tier, s.second_tier, s.average_precision] {
                assert!((0.0..=1.0 + 1e-12).contains(&v), "score {v}");
            }
            assert!(s.second_tier >= s.first_tier);
        }
    }
}
