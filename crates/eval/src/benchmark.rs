//! Benchmark files: the ground-truth format consumed by the evaluation
//! tool.
//!
//! "The input we take is a formatted benchmark file containing the
//! performance benchmark suite which describes the ground truth for
//! similarity search" (paper §4.3). The format is line-oriented:
//!
//! ```text
//! # comment
//! set <name> <id> <id> <id> ...
//! ```

use std::fmt::Write as _;

use ferret_core::object::ObjectId;

/// One named gold-standard similarity set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimilaritySet {
    /// Set name (unique within a suite).
    pub name: String,
    /// Member object ids; the first is used as the default query seed.
    pub members: Vec<ObjectId>,
}

/// A benchmark suite: a list of similarity sets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BenchmarkSuite {
    /// The gold-standard sets.
    pub sets: Vec<SimilaritySet>,
}

/// A benchmark file parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for BenchmarkParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "benchmark line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BenchmarkParseError {}

impl BenchmarkSuite {
    /// Builds a suite from raw similarity sets (auto-named `set-<i>`).
    pub fn from_sets(sets: &[Vec<ObjectId>]) -> Self {
        Self {
            sets: sets
                .iter()
                .enumerate()
                .map(|(i, members)| SimilaritySet {
                    name: format!("set-{i}"),
                    members: members.clone(),
                })
                .collect(),
        }
    }

    /// Parses the benchmark file format.
    pub fn parse(text: &str) -> Result<Self, BenchmarkParseError> {
        let mut sets = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let keyword = parts.next().expect("non-empty line");
            if keyword != "set" {
                return Err(BenchmarkParseError {
                    line: lineno + 1,
                    message: format!("unknown keyword {keyword:?}"),
                });
            }
            let name = parts
                .next()
                .ok_or_else(|| BenchmarkParseError {
                    line: lineno + 1,
                    message: "missing set name".into(),
                })?
                .to_string();
            if !seen.insert(name.clone()) {
                return Err(BenchmarkParseError {
                    line: lineno + 1,
                    message: format!("duplicate set name {name:?}"),
                });
            }
            let members: Result<Vec<ObjectId>, _> = parts
                .map(|tok| {
                    tok.parse::<u64>()
                        .map(ObjectId)
                        .map_err(|_| BenchmarkParseError {
                            line: lineno + 1,
                            message: format!("invalid object id {tok:?}"),
                        })
                })
                .collect();
            let members = members?;
            if members.len() < 2 {
                return Err(BenchmarkParseError {
                    line: lineno + 1,
                    message: "a similarity set needs at least 2 members".into(),
                });
            }
            sets.push(SimilaritySet { name, members });
        }
        Ok(Self { sets })
    }

    /// Serializes to the benchmark file format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# Ferret benchmark suite\n");
        for set in &self.sets {
            let _ = write!(out, "set {}", set.name);
            for id in &set.members {
                let _ = write!(out, " {}", id.0);
            }
            out.push('\n');
        }
        out
    }

    /// Number of sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True if the suite has no sets.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let suite = BenchmarkSuite::parse("# comment\n\nset dogs 1 2 3\nset cats 4 5\n").unwrap();
        assert_eq!(suite.len(), 2);
        assert_eq!(suite.sets[0].name, "dogs");
        assert_eq!(
            suite.sets[0].members,
            vec![ObjectId(1), ObjectId(2), ObjectId(3)]
        );
        assert_eq!(suite.sets[1].members.len(), 2);
    }

    #[test]
    fn roundtrip() {
        let suite = BenchmarkSuite::from_sets(&[
            vec![ObjectId(1), ObjectId(2)],
            vec![ObjectId(7), ObjectId(8), ObjectId(9)],
        ]);
        let text = suite.to_text();
        let back = BenchmarkSuite::parse(&text).unwrap();
        assert_eq!(suite, back);
    }

    #[test]
    fn parse_errors() {
        for (text, needle) in [
            ("wibble a b", "unknown keyword"),
            ("set", "missing set name"),
            ("set a 1", "at least 2"),
            ("set a 1 x", "invalid object id"),
            ("set a 1 2\nset a 3 4", "duplicate set name"),
        ] {
            let err = BenchmarkSuite::parse(text).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{text:?}: {} does not contain {needle:?}",
                err.message
            );
        }
    }

    #[test]
    fn error_reports_line() {
        let err = BenchmarkSuite::parse("set a 1 2\nbogus\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn empty_suite() {
        let suite = BenchmarkSuite::parse("# nothing\n").unwrap();
        assert!(suite.is_empty());
        assert_eq!(suite.len(), 0);
    }
}
