//! Statistical estimator-quality harness for sketch construction.
//!
//! The sketch construction of paper §4.1.1 promises that the Hamming
//! distance between two `N`-bit sketches estimates a thresholded transform
//! of the weighted ℓ₁ distance between the original vectors. This module
//! checks that promise directly, for any [`SketchStrategy`]: it computes
//! the *exact* per-bit collision probability implied by the construction's
//! sampling distribution, sketches a seeded corpus, and asserts that every
//! observed pairwise Hamming fraction falls inside a Chernoff/Hoeffding
//! tolerance band around its expectation.
//!
//! Because each of the `N` folded sketch bits is generated from
//! independent `(dimension, threshold)` draws, the Hamming distance of a
//! fixed vector pair is Binomial(`N`, `P_K`) over the builder's seed.
//! Hoeffding's inequality then bounds the deviation of the observed
//! fraction `h/N` from `P_K` by
//! `ε = sqrt(ln(2·pairs/δ) / (2N))` with overall failure probability at
//! most `δ` (union bound over all checked pairs). A strategy whose
//! construction is wrong — biased thresholds, skipped flips, broken
//! XOR-folding — lands outside the band with overwhelming probability,
//! while any faithful implementation passes for all but a `δ` fraction of
//! seeds.
//!
//! The module also provides a recall-parity check: two engines differing
//! only in [`SketchStrategy`] must rank identically on a clustered
//! benchmark suite (the strategies are bit-identical by design, so the
//! divergence count must be zero).

use ferret_core::engine::{EngineBuilder, EngineConfig, QueryOptions, SearchEngine};
use ferret_core::error::Result;
use ferret_core::object::{DataObject, ObjectId};
use ferret_core::sketch::{SketchBuilder, SketchParams, SketchStrategy};
use ferret_core::vector::FeatureVector;

use crate::benchmark::BenchmarkSuite;
use crate::metrics::{score_query, QualityAccumulator, QualityScores};

/// SplitMix64: the dependency-free seeded generator used for corpus
/// synthesis (the same construction the bench harnesses use).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A tiny deterministic uniform stream over [0, 1).
struct Stream {
    state: u64,
}

impl Stream {
    fn new(seed: u64) -> Self {
        Self {
            state: mix64(seed ^ 0xFE44_E700),
        }
    }

    fn next_unit(&mut self) -> f64 {
        self.state = mix64(self.state);
        // 53 high bits → uniform double in [0, 1).
        (self.state >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Generates a deterministic corpus of `count` vectors matching the
/// dimensionality of `params`.
///
/// Components are drawn uniformly from each dimension's range widened by
/// 25% on both sides, so the corpus exercises the construction's clipping
/// behaviour (values at or beyond `min`/`max` saturate) as well as its
/// interior thresholds.
pub fn seeded_corpus(params: &SketchParams, count: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut stream = Stream::new(seed);
    let d = params.dim();
    (0..count)
        .map(|_| {
            (0..d)
                .map(|i| {
                    let range = f64::from(params.maxs[i] - params.mins[i]);
                    let lo = f64::from(params.mins[i]) - 0.25 * range;
                    let span = 1.5 * range;
                    (lo + stream.next_unit() * span.max(1.0)) as f32
                })
                .collect()
        })
        .collect()
}

/// The probability that one *raw* (unfolded) sketch bit differs between
/// `a` and `b` under the construction's sampling distribution:
/// `p₁ = Σᵢ pᵢ · |clip(aᵢ) − clip(bᵢ)| / rangeᵢ`, where `pᵢ` is the
/// dimension sampling probability of Algorithm 1 and `clip` saturates to
/// `[minᵢ, maxᵢ]`.
///
/// A raw bit drawn as `(i, t)` differs exactly when the threshold `t`
/// falls strictly between the two clipped components, which happens with
/// probability `|clip(aᵢ) − clip(bᵢ)| / rangeᵢ` for a uniform threshold.
pub fn raw_differ_probability(params: &SketchParams, a: &[f32], b: &[f32]) -> f64 {
    let probs = params.dimension_probabilities();
    let mut p1 = 0.0f64;
    for i in 0..params.dim() {
        let lo = params.mins[i];
        let hi = params.maxs[i];
        let range = f64::from(hi - lo);
        if range <= 0.0 {
            continue;
        }
        let ca = f64::from(a[i].clamp(lo, hi));
        let cb = f64::from(b[i].clamp(lo, hi));
        p1 += probs[i] * (ca - cb).abs() / range;
    }
    p1
}

/// The probability that one *folded* sketch bit (the XOR of `k` raw bits)
/// differs: `P_K = (1 − (1 − 2p₁)^K) / 2`.
///
/// Folded bits differ exactly when an odd number of their `k` raw-bit
/// pairs differ; the closed form follows from the parity generating
/// function of independent Bernoulli draws.
pub fn folded_differ_probability(p1: f64, k: usize) -> f64 {
    (1.0 - (1.0 - 2.0 * p1).powi(k as i32)) / 2.0
}

/// One pairwise estimator check: expected vs observed Hamming fraction
/// and the tolerance band the deviation must stay inside.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairCheck {
    /// Corpus index of the first vector.
    pub left: usize,
    /// Corpus index of the second vector.
    pub right: usize,
    /// Expected Hamming fraction `P_K`.
    pub expected: f64,
    /// Observed Hamming fraction `h/N`.
    pub observed: f64,
    /// Hoeffding half-width `ε` of the tolerance band.
    pub tolerance: f64,
}

impl PairCheck {
    /// The absolute deviation between observation and expectation.
    pub fn deviation(&self) -> f64 {
        (self.observed - self.expected).abs()
    }

    /// Whether the observation falls inside the tolerance band.
    pub fn within_band(&self) -> bool {
        self.deviation() <= self.tolerance
    }
}

/// The outcome of an estimator-quality evaluation over a corpus.
#[derive(Debug, Clone)]
pub struct EstimatorReport {
    /// Every pairwise check performed.
    pub checks: Vec<PairCheck>,
    /// The overall failure probability `δ` the bands were sized for.
    pub delta: f64,
}

impl EstimatorReport {
    /// The checks whose observation fell outside its band.
    pub fn violations(&self) -> Vec<&PairCheck> {
        self.checks.iter().filter(|c| !c.within_band()).collect()
    }

    /// The largest absolute deviation seen.
    pub fn max_deviation(&self) -> f64 {
        self.checks
            .iter()
            .map(PairCheck::deviation)
            .fold(0.0, f64::max)
    }

    /// The mean absolute deviation over all checks.
    pub fn mean_abs_deviation(&self) -> f64 {
        if self.checks.is_empty() {
            return 0.0;
        }
        self.checks.iter().map(PairCheck::deviation).sum::<f64>() / self.checks.len() as f64
    }

    /// Whether every check passed.
    pub fn pass(&self) -> bool {
        self.checks.iter().all(PairCheck::within_band)
    }
}

/// Evaluates an already-constructed builder against every pair of corpus
/// vectors, sizing the tolerance bands for an overall failure probability
/// `delta` (union bound over the pair count).
pub fn evaluate_builder(
    builder: &SketchBuilder,
    corpus: &[Vec<f32>],
    delta: f64,
) -> EstimatorReport {
    let params = builder.params().clone();
    let n = builder.nbits() as f64;
    let sketches: Vec<_> = corpus
        .iter()
        .map(|v| builder.sketch_components(v))
        .collect();
    let pairs = corpus.len() * corpus.len().saturating_sub(1) / 2;
    let tolerance = ((2.0 * pairs.max(1) as f64 / delta).ln() / (2.0 * n)).sqrt();
    let mut checks = Vec::with_capacity(pairs);
    for i in 0..corpus.len() {
        for j in (i + 1)..corpus.len() {
            let p1 = raw_differ_probability(&params, &corpus[i], &corpus[j]);
            let expected = folded_differ_probability(p1, params.xor_folds);
            let observed = f64::from(sketches[i].hamming_unchecked(&sketches[j])) / n;
            checks.push(PairCheck {
                left: i,
                right: j,
                expected,
                observed,
                tolerance,
            });
        }
    }
    EstimatorReport { checks, delta }
}

/// Builds a sketcher with the given strategy and evaluates it: the
/// single-call entry point of the harness.
pub fn evaluate_strategy(
    params: &SketchParams,
    seed: u64,
    strategy: SketchStrategy,
    corpus: &[Vec<f32>],
    delta: f64,
) -> EstimatorReport {
    let builder = SketchBuilder::with_strategy(params.clone(), seed, strategy);
    evaluate_builder(&builder, corpus, delta)
}

/// A deterministic clustered workload for recall checks: `clusters`
/// groups of `per_cluster` near-identical vectors inside the parameter
/// range, plus the returned similarity sets naming each cluster.
pub fn clustered_objects(
    params: &SketchParams,
    clusters: usize,
    per_cluster: usize,
    spread: f32,
    seed: u64,
) -> (Vec<(ObjectId, DataObject)>, Vec<Vec<ObjectId>>) {
    let mut stream = Stream::new(seed ^ 0xC1A5);
    let d = params.dim();
    let mut objects = Vec::with_capacity(clusters * per_cluster);
    let mut sets = Vec::with_capacity(clusters);
    let mut id = 0u64;
    for _ in 0..clusters {
        let center: Vec<f64> = (0..d)
            .map(|i| {
                let lo = f64::from(params.mins[i]);
                let hi = f64::from(params.maxs[i]);
                lo + stream.next_unit() * (hi - lo)
            })
            .collect();
        let mut members = Vec::with_capacity(per_cluster);
        for _ in 0..per_cluster {
            let v: Vec<f32> = (0..d)
                .map(|i| {
                    let lo = params.mins[i];
                    let hi = params.maxs[i];
                    let range = f64::from(hi - lo);
                    let jitter = (stream.next_unit() - 0.5) * 2.0 * f64::from(spread) * range;
                    ((center[i] + jitter) as f32).clamp(lo, hi)
                })
                .collect();
            let object = DataObject::single(FeatureVector::new(v).expect("finite components"));
            objects.push((ObjectId(id), object));
            members.push(ObjectId(id));
            id += 1;
        }
        sets.push(members);
    }
    (objects, sets)
}

/// The outcome of a Classic-vs-OnePass recall-parity run.
#[derive(Debug, Clone)]
pub struct ParityReport {
    /// Quality of the classic-strategy engine.
    pub classic: QualityScores,
    /// Quality of the one-pass-strategy engine.
    pub one_pass: QualityScores,
    /// Queries executed per engine.
    pub queries: usize,
    /// Queries whose ranked result lists differed between the engines.
    pub divergent_queries: usize,
}

impl ParityReport {
    /// Whether the two strategies produced identical rankings (and hence
    /// identical recall) on every query.
    pub fn identical(&self) -> bool {
        self.divergent_queries == 0
    }
}

/// Runs the same benchmark suite against two freshly built engines that
/// differ only in sketch strategy and compares their ranked results
/// query by query.
///
/// Because `OnePass` is constructed to be bit-identical to `Classic`,
/// any divergence (a nonzero [`ParityReport::divergent_queries`]) means
/// one of the constructions is broken — there is no tolerance here.
pub fn recall_parity(
    params: &SketchParams,
    seed: u64,
    objects: &[(ObjectId, DataObject)],
    suite: &BenchmarkSuite,
    options: &QueryOptions,
) -> Result<ParityReport> {
    let build = |strategy: SketchStrategy| -> Result<SearchEngine> {
        let mut config = EngineConfig::basic(params.clone(), seed);
        config.sketch_strategy = strategy;
        let mut engine = EngineBuilder::from_config(config).build()?;
        for (id, object) in objects {
            engine.insert(*id, object.clone())?;
        }
        Ok(engine)
    };
    let classic = build(SketchStrategy::Classic)?;
    let one_pass = build(SketchStrategy::OnePass)?;

    let mut acc_classic = QualityAccumulator::new();
    let mut acc_one_pass = QualityAccumulator::new();
    let mut queries = 0usize;
    let mut divergent = 0usize;
    for set in &suite.sets {
        let query = set.members[0];
        let mut opts = options.clone();
        opts.k = opts.k.max(2 * (set.members.len() - 1) + 1);
        let resp_c = classic.query_by_id(query, &opts)?;
        let resp_o = one_pass.query_by_id(query, &opts)?;
        let ranked_c: Vec<ObjectId> = resp_c.results.iter().map(|r| r.id).collect();
        let ranked_o: Vec<ObjectId> = resp_o.results.iter().map(|r| r.id).collect();
        queries += 1;
        if ranked_c != ranked_o {
            divergent += 1;
        }
        if let Some(s) = score_query(query, &set.members, &ranked_c, classic.len()) {
            acc_classic.add(s);
        }
        if let Some(s) = score_query(query, &set.members, &ranked_o, one_pass.len()) {
            acc_one_pass.add(s);
        }
    }
    let zero = QualityScores {
        first_tier: 0.0,
        second_tier: 0.0,
        average_precision: 0.0,
    };
    Ok(ParityReport {
        classic: acc_classic.mean().unwrap_or(zero),
        one_pass: acc_one_pass.mean().unwrap_or(zero),
        queries,
        divergent_queries: divergent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folded_probability_closed_form() {
        // K = 1 is the identity; p1 = 0.5 saturates for every K.
        assert!((folded_differ_probability(0.2, 1) - 0.2).abs() < 1e-12);
        assert!((folded_differ_probability(0.5, 4) - 0.5).abs() < 1e-12);
        // K = 2: P = 2p(1-p).
        let p = 0.3f64;
        let expect = 2.0 * p * (1.0 - p);
        assert!((folded_differ_probability(p, 2) - expect).abs() < 1e-12);
    }

    #[test]
    fn raw_probability_clips_out_of_range() {
        let params = SketchParams::new(8, vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        // Both components beyond the range on the same side → identical
        // after clipping → zero probability.
        let p = raw_differ_probability(&params, &[2.0, -3.0], &[5.0, -1.0]);
        assert_eq!(p, 0.0);
        // Opposite extremes differ on every threshold of dimension 0.
        let p = raw_differ_probability(&params, &[-1.0, 0.5], &[2.0, 0.5]);
        assert!((p - 0.5).abs() < 1e-12, "{p}");
    }

    #[test]
    fn seeded_corpus_is_deterministic() {
        let params = SketchParams::new(16, vec![0.0; 3], vec![1.0; 3]).unwrap();
        let a = seeded_corpus(&params, 5, 42);
        let b = seeded_corpus(&params, 5, 42);
        let c = seeded_corpus(&params, 5, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|v| v.len() == 3));
    }

    #[test]
    fn clustered_objects_stay_in_range() {
        let params = SketchParams::new(16, vec![-1.0; 4], vec![1.0; 4]).unwrap();
        let (objects, sets) = clustered_objects(&params, 3, 4, 0.01, 7);
        assert_eq!(objects.len(), 12);
        assert_eq!(sets.len(), 3);
        for (_, obj) in &objects {
            for seg in obj.segments() {
                for &x in seg.vector.components() {
                    assert!((-1.0..=1.0).contains(&x));
                }
            }
        }
    }
}
