//! Plain-text report rendering for experiment harnesses.
//!
//! The benchmark binaries print the paper's tables as aligned text; this
//! module provides the small table renderer and numeric formatting they
//! share.

use std::time::Duration;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.len()..widths[c] {
                    out.push(' ');
                }
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

/// Formats a duration compactly: `1.23 s`, `45.6 ms`, `789 µs`.
pub fn format_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.2} s")
    } else if secs >= 1e-3 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.0} µs", secs * 1e6)
    }
}

/// Formats a fraction with 2 decimals (`0.59`).
pub fn format_score(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a size ratio (`4.7:1`).
pub fn format_ratio(v: f64) -> String {
    format!("{v:.1}:1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "2.345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "value" column starts at the same offset.
        let off0 = lines[0].find("value").unwrap();
        let off2 = lines[2].find('1').unwrap();
        let off3 = lines[3].find("2.345").unwrap();
        assert_eq!(off0, off2);
        assert_eq!(off0, off3);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["only-one"]);
        let s = t.render();
        assert!(s.contains("only-one"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
        assert_eq!(format_duration(Duration::from_millis(45)), "45.00 ms");
        assert_eq!(format_duration(Duration::from_micros(789)), "789 µs");
    }

    #[test]
    fn score_and_ratio_formatting() {
        assert_eq!(format_score(0.5912), "0.59");
        assert_eq!(format_ratio(4.666), "4.7:1");
    }
}
