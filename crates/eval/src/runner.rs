//! The batch query runner: drives an engine with a benchmark suite and
//! collects quality and timing statistics (paper §4.3: "once the benchmark
//! file is given, we are able to drive the test and provide statistics like
//! average precision and time spent for the query").

use std::time::Duration;

use ferret_core::engine::{QueryOptions, SearchEngine};
use ferret_core::error::Result;
use ferret_core::object::ObjectId;

use crate::benchmark::BenchmarkSuite;
use crate::metrics::{score_query, QualityAccumulator, QualityScores};

/// Latency statistics over a batch of queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingStats {
    /// Number of timed queries.
    pub count: usize,
    /// Mean latency.
    pub mean: Duration,
    /// Median latency.
    pub median: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// Minimum latency.
    pub min: Duration,
    /// Maximum latency.
    pub max: Duration,
    /// Worker threads the engine used per query (resolved from its
    /// [`Parallelism`](ferret_core::parallel::Parallelism) setting).
    pub threads: usize,
}

impl TimingStats {
    /// Computes statistics from raw latencies (empty input gives zeros).
    pub fn from_durations(mut durations: Vec<Duration>) -> Self {
        if durations.is_empty() {
            return Self {
                count: 0,
                mean: Duration::ZERO,
                median: Duration::ZERO,
                p95: Duration::ZERO,
                min: Duration::ZERO,
                max: Duration::ZERO,
                threads: 1,
            };
        }
        durations.sort_unstable();
        let count = durations.len();
        let total: Duration = durations.iter().sum();
        let pick = |q: f64| durations[((count - 1) as f64 * q).round() as usize];
        Self {
            count,
            mean: total / count as u32,
            median: pick(0.5),
            p95: pick(0.95),
            min: durations[0],
            max: durations[count - 1],
            threads: 1,
        }
    }

    /// Records the worker-thread count the timed queries ran with.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// Per-set detail of a suite run.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Name of the similarity set.
    pub set_name: String,
    /// The seed object used as the query.
    pub query: ObjectId,
    /// Quality scores of this query.
    pub scores: QualityScores,
    /// Latency of this query.
    pub elapsed: Duration,
    /// Candidates ranked (object-distance evaluations).
    pub distance_evals: usize,
}

/// Mean per-stage durations aggregated from query traces (present only
/// when the engine runs with telemetry enabled; see
/// [`SearchEngine::set_telemetry`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Queries that contributed a trace.
    pub traced: usize,
    /// Mean time sketching the query object.
    pub sketch: Duration,
    /// Mean time scanning sketches for candidates.
    pub filter: Duration,
    /// Mean time ranking candidates with the object distance.
    pub rank: Duration,
}

impl StageBreakdown {
    /// Folds one query trace into the running totals (call [`Self::finish`]
    /// afterwards to convert totals into means).
    fn accumulate(&mut self, trace: &ferret_core::telemetry::QueryTrace) {
        self.traced += 1;
        if let Some(s) = &trace.sketch {
            self.sketch += s.duration;
        }
        if let Some(s) = &trace.filter {
            self.filter += s.duration;
        }
        if let Some(s) = &trace.rank {
            self.rank += s.duration;
        }
    }

    /// Converts accumulated totals into means; `None` if nothing was traced.
    fn finish(self) -> Option<Self> {
        (self.traced > 0).then(|| {
            let n = self.traced as u32;
            Self {
                traced: self.traced,
                sketch: self.sketch / n,
                filter: self.filter / n,
                rank: self.rank / n,
            }
        })
    }
}

/// The aggregate result of running a benchmark suite.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Mean quality over all queries.
    pub quality: QualityScores,
    /// Latency statistics.
    pub timing: TimingStats,
    /// Mean number of object-distance evaluations per query.
    pub avg_distance_evals: f64,
    /// Per-query details.
    pub outcomes: Vec<QueryOutcome>,
    /// Mean per-stage latency, when the engine produced query traces.
    pub stages: Option<StageBreakdown>,
}

/// Runs every similarity set of `suite` against `engine`.
///
/// For each set, the first member seeds the query (as in §6.3.1). The
/// requested result count is raised to at least `2(|Q|−1) + 1` so the
/// second-tier metric is computable.
pub fn run_suite(
    engine: &SearchEngine,
    suite: &BenchmarkSuite,
    options: &QueryOptions,
) -> Result<SuiteResult> {
    let mut acc = QualityAccumulator::new();
    let mut durations = Vec::with_capacity(suite.len());
    let mut outcomes = Vec::with_capacity(suite.len());
    let mut total_evals = 0usize;
    let mut stages = StageBreakdown::default();
    for set in &suite.sets {
        let query = set.members[0];
        let mut opts = options.clone();
        opts.k = opts.k.max(2 * (set.members.len() - 1) + 1);
        let resp = engine.query_by_id(query, &opts)?;
        if let Some(trace) = &resp.trace {
            stages.accumulate(trace);
        }
        let ranked: Vec<ObjectId> = resp.results.iter().map(|r| r.id).collect();
        let Some(scores) = score_query(query, &set.members, &ranked, engine.len()) else {
            continue;
        };
        acc.add(scores);
        durations.push(resp.stats.elapsed);
        total_evals += resp.stats.distance_evals;
        outcomes.push(QueryOutcome {
            set_name: set.name.clone(),
            query,
            scores,
            elapsed: resp.stats.elapsed,
            distance_evals: resp.stats.distance_evals,
        });
    }
    let quality = acc.mean().unwrap_or(QualityScores {
        first_tier: 0.0,
        second_tier: 0.0,
        average_precision: 0.0,
    });
    let count = acc.count().max(1);
    Ok(SuiteResult {
        quality,
        timing: TimingStats::from_durations(durations).with_threads(engine.parallelism().resolve()),
        avg_distance_evals: total_evals as f64 / count as f64,
        outcomes,
        stages: stages.finish(),
    })
}

/// Times a batch of seed queries without quality scoring (the search-speed
/// benchmark suite of §6.1).
pub fn time_queries(
    engine: &SearchEngine,
    seeds: &[ObjectId],
    options: &QueryOptions,
) -> Result<TimingStats> {
    let mut durations = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let resp = engine.query_by_id(seed, options)?;
        durations.push(resp.stats.elapsed);
    }
    Ok(TimingStats::from_durations(durations).with_threads(engine.parallelism().resolve()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferret_core::engine::SearchEngine;
    use ferret_core::object::DataObject;
    use ferret_core::sketch::SketchParams;
    use ferret_core::vector::FeatureVector;

    fn engine_with_clusters() -> (SearchEngine, BenchmarkSuite) {
        let params = SketchParams::new(256, vec![0.0; 4], vec![1.0; 4]).unwrap();
        let mut engine = SearchEngine::builder(params, 11).build().unwrap();
        // Two clusters of 3 objects each + 4 distractors.
        let mut id = 0u64;
        let mut sets = Vec::new();
        for base in [0.1f32, 0.7] {
            let mut set = Vec::new();
            for j in 0..3 {
                let x = base + j as f32 * 0.01;
                let obj = DataObject::single(FeatureVector::new(vec![x, x, x, x]).unwrap());
                engine.insert(ObjectId(id), obj).unwrap();
                set.push(ObjectId(id));
                id += 1;
            }
            sets.push(set);
        }
        for j in 0..4 {
            let x = 0.35 + j as f32 * 0.02;
            let obj = DataObject::single(FeatureVector::new(vec![x, 0.9, x, 0.2]).unwrap());
            engine.insert(ObjectId(id), obj).unwrap();
            id += 1;
        }
        (engine, BenchmarkSuite::from_sets(&sets))
    }

    #[test]
    fn run_suite_scores_clusters_perfectly() {
        let (engine, suite) = engine_with_clusters();
        let result = run_suite(&engine, &suite, &QueryOptions::brute_force(1)).unwrap();
        assert_eq!(result.outcomes.len(), 2);
        assert!((result.quality.average_precision - 1.0).abs() < 1e-9);
        assert!((result.quality.first_tier - 1.0).abs() < 1e-9);
        assert_eq!(result.timing.count, 2);
        assert!(result.avg_distance_evals >= 1.0);
    }

    #[test]
    fn run_suite_raises_k_for_second_tier() {
        let (engine, suite) = engine_with_clusters();
        // k = 1 must internally become >= 2*(3-1)+1 = 5.
        let result = run_suite(&engine, &suite, &QueryOptions::brute_force(1)).unwrap();
        // Second tier computable and perfect.
        assert!((result.quality.second_tier - 1.0).abs() < 1e-9);
    }

    #[test]
    fn time_queries_returns_stats() {
        let (engine, _) = engine_with_clusters();
        let seeds = vec![ObjectId(0), ObjectId(3), ObjectId(6)];
        let stats = time_queries(&engine, &seeds, &QueryOptions::brute_force(3)).unwrap();
        assert_eq!(stats.count, 3);
        assert!(stats.max >= stats.min);
        assert!(stats.mean > Duration::ZERO);
    }

    #[test]
    fn timing_stats_math() {
        let ms = |v: u64| Duration::from_millis(v);
        let stats = TimingStats::from_durations(vec![ms(10), ms(20), ms(30), ms(40), ms(100)]);
        assert_eq!(stats.count, 5);
        assert_eq!(stats.median, ms(30));
        assert_eq!(stats.min, ms(10));
        assert_eq!(stats.max, ms(100));
        assert_eq!(stats.mean, ms(40));
        assert_eq!(stats.p95, ms(100));
        assert_eq!(stats.threads, 1);
        assert_eq!(stats.with_threads(4).threads, 4);
        let empty = TimingStats::from_durations(vec![]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, Duration::ZERO);
    }

    #[test]
    fn timing_stats_record_engine_threads() {
        let (mut engine, _) = engine_with_clusters();
        engine.set_parallelism(ferret_core::parallel::Parallelism::Threads(3));
        let stats = time_queries(&engine, &[ObjectId(0)], &QueryOptions::brute_force(2)).unwrap();
        assert_eq!(stats.threads, 3);
    }

    #[test]
    fn stage_breakdown_present_only_with_telemetry() {
        let (mut engine, suite) = engine_with_clusters();
        let result = run_suite(&engine, &suite, &QueryOptions::default()).unwrap();
        assert!(result.stages.is_none());

        let registry = std::sync::Arc::new(ferret_core::telemetry::MetricsRegistry::new());
        engine.set_telemetry(Some(registry));
        let result = run_suite(&engine, &suite, &QueryOptions::default()).unwrap();
        let stages = result.stages.expect("traces collected");
        assert_eq!(stages.traced, 2);
        assert!(stages.sketch > Duration::ZERO);
        assert!(stages.filter > Duration::ZERO);
    }

    #[test]
    fn unknown_seed_errors() {
        let (engine, _) = engine_with_clusters();
        let suite = BenchmarkSuite::from_sets(&[vec![ObjectId(999), ObjectId(0)]]);
        assert!(run_suite(&engine, &suite, &QueryOptions::brute_force(1)).is_err());
    }
}
