//! # ferret-eval
//!
//! The performance evaluation tool of the Ferret toolkit (paper §4.3 and
//! §6.2): benchmark files describing gold-standard similarity sets, the
//! first-tier / second-tier / average-precision quality metrics, a batch
//! query runner with timing statistics, and plain-text table rendering for
//! the experiment harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmark;
pub mod estimator;
pub mod metrics;
pub mod report;
pub mod runner;

pub use benchmark::{BenchmarkParseError, BenchmarkSuite, SimilaritySet};
pub use estimator::{
    clustered_objects, evaluate_builder, evaluate_strategy, folded_differ_probability,
    raw_differ_probability, recall_parity, seeded_corpus, EstimatorReport, PairCheck, ParityReport,
};
pub use metrics::{score_query, QualityAccumulator, QualityScores};
pub use report::{format_duration, format_ratio, format_score, TextTable};
pub use runner::{run_suite, time_queries, QueryOutcome, SuiteResult, TimingStats};
