//! Figure 8 — query performance of the three search methods.
//!
//! Reproduces the paper's Figure 8: average query time vs dataset size for
//! `BruteForceOriginal`, `BruteForceSketch`, and `Filtering`, one panel
//! per data type (mixed image, TIMIT-statistics audio, mixed shape).
//!
//! Expected shape (paper §6.3.3): all three grow linearly in the dataset
//! size; sketch brute force beats original brute force by roughly the
//! feature:sketch size ratio when that ratio is large (×4 at 22:1 for
//! shapes, little gain at 5:1 for images); filtering is fastest.

// Dev-tool output and test fixtures are written directly; the Vfs seam
// covers production durability, not harness artifacts.
#![allow(clippy::disallowed_methods)]

use std::time::Duration;

use ferret_bench::BenchArgs;
use ferret_core::engine::{EngineBuilder, EngineConfig, QueryMode, QueryOptions, SearchEngine};
use ferret_core::filter::FilterParams;
use ferret_core::object::{DataObject, ObjectId};
use ferret_datatypes::audio::{generate_mixed_audio, mixed_audio_sketch_params};
use ferret_datatypes::image::{generate_mixed_images, image_sketch_params};
use ferret_datatypes::shape::{generate_mixed_shapes, mixed_shape_sketch_params};
use ferret_eval::{format_duration, time_queries, TextTable};

fn build(objects: Vec<(ObjectId, DataObject)>, config: EngineConfig) -> SearchEngine {
    let mut engine = EngineBuilder::from_config(config).build().unwrap();
    for (id, obj) in objects {
        engine.insert(id, obj).expect("insert");
    }
    engine
}

fn mean_query_time(engine: &SearchEngine, options: &QueryOptions, num_queries: usize) -> Duration {
    let seeds: Vec<ObjectId> = engine
        .ids()
        .iter()
        .step_by((engine.len() / num_queries).max(1))
        .copied()
        .take(num_queries)
        .collect();
    let _ = engine.query_by_id(seeds[0], options).expect("warmup");
    time_queries(engine, &seeds, options).expect("timing").mean
}

type Generator = Box<dyn Fn(usize, u64) -> Vec<(ObjectId, DataObject)>>;

struct Panel {
    name: &'static str,
    sizes: Vec<usize>,
    filter: FilterParams,
    generate: Generator,
    config: Box<dyn Fn(u64) -> EngineConfig>,
}

fn main() {
    let args = BenchArgs::parse(1.0);
    let num_queries = 5;

    let scale_sizes = |base: &[usize]| -> Vec<usize> {
        base.iter()
            .map(|&n| ((n as f64 * args.scale) as usize).max(500))
            .collect()
    };

    let panels = vec![
        Panel {
            name: "Mixed image (96-bit sketches, 5:1 ratio)",
            sizes: scale_sizes(&[5_000, 10_000, 20_000, 40_000]),
            filter: FilterParams {
                query_segments: 2,
                candidates_per_segment: 40,
                ..FilterParams::default()
            },
            generate: Box::new(generate_mixed_images),
            config: Box::new(|seed| EngineConfig::basic(image_sketch_params(96, 2), seed)),
        },
        Panel {
            name: "TIMIT audio (600-bit sketches, 10:1 ratio)",
            sizes: scale_sizes(&[1_500, 3_000, 6_300, 12_000]),
            filter: FilterParams {
                query_segments: 3,
                candidates_per_segment: 40,
                ..FilterParams::default()
            },
            generate: Box::new(generate_mixed_audio),
            config: Box::new(|seed| EngineConfig::basic(mixed_audio_sketch_params(600, 2), seed)),
        },
        Panel {
            name: "Mixed 3D shape (800-bit sketches, 22:1 ratio)",
            sizes: scale_sizes(&[5_000, 10_000, 20_000, 40_000]),
            filter: FilterParams {
                query_segments: 1,
                candidates_per_segment: 40,
                ..FilterParams::default()
            },
            generate: Box::new(generate_mixed_shapes),
            config: Box::new(|seed| EngineConfig::basic(mixed_shape_sketch_params(800, 2), seed)),
        },
    ];

    println!(
        "\nFigure 8: query time vs dataset size, three methods (scale {}):\n",
        args.scale
    );
    let mut csv = String::from("panel,objects,mode,mean_seconds\n");
    for panel in panels {
        eprintln!("[fig8] panel: {}", panel.name);
        let mut table = TextTable::new(vec![
            "Objects",
            "BruteForceOriginal",
            "BruteForceSketch",
            "Filtering",
        ]);
        for &n in &panel.sizes {
            eprintln!("[fig8]   building {n}-object engine...");
            let engine = build(
                (panel.generate)(n, args.seed ^ n as u64),
                (panel.config)(args.seed),
            );
            let mut cells = vec![n.to_string()];
            for mode in [
                QueryMode::BruteForceOriginal,
                QueryMode::BruteForceSketch,
                QueryMode::Filtering,
            ] {
                let options = QueryOptions::default()
                    .with_k(10)
                    .with_mode(mode)
                    .with_filter(panel.filter.clone());
                let mean = mean_query_time(&engine, &options, num_queries);
                csv.push_str(&format!(
                    "{},{n},{mode},{:.6}\n",
                    panel.name,
                    mean.as_secs_f64()
                ));
                cells.push(format_duration(mean));
            }
            table.row(cells);
        }
        println!("{}:\n{}", panel.name, table.render());
    }
    if let Some(path) = &args.csv {
        std::fs::write(path, &csv).expect("write csv");
        eprintln!("[fig8] series written to {}", path.display());
    }
    println!("paper reference — linear growth in n for all methods; sketch speedup over");
    println!("original grows with the feature:sketch ratio (~1x at 5:1 images, ~4x at");
    println!("22:1 shapes); filtering is fastest and still linear in n.");
}
