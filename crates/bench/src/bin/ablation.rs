//! Ablations of the toolkit's design choices (not a paper table; supports
//! the design discussion in §4.1.1 and §4.2.2).
//!
//! Three sweeps on the VARY-like image benchmark:
//!
//! 1. **XOR-fold `K`** — the sketch threshold control. `K > 1` dampens
//!    large distances; the paper argues this limits the effect of outlier
//!    segments.
//! 2. **Ranking method** — exact EMD vs thresholded EMD (with and without
//!    square-root weighting) vs the greedy upper bound: quality and cost
//!    of the object distance choices.
//! 3. **Filter parameters** — the `r` (query segments) × `cand`
//!    (candidates per segment) grid: retrieval quality vs the number of
//!    expensive object-distance evaluations.

use std::time::Instant;

use ferret_bench::{index_dataset, BenchArgs};
use ferret_core::engine::{EngineConfig, QueryOptions, RankingMethod};
use ferret_core::filter::FilterParams;
use ferret_datatypes::image::{generate_vary_dataset, image_sketch_params, VaryConfig};
use ferret_eval::{format_duration, format_score, run_suite, BenchmarkSuite, TextTable};

fn main() {
    let args = BenchArgs::parse(1.0);
    let cfg = VaryConfig {
        num_sets: 32,
        set_size: 5,
        num_distractors: args.scaled(600, 60),
        raster_size: 48,
        noise: 0.02,
        seed: args.seed,
    };
    eprintln!(
        "[ablation] generating image benchmark ({} images)...",
        cfg.num_sets * cfg.set_size + cfg.num_distractors
    );
    let dataset = generate_vary_dataset(&cfg);
    let suite = BenchmarkSuite::from_sets(&dataset.similarity_sets);

    // ---- 1. XOR-fold K sweep at fixed 96-bit sketches. ----
    println!("\nAblation 1: sketch threshold control K (96-bit sketches, sketch-only ranking):\n");
    let mut t = TextTable::new(vec!["K", "AvgPrec", "1stTier", "2ndTier"]);
    for k in [1usize, 2, 3, 4, 6] {
        let mut config = EngineConfig::basic(image_sketch_params(96, k), args.seed ^ k as u64);
        config.ranking = RankingMethod::Emd;
        let engine = index_dataset(&dataset, config);
        let r = run_suite(&engine, &suite, &QueryOptions::brute_force_sketch(10)).expect("K sweep");
        t.row(vec![
            k.to_string(),
            format_score(r.quality.average_precision),
            format_score(r.quality.first_tier),
            format_score(r.quality.second_tier),
        ]);
    }
    println!("{}", t.render());

    // ---- 2. Ranking method ablation (brute force over originals). ----
    println!("Ablation 2: object distance for ranking (brute force over originals):\n");
    let mut t = TextTable::new(vec!["Ranking", "AvgPrec", "1stTier", "MeanQuery"]);
    let methods: Vec<(&str, RankingMethod)> = vec![
        ("exact EMD", RankingMethod::Emd),
        (
            "thresholded EMD (tau=4)",
            RankingMethod::ThresholdedEmd {
                tau: 4.0,
                sqrt_weights: false,
            },
        ),
        (
            "thresholded EMD + sqrt weights",
            RankingMethod::ThresholdedEmd {
                tau: 4.0,
                sqrt_weights: true,
            },
        ),
        ("greedy EMD", RankingMethod::GreedyEmd),
    ];
    for (label, method) in methods {
        let mut config = EngineConfig::basic(image_sketch_params(96, 2), args.seed ^ 11);
        config.ranking = method;
        let engine = index_dataset(&dataset, config);
        let start = Instant::now();
        let r = run_suite(&engine, &suite, &QueryOptions::brute_force(10)).expect("ranking");
        let elapsed = start.elapsed() / suite.len() as u32;
        t.row(vec![
            label.to_string(),
            format_score(r.quality.average_precision),
            format_score(r.quality.first_tier),
            format_duration(elapsed),
        ]);
    }
    println!("{}", t.render());

    // ---- 3. Filter parameter grid. ----
    println!("Ablation 3: filtering parameters (thresholded-EMD ranking):\n");
    let mut t = TextTable::new(vec!["r", "cand", "AvgPrec", "EvalsPerQuery", "MeanQuery"]);
    for r_segs in [1usize, 2, 4] {
        for cand in [10usize, 40, 160] {
            let mut config = EngineConfig::basic(image_sketch_params(96, 2), args.seed ^ 13);
            config.ranking = RankingMethod::ThresholdedEmd {
                tau: 4.0,
                sqrt_weights: true,
            };
            let engine = index_dataset(&dataset, config);
            let options = QueryOptions::filtering(
                10,
                FilterParams {
                    query_segments: r_segs,
                    candidates_per_segment: cand,
                    ..FilterParams::default()
                },
            );
            let r = run_suite(&engine, &suite, &options).expect("filter grid");
            t.row(vec![
                r_segs.to_string(),
                cand.to_string(),
                format_score(r.quality.average_precision),
                format!("{:.1}", r.avg_distance_evals),
                format_duration(r.timing.mean),
            ]);
        }
    }
    println!("{}", t.render());
    println!("expected shapes — K: moderate K (2-3) beats K=1 by damping outliers and");
    println!("very large K degrades (information loss); ranking: thresholding + sqrt");
    println!("weights beats plain EMD on subject-matching data, greedy trails slightly;");
    println!("filter grid: quality saturates with r and cand while evals grow.");
}
