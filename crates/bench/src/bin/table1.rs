//! Table 1 — results from the search-quality benchmark suite.
//!
//! Reproduces the paper's Table 1: average precision, first tier, second
//! tier, feature-vector size, sketch size, and the size ratio for the
//! VARY-like image benchmark (Ferret vs the global-feature SIMPLIcity
//! stand-in), the TIMIT-like audio benchmark, and the PSB-like 3D shape
//! benchmark (Ferret vs the raw-descriptor SHD baseline).
//!
//! Collections are synthetic (see DESIGN.md) and sized by `--scale`; the
//! quantities to compare against the paper are the *relative* orderings:
//! region-based Ferret beats the global baseline, sketched shape search
//! matches the SHD baseline at a ~22:1 storage saving, and audio quality
//! lands in the same band as the paper's.

use std::sync::Arc;

use ferret_bench::{index_dataset, BenchArgs};
use ferret_core::engine::{EngineConfig, QueryOptions, RankingMethod};
use ferret_core::filter::FilterParams;
use ferret_datatypes::audio::{
    audio_sketch_params, generate_timit_dataset, TimitConfig, AUDIO_DIM,
};
use ferret_datatypes::image::{
    generate_vary_dataset, generate_vary_dataset_global, image_sketch_params, VaryConfig,
    GLOBAL_IMAGE_DIM, IMAGE_DIM,
};
use ferret_datatypes::shape::{generate_psb_dataset, shape_sketch_params, PsbConfig, SHAPE_DIM};
use ferret_eval::{format_ratio, format_score, run_suite, BenchmarkSuite, TextTable};

fn main() {
    let args = BenchArgs::parse(1.0);
    let mut table = TextTable::new(vec![
        "Benchmark",
        "Method",
        "AvgPrec",
        "1stTier",
        "2ndTier",
        "FeatBits",
        "SketchBits",
        "Ratio",
    ]);

    // ---- VARY image benchmark: Ferret (region + sketch + thresholded
    // EMD) vs the global-feature baseline. ----
    let vary_cfg = VaryConfig {
        num_sets: 32,
        set_size: 5,
        num_distractors: args.scaled(1200, 100),
        raster_size: 48,
        noise: 0.02,
        seed: args.seed,
    };
    eprintln!(
        "[table1] generating VARY image benchmark ({} images)...",
        vary_cfg.num_sets * vary_cfg.set_size + vary_cfg.num_distractors
    );
    let vary = generate_vary_dataset(&vary_cfg);
    let mut config = EngineConfig::basic(image_sketch_params(96, 2), args.seed ^ 1);
    config.ranking = RankingMethod::ThresholdedEmd {
        tau: 4.0,
        sqrt_weights: true,
    };
    let engine = index_dataset(&vary, config);
    let suite = BenchmarkSuite::from_sets(&vary.similarity_sets);
    let options = QueryOptions::filtering(
        10,
        FilterParams {
            query_segments: 2,
            candidates_per_segment: 60,
            ..FilterParams::default()
        },
    );
    let ferret_img = run_suite(&engine, &suite, &options).expect("image suite");
    let img_feat_bits = IMAGE_DIM * 32;
    table.row(vec![
        "VARY Image".to_string(),
        "Ferret".to_string(),
        format_score(ferret_img.quality.average_precision),
        format_score(ferret_img.quality.first_tier),
        format_score(ferret_img.quality.second_tier),
        img_feat_bits.to_string(),
        "96".to_string(),
        format_ratio(img_feat_bits as f64 / 96.0),
    ]);

    eprintln!("[table1] running global-feature image baseline...");
    let vary_global = generate_vary_dataset_global(&vary_cfg);
    let config = EngineConfig::basic(
        ferret_datatypes::image::global_image_sketch_params(96, 1),
        args.seed ^ 2,
    );
    let engine = index_dataset(&vary_global, config);
    let suite = BenchmarkSuite::from_sets(&vary_global.similarity_sets);
    let baseline_img =
        run_suite(&engine, &suite, &QueryOptions::brute_force(10)).expect("baseline suite");
    table.row(vec![
        "VARY Image".to_string(),
        "Global (SIMPLIcity-like)".to_string(),
        format_score(baseline_img.quality.average_precision),
        format_score(baseline_img.quality.first_tier),
        format_score(baseline_img.quality.second_tier),
        (GLOBAL_IMAGE_DIM * 32).to_string(),
        "n/a".to_string(),
        "n/a".to_string(),
    ]);

    // ---- TIMIT audio benchmark. ----
    let timit_cfg = TimitConfig {
        num_sets: args.scaled(64, 12),
        speakers_per_set: 7,
        num_distractors: args.scaled(320, 40),
        vocab_size: 80,
        words_per_sentence: (5, 9),
        seed: args.seed ^ 3,
    };
    eprintln!(
        "[table1] synthesizing TIMIT audio benchmark ({} utterances)...",
        timit_cfg.num_sets * timit_cfg.speakers_per_set + timit_cfg.num_distractors
    );
    let timit = generate_timit_dataset(&timit_cfg);
    let config = EngineConfig::basic(audio_sketch_params(&timit, 600, 2), args.seed ^ 4);
    let engine = index_dataset(&timit, config);
    let suite = BenchmarkSuite::from_sets(&timit.similarity_sets);
    let options = QueryOptions::filtering(
        14,
        FilterParams {
            query_segments: 3,
            candidates_per_segment: 40,
            ..FilterParams::default()
        },
    );
    let ferret_audio = run_suite(&engine, &suite, &options).expect("audio suite");
    let audio_feat_bits = AUDIO_DIM * 32;
    table.row(vec![
        "TIMIT Audio".to_string(),
        "Ferret".to_string(),
        format_score(ferret_audio.quality.average_precision),
        format_score(ferret_audio.quality.first_tier),
        format_score(ferret_audio.quality.second_tier),
        audio_feat_bits.to_string(),
        "600".to_string(),
        format_ratio(audio_feat_bits as f64 / 600.0),
    ]);

    // ---- PSB shape benchmark: Ferret sketches vs the SHD baseline. ----
    let psb_cfg = PsbConfig {
        num_classes: args.scaled(46, 8),
        class_size: 5,
        num_distractors: args.scaled(300, 40),
        grid_size: 32,
        seed: args.seed ^ 5,
    };
    eprintln!(
        "[table1] voxelizing PSB shape benchmark ({} models)...",
        psb_cfg.num_classes * psb_cfg.class_size + psb_cfg.num_distractors
    );
    let psb = generate_psb_dataset(&psb_cfg);
    let config = EngineConfig::basic(shape_sketch_params(&psb, 800, 2), args.seed ^ 6);
    let engine = index_dataset(&psb, config);
    let suite = BenchmarkSuite::from_sets(&psb.similarity_sets);
    // Ferret's 3D system ranks by the sketch estimate of l1 (paper §5.3).
    let ferret_shape =
        run_suite(&engine, &suite, &QueryOptions::brute_force_sketch(10)).expect("shape suite");
    let shape_feat_bits = SHAPE_DIM * 32;
    table.row(vec![
        "PSB 3D Shape".to_string(),
        "Ferret".to_string(),
        format_score(ferret_shape.quality.average_precision),
        format_score(ferret_shape.quality.first_tier),
        format_score(ferret_shape.quality.second_tier),
        shape_feat_bits.to_string(),
        "800".to_string(),
        format_ratio(shape_feat_bits as f64 / 800.0),
    ]);
    // SHD baseline: brute force over the raw 544-d descriptors.
    let mut config = EngineConfig::basic(shape_sketch_params(&psb, 800, 2), args.seed ^ 7);
    config.seg_distance = Arc::new(ferret_core::distance::lp::L2);
    let engine = index_dataset(&psb, config);
    let shd = run_suite(&engine, &suite, &QueryOptions::brute_force(10)).expect("shd suite");
    table.row(vec![
        "PSB 3D Shape".to_string(),
        "SHD (raw descriptors)".to_string(),
        format_score(shd.quality.average_precision),
        format_score(shd.quality.first_tier),
        format_score(shd.quality.second_tier),
        shape_feat_bits.to_string(),
        "n/a".to_string(),
        "n/a".to_string(),
    ]);

    println!(
        "\nTable 1: search-quality benchmark suite (scale {}):\n",
        args.scale
    );
    println!("{}", table.render());
    println!(
        "paper reference — VARY: Ferret 0.59/0.54/0.63 (448 -> 96 bits, 4.7:1) vs SIMPLIcity 0.41/0.41/0.47;"
    );
    println!("                  TIMIT: 0.72/0.68/0.74 (6144 -> 600 bits, 10.2:1);");
    println!(
        "                  PSB: Ferret 0.32/0.30/0.41 (17472 -> 800 bits, 21.8:1) vs SHD 0.33/0.32/0.43"
    );
}
