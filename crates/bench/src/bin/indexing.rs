//! Indexing extension experiment (paper §8 future work): the banded
//! sketch index vs the linear filter scan.
//!
//! On the VARY-like image benchmark (structured data with planted
//! neighbors), compares candidate-set size, recall of the true
//! (brute-force EMD) top-10 neighbors, and candidate-generation time
//! across banding configurations and the paper's filtering approach.

use std::collections::HashSet;
use std::time::Instant;

use ferret_bench::BenchArgs;
use ferret_core::engine::{QueryOptions, SearchEngine};
use ferret_core::filter::{filter_candidates, FilterParams};
use ferret_core::index::{BandedSketchIndex, BandingParams};
use ferret_core::object::ObjectId;
use ferret_datatypes::image::{generate_vary_dataset, image_sketch_params, VaryConfig};
use ferret_eval::{format_duration, TextTable};

fn main() {
    let args = BenchArgs::parse(1.0);
    let cfg = VaryConfig {
        num_sets: 32,
        set_size: 5,
        num_distractors: args.scaled(1500, 150),
        raster_size: 48,
        noise: 0.02,
        seed: args.seed,
    };
    let n = cfg.num_sets * cfg.set_size + cfg.num_distractors;
    let num_queries = 10usize;
    eprintln!("[indexing] generating and indexing {n} VARY images...");
    let dataset = generate_vary_dataset(&cfg);
    let mut engine = SearchEngine::builder(image_sketch_params(96, 2), args.seed)
        .build()
        .unwrap();
    for (id, obj) in &dataset.objects {
        engine.insert(*id, obj.clone()).expect("insert");
    }
    let seeds: Vec<ObjectId> = engine
        .ids()
        .iter()
        .step_by(n / num_queries)
        .copied()
        .take(num_queries)
        .collect();

    // Ground truth: brute-force EMD top 10 per query.
    eprintln!("[indexing] computing brute-force ground truth...");
    let mut truth: Vec<HashSet<ObjectId>> = Vec::new();
    for &seed in &seeds {
        let resp = engine
            .query_by_id(seed, &QueryOptions::brute_force(10))
            .expect("brute force");
        truth.push(resp.results.iter().map(|r| r.id).collect());
    }

    let mut table = TextTable::new(vec![
        "Method",
        "AvgCandidates",
        "Top10Recall",
        "CandidateTime",
    ]);

    // Linear filter scan.
    let params = FilterParams {
        query_segments: 2,
        candidates_per_segment: 40,
        ..FilterParams::default()
    };
    let mut cand_total = 0usize;
    let mut recall_total = 0.0f64;
    let start = Instant::now();
    let ids = engine.ids();
    for (qi, &seed) in seeds.iter().enumerate() {
        let query = engine.sketched(seed).expect("seed").clone();
        let dataset = ids
            .iter()
            .map(|&id| (id, engine.sketched(id).expect("sketch")));
        let (cands, _) = filter_candidates(&query, dataset, &params).expect("filter");
        cand_total += cands.len();
        let hit = truth[qi].iter().filter(|id| cands.contains(id)).count();
        recall_total += hit as f64 / truth[qi].len() as f64;
    }
    let elapsed = start.elapsed() / seeds.len() as u32;
    table.row(vec![
        "filter scan (r=2, cand=40)".to_string(),
        format!("{:.0}", cand_total as f64 / seeds.len() as f64),
        format!("{:.2}", recall_total / seeds.len() as f64),
        format_duration(elapsed),
    ]);

    // Banded indexes at a few operating points.
    for (bands, rows) in [(12usize, 8usize), (8, 12), (6, 16)] {
        let bp = BandingParams { bands, rows };
        let mut index = BandedSketchIndex::new(96, bp).expect("params fit 96 bits");
        for id in engine.ids() {
            index
                .insert(id, engine.sketched(id).expect("sketch"))
                .expect("insert");
        }
        let mut cand_total = 0usize;
        let mut recall_total = 0.0f64;
        let start = Instant::now();
        for (qi, &seed) in seeds.iter().enumerate() {
            let query = engine.sketched(seed).expect("seed");
            let cands = index.candidates(query).expect("candidates");
            cand_total += cands.len();
            let hit = truth[qi].iter().filter(|id| cands.contains(id)).count();
            recall_total += hit as f64 / truth[qi].len() as f64;
        }
        let elapsed = start.elapsed() / seeds.len() as u32;
        table.row(vec![
            format!("banded index ({bands} bands x {rows} bits)"),
            format!("{:.0}", cand_total as f64 / seeds.len() as f64),
            format!("{:.2}", recall_total / seeds.len() as f64),
            format_duration(elapsed),
        ]);
    }

    println!("\nIndexing extension: candidate generation on {n} VARY images (96-bit sketches):\n");
    println!("{}", table.render());
    println!("reading — this reproduces the paper's related-work argument (§7): LSH-style");
    println!("banding is 'designed for an indexing approach, instead of the filtering");
    println!("approach we take'. With multi-segment objects, any segment colliding in any");
    println!("band admits the object, so high-recall banding floods the candidate set");
    println!("(approaching the whole dataset), while the paper's filter scan returns a");
    println!("small, focused k-NN candidate set at linear scan cost.");
}
