//! Figure 7 — average precision vs sketch size.
//!
//! Reproduces the paper's Figure 7: for each of the three quality
//! benchmarks (VARY image, TIMIT audio, PSB shape) sweep the sketch size
//! in bits, measure average precision with sketches only (filtering off,
//! i.e. `BruteForceSketch`), and compare against the solid reference line
//! of the original feature vectors (`BruteForceOriginal`). Also extracts
//! the low/high knee points of each curve and the implied
//! feature-to-sketch size ratio range (§6.3.2).

// Dev-tool output and test fixtures are written directly; the Vfs seam
// covers production durability, not harness artifacts.
#![allow(clippy::disallowed_methods)]

use ferret_bench::{find_knees, index_dataset, BenchArgs};
use ferret_core::engine::{EngineConfig, QueryOptions, RankingMethod};
use ferret_datatypes::audio::{
    audio_sketch_params, generate_timit_dataset, TimitConfig, AUDIO_DIM,
};
use ferret_datatypes::image::{generate_vary_dataset, image_sketch_params, VaryConfig, IMAGE_DIM};
use ferret_datatypes::shape::{generate_psb_dataset, shape_sketch_params, PsbConfig, SHAPE_DIM};
use ferret_datatypes::Dataset;
use ferret_eval::{format_ratio, format_score, run_suite, BenchmarkSuite, TextTable};

/// Builds an engine config for (dataset, sketch bits, seed).
type ConfigFn = Box<dyn Fn(&Dataset, usize, u64) -> EngineConfig>;

struct Panel {
    name: &'static str,
    dataset: Dataset,
    feature_bits: usize,
    sketch_sizes: Vec<usize>,
    make_config: ConfigFn,
}

/// Independent sketch seeds averaged per point ("all results reported in
/// this paper are average numbers obtained by running experiments multiple
/// times", §6.3).
const REPS: u64 = 3;

fn sweep(panel: &Panel, seed: u64) -> (f64, Vec<(usize, f64)>) {
    let suite = BenchmarkSuite::from_sets(&panel.dataset.similarity_sets);
    // Reference line: original feature vectors.
    let config = (panel.make_config)(&panel.dataset, panel.sketch_sizes[0], seed);
    let engine = index_dataset(&panel.dataset, config);
    let reference = run_suite(&engine, &suite, &QueryOptions::brute_force(10))
        .expect("reference suite")
        .quality
        .average_precision;
    drop(engine);

    let mut series = Vec::new();
    for &bits in &panel.sketch_sizes {
        let mut total = 0.0;
        for rep in 0..REPS {
            let config =
                (panel.make_config)(&panel.dataset, bits, seed ^ (bits as u64) ^ (rep << 17));
            let engine = index_dataset(&panel.dataset, config);
            total += run_suite(&engine, &suite, &QueryOptions::brute_force_sketch(10))
                .expect("sketch suite")
                .quality
                .average_precision;
        }
        let ap = total / REPS as f64;
        series.push((bits, ap));
        eprintln!(
            "[fig7]   {} @ {bits} bits: avg precision {ap:.3}",
            panel.name
        );
    }
    (reference, series)
}

fn main() {
    let args = BenchArgs::parse(1.0);

    eprintln!("[fig7] generating VARY image benchmark...");
    let vary = generate_vary_dataset(&VaryConfig {
        num_sets: 32,
        set_size: 5,
        num_distractors: args.scaled(600, 60),
        raster_size: 48,
        noise: 0.02,
        seed: args.seed,
    });
    eprintln!("[fig7] synthesizing TIMIT audio benchmark...");
    let timit = generate_timit_dataset(&TimitConfig {
        num_sets: args.scaled(40, 10),
        speakers_per_set: 7,
        num_distractors: args.scaled(200, 30),
        vocab_size: 80,
        words_per_sentence: (5, 9),
        seed: args.seed ^ 1,
    });
    eprintln!("[fig7] voxelizing PSB shape benchmark...");
    let psb = generate_psb_dataset(&PsbConfig {
        num_classes: args.scaled(30, 8),
        class_size: 5,
        num_distractors: args.scaled(180, 30),
        grid_size: 32,
        seed: args.seed ^ 2,
    });

    let panels = vec![
        Panel {
            name: "VARY image",
            dataset: vary,
            feature_bits: IMAGE_DIM * 32,
            sketch_sizes: vec![16, 32, 48, 64, 80, 96, 128, 192, 256],
            make_config: Box::new(|_, bits, seed| {
                let mut c = EngineConfig::basic(image_sketch_params(bits, 2), seed);
                c.ranking = RankingMethod::ThresholdedEmd {
                    tau: 4.0,
                    sqrt_weights: true,
                };
                c
            }),
        },
        Panel {
            name: "TIMIT audio",
            dataset: timit,
            feature_bits: AUDIO_DIM * 32,
            sketch_sizes: vec![50, 100, 150, 250, 400, 600, 800, 1024],
            make_config: Box::new(|ds, bits, seed| {
                EngineConfig::basic(audio_sketch_params(ds, bits, 2), seed)
            }),
        },
        Panel {
            name: "PSB 3D shape",
            dataset: psb,
            feature_bits: SHAPE_DIM * 32,
            sketch_sizes: vec![50, 100, 200, 400, 600, 800, 1024],
            make_config: Box::new(|ds, bits, seed| {
                EngineConfig::basic(shape_sketch_params(ds, bits, 2), seed)
            }),
        },
    ];

    let mut knee_table = TextTable::new(vec![
        "Benchmark",
        "FullVec AP",
        "Plateau AP",
        "LowKnee",
        "HighKnee",
        "RatioRange",
    ]);
    println!(
        "\nFigure 7: average precision vs sketch size (scale {}):\n",
        args.scale
    );
    let mut csv = String::from("benchmark,sketch_bits,avg_precision,reference_avg_precision\n");
    for panel in &panels {
        eprintln!("[fig7] sweeping {}...", panel.name);
        let (reference, series) = sweep(panel, args.seed ^ 9);
        println!(
            "{} (reference avg precision with original vectors: {}):",
            panel.name,
            format_score(reference)
        );
        let mut t = TextTable::new(vec!["SketchBits", "AvgPrec", "Ratio"]);
        for &(bits, ap) in &series {
            t.row(vec![
                bits.to_string(),
                format_score(ap),
                format_ratio(panel.feature_bits as f64 / bits as f64),
            ]);
        }
        println!("{}", t.render());
        for &(bits, ap) in &series {
            csv.push_str(&format!("{},{bits},{ap:.4},{reference:.4}\n", panel.name));
        }
        let (low, high) = find_knees(&series);
        let plateau = series.iter().map(|&(_, ap)| ap).fold(0.0f64, f64::max);
        knee_table.row(vec![
            panel.name.to_string(),
            format_score(reference),
            format_score(plateau),
            low.to_string(),
            high.to_string(),
            format!(
                "{} to {}",
                format_ratio(panel.feature_bits as f64 / high as f64),
                format_ratio(panel.feature_bits as f64 / low as f64)
            ),
        ]);
    }
    println!("knee analysis (§6.3.2):\n");
    println!("{}", knee_table.render());
    if let Some(path) = &args.csv {
        std::fs::write(path, &csv).expect("write csv");
        eprintln!("[fig7] series written to {}", path.display());
    }
    println!("paper reference — knees: VARY 64/88 bits (5:1 to 7:1), TIMIT 250/600 bits");
    println!("(10:1 to 31:1), PSB 200/600 bits (29:1 to 87:1); quality within a few");
    println!("percent of the original vectors above the high knee.");
}
