//! Table 2 — results from the search-speed benchmark suite.
//!
//! Reproduces the paper's Table 2: dataset size, average segments per
//! object, and average search time with sketching and filtering turned on,
//! for the Mixed-image, TIMIT-audio, and Mixed-shape datasets.
//!
//! The mixed datasets are drawn parametrically in feature space with the
//! extractors' output statistics (speed depends on cardinality, segment
//! counts, and dimensionality — not on pixel contents; see DESIGN.md).
//! Default scale is 0.1 of the paper's 660k images to keep the run short
//! on one core; pass `--scale 1.0` for paper-size collections.

use ferret_bench::BenchArgs;
use ferret_core::engine::{EngineBuilder, EngineConfig, QueryOptions, SearchEngine};
use ferret_core::filter::FilterParams;
use ferret_core::object::{DataObject, ObjectId};
use ferret_datatypes::audio::{generate_mixed_audio, mixed_audio_sketch_params};
use ferret_datatypes::image::{generate_mixed_images, image_sketch_params};
use ferret_datatypes::shape::{generate_mixed_shapes, mixed_shape_sketch_params};
use ferret_eval::{format_duration, time_queries, TextTable};

fn build_engine(objects: Vec<(ObjectId, DataObject)>, config: EngineConfig) -> SearchEngine {
    let mut engine = EngineBuilder::from_config(config).build().unwrap();
    for (id, obj) in objects {
        engine.insert(id, obj).expect("insert");
    }
    engine
}

fn row(
    table: &mut TextTable,
    name: &str,
    engine: &SearchEngine,
    options: &QueryOptions,
    num_queries: usize,
) {
    let seeds: Vec<ObjectId> = engine
        .ids()
        .iter()
        .step_by((engine.len() / num_queries).max(1))
        .copied()
        .take(num_queries)
        .collect();
    // Warm-up query.
    let _ = engine.query_by_id(seeds[0], options).expect("warmup");
    let stats = time_queries(engine, &seeds, options).expect("timing");
    let avg_segments = engine.metadata_footprint().segments as f64 / engine.len() as f64;
    table.row(vec![
        name.to_string(),
        engine.len().to_string(),
        format!("{avg_segments:.1}"),
        format_duration(stats.mean),
        format_duration(stats.median),
        format_duration(stats.p95),
    ]);
}

fn main() {
    let args = BenchArgs::parse(0.1);
    let queries = 10;
    let mut table = TextTable::new(vec![
        "Benchmark",
        "Objects",
        "Segs/Obj",
        "AvgTime",
        "Median",
        "P95",
    ]);

    // Mixed image: 660k objects at scale 1.0, 96-bit sketches, filtering.
    let n_img = args.scaled(660_000, 2_000);
    eprintln!("[table2] generating mixed image dataset ({n_img} objects)...");
    let engine = build_engine(
        generate_mixed_images(n_img, args.seed),
        EngineConfig::basic(image_sketch_params(96, 2), args.seed ^ 1),
    );
    let options = QueryOptions::filtering(
        10,
        FilterParams {
            query_segments: 2,
            candidates_per_segment: 40,
            ..FilterParams::default()
        },
    );
    eprintln!("[table2] timing image queries...");
    row(&mut table, "Mixed image", &engine, &options, queries);
    drop(engine);

    // TIMIT audio: 6,300 utterances at scale 1.0, 600-bit sketches.
    let n_audio = args.scaled(6_300, 630);
    eprintln!("[table2] generating TIMIT-sized audio dataset ({n_audio} objects)...");
    let engine = build_engine(
        generate_mixed_audio(n_audio, args.seed ^ 2),
        EngineConfig::basic(mixed_audio_sketch_params(600, 2), args.seed ^ 3),
    );
    let options = QueryOptions::filtering(
        10,
        FilterParams {
            query_segments: 3,
            candidates_per_segment: 40,
            ..FilterParams::default()
        },
    );
    eprintln!("[table2] timing audio queries...");
    row(&mut table, "TIMIT Audio", &engine, &options, queries);
    drop(engine);

    // Mixed shape: 40k single-segment models, 800-bit sketches.
    let n_shape = args.scaled(40_000, 4_000);
    eprintln!("[table2] generating mixed shape dataset ({n_shape} objects)...");
    let engine = build_engine(
        generate_mixed_shapes(n_shape, args.seed ^ 4),
        EngineConfig::basic(mixed_shape_sketch_params(800, 2), args.seed ^ 5),
    );
    let options = QueryOptions::filtering(
        10,
        FilterParams {
            query_segments: 1,
            candidates_per_segment: 40,
            ..FilterParams::default()
        },
    );
    eprintln!("[table2] timing shape queries...");
    row(&mut table, "Mixed 3D shape", &engine, &options, queries);

    println!(
        "\nTable 2: search-speed benchmark suite (filtering on, scale {}):\n",
        args.scale
    );
    println!("{}", table.render());
    println!("paper reference — Mixed image: 660,000 objs, 10.8 segs/obj, 2.0 s;");
    println!("                  TIMIT audio: 6,300 objs, 8.6 segs/obj, 0.09 s;");
    println!("                  Mixed shape: 40,000 objs, 1 seg/obj, 0.01 s");
    println!("(absolute times differ from the 2006 Pentium-4 testbed; the ordering");
    println!(" image >> audio >> shape and the per-object scaling should hold)");
}
