//! Shared infrastructure for the experiment binaries that regenerate the
//! paper's tables and figures (§6).
//!
//! Each binary accepts `--scale <f>` to shrink or grow the synthetic
//! collections (queries, distractors, dataset sizes) relative to its
//! defaults, and prints plain-text tables in the shape of the paper's.

use ferret_core::engine::{EngineBuilder, EngineConfig, SearchEngine};
use ferret_datatypes::Dataset;

/// Parsed `--scale <f>` / `--seed <n>` / `--csv <path>` process arguments.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Multiplier applied to dataset sizes.
    pub scale: f64,
    /// Master seed override.
    pub seed: u64,
    /// Optional path for machine-readable (CSV) series output.
    pub csv: Option<std::path::PathBuf>,
}

impl BenchArgs {
    /// Parses the process arguments, with the given default scale.
    pub fn parse(default_scale: f64) -> Self {
        let mut args = std::env::args().skip(1);
        let mut out = Self {
            scale: default_scale,
            seed: 0xF32237,
            csv: None,
        };
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    if let Some(v) = args.next().and_then(|s| s.parse().ok()) {
                        out.scale = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.next().and_then(|s| s.parse().ok()) {
                        out.seed = v;
                    }
                }
                "--csv" => {
                    out.csv = args.next().map(std::path::PathBuf::from);
                }
                "--help" | "-h" => {
                    eprintln!("options: --scale <f>  --seed <n>  --csv <path>");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("ignoring unknown argument {other:?}");
                }
            }
        }
        out
    }

    /// Scales a count, keeping at least `min`.
    pub fn scaled(&self, base: usize, min: usize) -> usize {
        ((base as f64 * self.scale).round() as usize).max(min)
    }
}

/// Indexes a generated dataset into a fresh engine.
pub fn index_dataset(dataset: &Dataset, config: EngineConfig) -> SearchEngine {
    let mut engine = EngineBuilder::from_config(config).build().unwrap();
    for (id, obj) in &dataset.objects {
        engine
            .insert(*id, obj.clone())
            .expect("insert generated object");
    }
    engine
}

/// Locates the low and high "knee" points of a quality-vs-sketch-size
/// curve (paper §6.3.2).
///
/// Heuristic: relative to the plateau (the maximum precision in the
/// sweep), the *low knee* is the smallest sketch size reaching 85% of the
/// plateau — below it quality degrades quickly — and the *high knee* is
/// the smallest size reaching 98% — above it quality no longer improves
/// much. Returns `(low, high)` sketch sizes.
pub fn find_knees(series: &[(usize, f64)]) -> (usize, usize) {
    assert!(!series.is_empty(), "empty sweep");
    let plateau = series.iter().map(|&(_, ap)| ap).fold(0.0f64, f64::max);
    let mut low = series.last().expect("non-empty").0;
    let mut high = series.last().expect("non-empty").0;
    for &(bits, ap) in series {
        if ap >= 0.85 * plateau {
            low = bits;
            break;
        }
    }
    for &(bits, ap) in series {
        if ap >= 0.98 * plateau {
            high = bits;
            break;
        }
    }
    (low, high.max(low))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knees_on_saturating_curve() {
        let series = vec![
            (16, 0.20),
            (32, 0.45),
            (64, 0.60),
            (96, 0.68),
            (128, 0.70),
            (256, 0.705),
        ];
        let (low, high) = find_knees(&series);
        assert_eq!(low, 64); // 0.60 >= 0.85 * 0.705.
        assert_eq!(high, 128); // 0.70 >= 0.98 * 0.705.
        assert!(high >= low);
    }

    #[test]
    fn knees_on_flat_curve() {
        let series = vec![(16, 0.5), (32, 0.5), (64, 0.5)];
        let (low, high) = find_knees(&series);
        assert_eq!(low, 16);
        assert_eq!(high, 16);
    }

    #[test]
    fn scaled_counts() {
        let args = BenchArgs {
            scale: 0.1,
            seed: 0,
            csv: None,
        };
        assert_eq!(args.scaled(1000, 10), 100);
        assert_eq!(args.scaled(50, 10), 10);
    }
}
