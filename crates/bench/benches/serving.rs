//! Benchmark for concurrent query serving: multi-client throughput over
//! the TCP protocol server.
//!
//! Measures end-to-end queries/second with 1, 2, and 4 concurrent client
//! connections against one live server (reads dispatched under the shared
//! lock, admission control enabled). Besides the criterion report, the
//! run writes a machine-readable `BENCH_serving.json` at the repository
//! root with the per-connection-count throughput.

// Dev-tool output and test fixtures are written directly; the Vfs seam
// covers production durability, not harness artifacts.
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;

use ferret_core::engine::EngineConfig;
use ferret_core::telemetry::MetricsRegistry;
use ferret_datatypes::image::{generate_mixed_images, image_sketch_params};
use ferret_query::{AdmissionControl, Client, FerretService, ServeConfig, Server};

const DATASET: usize = 2_000;
const QUERIES_PER_CLIENT: usize = 40;
const QUERY: &str = "query id=7 k=10 mode=filter r=2 cand=40";

fn shared_service(n: usize) -> Arc<RwLock<FerretService>> {
    let mut svc =
        FerretService::in_memory(EngineConfig::basic(image_sketch_params(96, 2), 3)).unwrap();
    let batch: Vec<_> = generate_mixed_images(n, 11)
        .into_iter()
        .map(|(id, obj)| (id, obj, None))
        .collect();
    svc.insert_batch(batch).unwrap();
    svc.enable_telemetry(Arc::new(MetricsRegistry::new()));
    Arc::new(RwLock::new(svc))
}

fn start_server(svc: &Arc<RwLock<FerretService>>) -> Server {
    let registry = svc.read().telemetry().cloned();
    let config = ServeConfig {
        workers: 8,
        queue_depth: 16,
        max_inflight: 16,
        hold: None,
    };
    let admission = Arc::new(AdmissionControl::new(
        config.max_inflight,
        registry.as_ref(),
    ));
    Server::start_with(Arc::clone(svc), "127.0.0.1:0", config, admission).unwrap()
}

/// Wall-clock seconds for `clients` connections to run
/// `QUERIES_PER_CLIENT` queries each; returns aggregate queries/second.
fn throughput(addr: std::net::SocketAddr, clients: usize) -> f64 {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..QUERIES_PER_CLIENT {
                    let reply = client.send(QUERY).unwrap();
                    assert!(reply.starts_with("OK"), "{reply}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    (clients * QUERIES_PER_CLIENT) as f64 / start.elapsed().as_secs_f64()
}

fn bench_tcp_round_trip(c: &mut Criterion) {
    let svc = shared_service(DATASET);
    let server = start_server(&svc);
    let mut client = Client::connect(server.addr()).unwrap();
    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    group.bench_function("tcp_query_round_trip", |b| {
        b.iter(|| black_box(client.send(QUERY).unwrap()));
    });
    group.finish();
    drop(client);
    server.stop();
}

fn write_json() -> std::io::Result<()> {
    let svc = shared_service(DATASET);
    let server = start_server(&svc);
    let addr = server.addr();
    // Warm-up: populate caches and the sketch scan paths once.
    throughput(addr, 1);

    let mut rows = Vec::new();
    let mut base = 0.0f64;
    for clients in [1usize, 2, 4] {
        let qps = throughput(addr, clients);
        if clients == 1 {
            base = qps;
        }
        let speedup = if base > 0.0 { qps / base } else { 0.0 };
        rows.push(format!(
            "    {{\"clients\": {clients}, \"queries_per_sec\": {qps:.1}, \"speedup_vs_1\": {speedup:.2}}}"
        ));
    }
    let registry = svc.read().telemetry().cloned().unwrap();
    let peak = registry
        .gauge("ferret_inflight_queries_peak", "", &[])
        .get();
    server.stop();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let out = format!(
        "{{\n  \"bench\": \"serving\",\n  \"host_cores\": {cores},\n  \"dataset_objects\": {DATASET},\n  \"query\": \"{QUERY}\",\n  \"queries_per_client\": {QUERIES_PER_CLIENT},\n  \"peak_inflight_queries\": {peak},\n  \"throughput\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serving.json");
    std::fs::write(&path, out)?;
    println!("wrote {}", path.display());
    Ok(())
}

criterion_group!(benches, bench_tcp_round_trip);

fn main() {
    benches();
    if let Err(e) = write_json() {
        eprintln!("could not write BENCH_serving.json: {e}");
    }
}
