//! Micro-benchmarks for the filtering unit and full queries: how much the
//! two-step filter-then-rank design saves over brute force (paper §6.3.3
//! in miniature).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ferret_core::engine::{QueryMode, QueryOptions, SearchEngine};
use ferret_core::filter::{filter_candidates, FilterParams};
use ferret_core::object::ObjectId;
use ferret_datatypes::image::{generate_mixed_images, image_sketch_params};

fn engine_with(n: usize) -> SearchEngine {
    let mut engine = SearchEngine::builder(image_sketch_params(96, 2), 3)
        .build()
        .unwrap();
    for (id, obj) in generate_mixed_images(n, 11) {
        engine.insert(id, obj).unwrap();
    }
    engine
}

fn bench_filter_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_scan");
    group.sample_size(20);
    for n in [5_000usize, 20_000] {
        let engine = engine_with(n);
        let query = engine.sketched(ObjectId(0)).unwrap().clone();
        let params = FilterParams {
            query_segments: 2,
            candidates_per_segment: 40,
            ..FilterParams::default()
        };
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| {
                let ids = engine.ids();
                let dataset = ids.iter().map(|&id| (id, engine.sketched(id).unwrap()));
                black_box(filter_candidates(black_box(&query), dataset, &params).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_query_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_modes_5k_images");
    group.sample_size(10);
    let engine = engine_with(5_000);
    for (label, mode) in [
        ("brute_original", QueryMode::BruteForceOriginal),
        ("brute_sketch", QueryMode::BruteForceSketch),
        ("filtering", QueryMode::Filtering),
    ] {
        let options = QueryOptions::default()
            .with_k(10)
            .with_mode(mode)
            .with_filter(FilterParams {
                query_segments: 2,
                candidates_per_segment: 40,
                ..FilterParams::default()
            });
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(
                    engine
                        .query_by_id(ObjectId(7), black_box(&options))
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn bench_disk_filter(c: &mut Criterion) {
    // Out-of-core filtering (paper §8 future work): streaming sketches
    // from a file vs scanning them in memory.
    use ferret_core::sketch::{filter_candidates_on_disk, SketchFileWriter};
    let mut group = c.benchmark_group("filter_scan_disk_vs_memory_20k");
    group.sample_size(10);
    let engine = engine_with(20_000);
    let query = engine.sketched(ObjectId(0)).unwrap().clone();
    let params = FilterParams {
        query_segments: 2,
        candidates_per_segment: 40,
        ..FilterParams::default()
    };
    let path =
        std::env::temp_dir().join(format!("ferret-bench-diskdb-{}.fskd", std::process::id()));
    let mut writer = SketchFileWriter::create(&path, 96).unwrap();
    for id in engine.ids() {
        writer.append(id, engine.sketched(id).unwrap()).unwrap();
    }
    writer.finish().unwrap();
    group.bench_function("memory", |b| {
        b.iter(|| {
            let ids = engine.ids();
            let dataset = ids.iter().map(|&id| (id, engine.sketched(id).unwrap()));
            black_box(filter_candidates(black_box(&query), dataset, &params).unwrap())
        });
    });
    group.bench_function("disk", |b| {
        b.iter(|| black_box(filter_candidates_on_disk(&path, black_box(&query), &params).unwrap()));
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(
    benches,
    bench_filter_scan,
    bench_query_modes,
    bench_disk_filter
);
criterion_main!(benches);
