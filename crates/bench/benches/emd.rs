//! Micro-benchmarks for the object distance functions: exact EMD
//! (transportation solver), greedy EMD, and thresholded EMD — the paper
//! calls EMD "relatively inefficient to compute" (§8), which is what
//! motivates sketch filtering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ferret_core::distance::emd::{Emd, GreedyEmd, ThresholdedEmd};
use ferret_core::distance::lp::L1;
use ferret_core::distance::ObjectDistance;
use ferret_core::object::DataObject;
use ferret_core::vector::FeatureVector;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn random_object(segments: usize, dim: usize, rng: &mut ChaCha8Rng) -> DataObject {
    DataObject::new(
        (0..segments)
            .map(|_| {
                (
                    FeatureVector::from_components(
                        (0..dim).map(|_| rng.random_range(0.0f32..1.0)).collect(),
                    ),
                    rng.random_range(0.1f32..1.0),
                )
            })
            .collect(),
    )
    .unwrap()
}

fn bench_emd_by_segments(c: &mut Criterion) {
    let mut group = c.benchmark_group("emd_exact_by_segments");
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    for segments in [2usize, 5, 11, 20, 32] {
        let x = random_object(segments, 14, &mut rng);
        let y = random_object(segments, 14, &mut rng);
        let emd = Emd::new(L1);
        group.bench_function(BenchmarkId::from_parameter(segments), |b| {
            b.iter(|| black_box(emd.distance(black_box(&x), black_box(&y)).unwrap()));
        });
    }
    group.finish();
}

fn bench_emd_variants(c: &mut Criterion) {
    // Paper-like image objects: ~11 segments of 14 dimensions.
    let mut group = c.benchmark_group("emd_variants_11seg_14d");
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let x = random_object(11, 14, &mut rng);
    let y = random_object(11, 14, &mut rng);
    let exact = Emd::new(L1);
    let greedy = GreedyEmd::new(L1);
    let thresholded = ThresholdedEmd::new(L1, 2.0, true);
    group.bench_function("exact", |b| {
        b.iter(|| black_box(exact.distance(black_box(&x), black_box(&y)).unwrap()));
    });
    group.bench_function("greedy", |b| {
        b.iter(|| black_box(greedy.distance(black_box(&x), black_box(&y)).unwrap()));
    });
    group.bench_function("thresholded_sqrt", |b| {
        b.iter(|| black_box(thresholded.distance(black_box(&x), black_box(&y)).unwrap()));
    });
    group.finish();
}

fn bench_emd_by_dim(c: &mut Criterion) {
    // Ground-distance cost dominates at high dimensionality (audio 192-d).
    let mut group = c.benchmark_group("emd_exact_by_dim_8seg");
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    for dim in [14usize, 64, 192, 544] {
        let x = random_object(8, dim, &mut rng);
        let y = random_object(8, dim, &mut rng);
        let emd = Emd::new(L1);
        group.bench_function(BenchmarkId::from_parameter(dim), |b| {
            b.iter(|| black_box(emd.distance(black_box(&x), black_box(&y)).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_emd_by_segments,
    bench_emd_variants,
    bench_emd_by_dim
);
criterion_main!(benches);
