//! Benchmark for the LSM-style segmented index layout: read-latency
//! stability under concurrent ingest.
//!
//! The experiment pits the two `IndexLayout`s against each other on the
//! same workload: reader threads run filtering queries under the shared
//! read lock while a writer thread keeps inserting (and removing)
//! objects and performing index maintenance the way the serve loop does
//! — `compact()` for the monolithic layout (a stop-the-world rebuild
//! under the write lock) versus `maintain()` for the segmented layout
//! (background merges land off-thread; applying one is an O(1) swap).
//! Besides the criterion report, the run writes a machine-readable
//! `BENCH_segmented.json` at the repository root with read p50/p99/max
//! per layout: the segmented p99 should stay flat where the monolithic
//! one absorbs the rebuild stalls.

// Dev-tool output and test fixtures are written directly; the Vfs seam
// covers production durability, not harness artifacts.
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use ferret_core::engine::{EngineBuilder, EngineConfig, QueryOptions, SearchEngine};
use ferret_core::filter::{FilterParams, FilterStrategy};
use ferret_core::object::{DataObject, ObjectId};
use ferret_core::segment::IndexLayout;
use ferret_core::telemetry::MetricsRegistry;
use ferret_datatypes::image::{generate_mixed_images, image_sketch_params};

const INITIAL: usize = 4_000;
const BATCH: usize = 64;
const READERS: usize = 2;
const MEASURE_SECS: f64 = 2.5;

fn query_options() -> QueryOptions {
    QueryOptions::filtering(
        10,
        FilterParams {
            query_segments: 2,
            candidates_per_segment: 40,
            base_threshold: None,
            weight_attenuation: 0.0,
        },
    )
}

fn build_engine(layout: IndexLayout, registry: &Arc<MetricsRegistry>) -> SearchEngine {
    let config = EngineConfig::basic(image_sketch_params(96, 2), 3)
        .with_filter_strategy(FilterStrategy::Indexed)
        .with_index_layout(layout)
        .with_memtable_size(256);
    let mut engine = EngineBuilder::from_config(config).build().unwrap();
    engine.set_telemetry(Some(Arc::clone(registry)));
    engine
        .insert_batch(generate_mixed_images(INITIAL, 11))
        .unwrap();
    engine.seal().unwrap();
    engine.compact().unwrap();
    engine
}

struct LayoutRow {
    layout: IndexLayout,
    reads: usize,
    batches: u64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
    compactions: u64,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx]
}

/// Runs the concurrent read/ingest experiment for one layout and
/// returns the read-side latency distribution.
fn run_layout(layout: IndexLayout) -> LayoutRow {
    let registry = Arc::new(MetricsRegistry::new());
    let engine = Arc::new(RwLock::new(build_engine(layout, &registry)));
    let query = generate_mixed_images(1, 99).remove(0).1;
    let stop = Arc::new(AtomicBool::new(false));
    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let latencies = Arc::clone(&latencies);
            let query = query.clone();
            let opts = query_options();
            std::thread::spawn(move || {
                let mut local = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let start = Instant::now();
                    let resp = engine.read().query(&query, &opts).unwrap();
                    local.push(start.elapsed().as_secs_f64() * 1e6);
                    black_box(resp);
                }
                latencies.lock().extend(local);
            })
        })
        .collect();

    // The writer keeps ingesting batches (with a removal backlog so
    // maintenance has real work) and runs the layout's maintenance op
    // under the same write lock the serve loop would take.
    let writer = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut next_id = INITIAL as u64;
            let mut batches = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let batch: Vec<(ObjectId, DataObject)> =
                    generate_mixed_images(BATCH, 1_000 + batches)
                        .into_iter()
                        .map(|(_, obj)| {
                            next_id += 1;
                            (ObjectId(next_id), obj)
                        })
                        .collect();
                let remove_from = next_id - BATCH as u64;
                {
                    let mut guard = engine.write();
                    guard.insert_batch(batch).unwrap();
                    for id in (remove_from..next_id).step_by(4) {
                        guard.remove(ObjectId(id)).unwrap();
                    }
                    match layout {
                        IndexLayout::Monolithic => guard.compact().unwrap(),
                        IndexLayout::Segmented => guard.maintain().unwrap(),
                    }
                }
                batches += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            batches
        })
    };

    std::thread::sleep(Duration::from_secs_f64(MEASURE_SECS));
    stop.store(true, Ordering::Relaxed);
    for h in readers {
        h.join().unwrap();
    }
    let batches = writer.join().unwrap();
    // Drain any still-running background merge so the worker thread is
    // idle before the next layout's run starts.
    engine.write().compact().unwrap();

    let mut us = Arc::try_unwrap(latencies).unwrap().into_inner();
    us.sort_by(|a, b| a.total_cmp(b));
    let compactions = registry
        .counter_value("ferret_compactions_total", &[])
        .unwrap_or(0);
    LayoutRow {
        layout,
        reads: us.len(),
        batches,
        p50_us: percentile(&us, 50.0),
        p99_us: percentile(&us, 99.0),
        max_us: us.last().copied().unwrap_or(0.0),
        compactions,
    }
}

fn bench_query_per_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("segmented");
    group.sample_size(10);
    for layout in [IndexLayout::Monolithic, IndexLayout::Segmented] {
        let registry = Arc::new(MetricsRegistry::new());
        let engine = build_engine(layout, &registry);
        let query = generate_mixed_images(1, 99).remove(0).1;
        let opts = query_options();
        group.bench_function(format!("query_{layout}"), |b| {
            b.iter(|| black_box(engine.query(&query, &opts).unwrap()));
        });
    }
    group.finish();
}

fn write_json() -> std::io::Result<()> {
    let mut rows = Vec::new();
    for layout in [IndexLayout::Monolithic, IndexLayout::Segmented] {
        let row = run_layout(layout);
        rows.push(format!(
            "    {{\"layout\": \"{}\", \"reads\": {}, \"ingest_batches\": {}, \
             \"read_p50_us\": {:.1}, \"read_p99_us\": {:.1}, \"read_max_us\": {:.1}, \
             \"compactions\": {}}}",
            row.layout, row.reads, row.batches, row.p50_us, row.p99_us, row.max_us, row.compactions
        ));
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let out = format!(
        "{{\n  \"bench\": \"segmented\",\n  \"host_cores\": {cores},\n  \
         \"initial_objects\": {INITIAL},\n  \"ingest_batch\": {BATCH},\n  \
         \"readers\": {READERS},\n  \"measure_secs\": {MEASURE_SECS},\n  \
         \"layouts\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_segmented.json");
    std::fs::write(&path, out)?;
    println!("wrote {}", path.display());
    Ok(())
}

criterion_group!(benches, bench_query_per_layout);

fn main() {
    benches();
    if let Err(e) = write_json() {
        eprintln!("could not write BENCH_segmented.json: {e}");
    }
}
