//! Hybrid-query pushdown benchmark: predicate pushdown versus
//! post-filtering for a selective attribute predicate.
//!
//! Builds a 5 000-object corpus banded into 50 attribute groups (the
//! predicate `band:7` matches 2% of the corpus), then answers the same
//! top-k hybrid query two ways:
//!
//!  * **pushdown** — the attribute candidate set is handed to the
//!    filtering query as a restriction, so excluded objects are skipped
//!    before candidate-heap admission and never reach EMD ranking;
//!  * **post-filter** — the filtering query runs unrestricted with a
//!    candidate budget wide enough to surface k matching objects, and
//!    the predicate is applied to the ranked output afterwards.
//!
//! The hardware-independent comparison is `distance_evals` (objects
//! whose EMD to the query was computed); wall time is reported too but
//! on a 1-core host it understates the win. The run also cross-checks
//! pushdown against an unbounded post-filter oracle before timing
//! anything, and writes `BENCH_hybrid.json` at the repository root.

// Dev-tool output and test fixtures are written directly; the Vfs seam
// covers production durability, not harness artifacts.
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use std::collections::HashSet;
use std::hint::black_box;
use std::time::Instant;

use ferret_attr::{AttrIndex, AttrsBuilder, Query};
use ferret_core::engine::{QueryOptions, QueryResponse, SearchEngine};
use ferret_core::filter::FilterParams;
use ferret_core::object::{DataObject, ObjectId};
use ferret_core::sketch::SketchParams;
use ferret_core::vector::FeatureVector;

const DIM: usize = 4;
const N: usize = 5_000;
const BANDS: u64 = 50;
const K: usize = 10;
const SEED: u64 = 0x00FE_44E7;
const PREDICATE: &str = "band:7";

/// Candidate budget for the unrestricted baseline: at 2% selectivity it
/// must rank ~50x more candidates than k to surface k matches.
const BASELINE_CANDIDATES: usize = 1_000;

fn mix64(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn object(i: u64) -> DataObject {
    let v: Vec<f32> = (0..DIM as u64)
        .map(|d| {
            let unit = (mix64(SEED, i * DIM as u64 + d) >> 11) as f64 / (1u64 << 53) as f64;
            unit as f32
        })
        .collect();
    DataObject::single(FeatureVector::new(v).unwrap())
}

fn build() -> (SearchEngine, HashSet<ObjectId>) {
    let params = SketchParams::with_options(128, 2, vec![0.0; DIM], vec![1.0; DIM], None).unwrap();
    let mut engine = SearchEngine::builder(params, SEED).build().unwrap();
    let mut attrs = AttrIndex::new();
    let items: Vec<(ObjectId, DataObject)> = (0..N as u64)
        .map(|i| {
            attrs.insert(
                ObjectId(i),
                AttrsBuilder::new()
                    .keyword("band", &format!("{}", i % BANDS))
                    .build(),
            );
            (ObjectId(i), object(i))
        })
        .collect();
    engine.insert_batch(items).unwrap();
    let allowed = Query::parse(PREDICATE).unwrap().eval(&attrs);
    (engine, allowed)
}

fn filter_params(candidates_per_segment: usize) -> FilterParams {
    FilterParams {
        candidates_per_segment,
        ..Default::default()
    }
}

fn pushdown_options(allowed: &HashSet<ObjectId>) -> QueryOptions {
    QueryOptions::default()
        .with_k(K)
        .with_filter(filter_params(BASELINE_CANDIDATES))
        .with_restrict(allowed.clone())
}

fn baseline_options() -> QueryOptions {
    QueryOptions::default()
        .with_k(BASELINE_CANDIDATES)
        .with_filter(filter_params(BASELINE_CANDIDATES))
}

fn post_filter(resp: &QueryResponse, allowed: &HashSet<ObjectId>) -> Vec<(ObjectId, f64)> {
    resp.results
        .iter()
        .filter(|r| allowed.contains(&r.id))
        .take(K)
        .map(|r| (r.id, r.distance))
        .collect()
}

fn bench_pushdown_vs_post_filter(c: &mut Criterion) {
    let (engine, allowed) = build();
    let seed = object(0);
    let pushdown = pushdown_options(&allowed);
    let baseline = baseline_options();

    let mut group = c.benchmark_group("hybrid_pushdown");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function(BenchmarkId::new("pushdown", N), |b| {
        b.iter(|| black_box(engine.query(black_box(&seed), &pushdown).unwrap()));
    });
    group.bench_function(BenchmarkId::new("post_filter", N), |b| {
        b.iter(|| {
            let resp = engine.query(black_box(&seed), &baseline).unwrap();
            black_box(post_filter(&resp, &allowed))
        });
    });
    group.finish();
}

fn time_mean_ns<R>(reps: usize, mut routine: impl FnMut() -> R) -> f64 {
    black_box(routine());
    let start = Instant::now();
    for _ in 0..reps {
        black_box(routine());
    }
    start.elapsed().as_nanos() as f64 / reps as f64
}

struct Sample {
    pushdown_ns: f64,
    post_filter_ns: f64,
    pushdown_evals: usize,
    post_filter_evals: usize,
    matching: usize,
}

fn collect_sample() -> Sample {
    let (engine, allowed) = build();
    let seed = object(0);
    let pushdown = pushdown_options(&allowed);
    let baseline = baseline_options();

    // Correctness cross-check before timing: against an *unbounded*
    // candidate budget the post-filter oracle is exact, so pushdown
    // must reproduce it bit for bit.
    let unbounded = QueryOptions::default()
        .with_k(K)
        .with_filter(filter_params(N));
    let unbounded_restricted = unbounded.clone().with_restrict(allowed.clone());
    let oracle_full = engine.query(&seed, &unbounded.with_k(N)).unwrap();
    let oracle = post_filter(&oracle_full, &allowed);
    let got: Vec<(ObjectId, f64)> = engine
        .query(&seed, &unbounded_restricted)
        .unwrap()
        .results
        .iter()
        .map(|r| (r.id, r.distance))
        .collect();
    assert_eq!(got, oracle, "pushdown diverged from the post-filter oracle");

    let push_resp = engine.query(&seed, &pushdown).unwrap();
    let base_resp = engine.query(&seed, &baseline).unwrap();
    assert!(
        post_filter(&base_resp, &allowed).len() >= K,
        "baseline budget too small to surface {K} matches"
    );
    Sample {
        pushdown_ns: time_mean_ns(5, || engine.query(&seed, &pushdown).unwrap()),
        post_filter_ns: time_mean_ns(5, || {
            let resp = engine.query(&seed, &baseline).unwrap();
            post_filter(&resp, &allowed)
        }),
        pushdown_evals: push_resp.stats.distance_evals,
        post_filter_evals: base_resp.stats.distance_evals,
        matching: allowed.len(),
    }
}

fn write_json(s: &Sample) -> std::io::Result<()> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let reduction = s.post_filter_evals as f64 / s.pushdown_evals.max(1) as f64;
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"hybrid\",\n");
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str(&format!("  \"corpus\": {N},\n"));
    out.push_str(&format!("  \"k\": {K},\n"));
    out.push_str(&format!("  \"predicate\": \"{PREDICATE}\",\n"));
    out.push_str(&format!(
        "  \"selectivity\": {:.4},\n",
        s.matching as f64 / N as f64
    ));
    out.push_str(
        "  \"note\": \"single-query latency, serial; on a 1-core host wall-clock ratios \
         understate pushdown because both paths share one core, so the hardware-independent \
         comparison is distance_evals (EMD computations per query)\",\n",
    );
    out.push_str(&format!(
        "  \"pushdown\": {{\"ns\": {:.0}, \"distance_evals\": {}}},\n",
        s.pushdown_ns, s.pushdown_evals
    ));
    out.push_str(&format!(
        "  \"post_filter\": {{\"ns\": {:.0}, \"distance_evals\": {}}},\n",
        s.post_filter_ns, s.post_filter_evals
    ));
    out.push_str(&format!(
        "  \"ranked_candidate_reduction\": {reduction:.3}\n"
    ));
    out.push_str("}\n");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_hybrid.json");
    std::fs::write(&path, out)?;
    println!("wrote {}", path.display());
    Ok(())
}

criterion_group!(benches, bench_pushdown_vs_post_filter);

fn main() {
    benches();
    let sample = collect_sample();
    if let Err(e) = write_json(&sample) {
        eprintln!("could not write BENCH_hybrid.json: {e}");
    }
    let reduction = sample.post_filter_evals as f64 / sample.pushdown_evals.max(1) as f64;
    assert!(
        reduction >= 2.0,
        "pushdown must rank fewer candidates than post-filtering on a selective \
         predicate: pushdown {} vs post-filter {}",
        sample.pushdown_evals,
        sample.post_filter_evals
    );
}
