//! Benchmarks for the parallel execution layer: filter-scan and EMD-rank
//! throughput as a function of worker-thread count, at two dataset sizes.
//!
//! Besides the criterion report, the run writes a machine-readable
//! `BENCH_parallel.json` at the repository root with per-thread-count
//! means, speedups relative to one thread, and a `results_identical` flag
//! confirming the determinism contract held on this machine.

// Dev-tool output and test fixtures are written directly; the Vfs seam
// covers production durability, not harness artifacts.
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;

use ferret_core::distance::emd::Emd;
use ferret_core::distance::lp::L1;
use ferret_core::engine::SearchEngine;
use ferret_core::filter::{filter_candidates_sharded, FilterParams};
use ferret_core::object::{DataObject, ObjectId};
use ferret_core::rank::{rank_candidates_parallel, SearchResult};
use ferret_core::sketch::SketchedObject;
use ferret_datatypes::image::{generate_mixed_images, image_sketch_params};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const FILTER_SIZES: [usize; 2] = [5_000, 20_000];
const RANK_SIZES: [usize; 2] = [100, 400];

fn engine_with(n: usize) -> SearchEngine {
    let mut engine = SearchEngine::builder(image_sketch_params(96, 2), 3)
        .build()
        .unwrap();
    for (id, obj) in generate_mixed_images(n, 11) {
        engine.insert(id, obj).unwrap();
    }
    engine
}

fn filter_params() -> FilterParams {
    FilterParams {
        query_segments: 2,
        candidates_per_segment: 40,
        ..FilterParams::default()
    }
}

fn bench_filter_scan_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_scan_threads");
    group.sample_size(10);
    for n in FILTER_SIZES {
        let engine = engine_with(n);
        let query = engine.sketched(ObjectId(0)).unwrap().clone();
        let dataset: Vec<(ObjectId, &SketchedObject)> = engine
            .ids()
            .iter()
            .map(|&id| (id, engine.sketched(id).unwrap()))
            .collect();
        let params = filter_params();
        group.throughput(Throughput::Elements(n as u64));
        for threads in THREAD_COUNTS {
            group.bench_function(BenchmarkId::new(format!("{n}"), threads), |b| {
                b.iter(|| {
                    black_box(
                        filter_candidates_sharded(black_box(&query), &dataset, &params, threads)
                            .unwrap(),
                    )
                });
            });
        }
    }
    group.finish();
}

fn bench_emd_rank_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("emd_rank_threads");
    group.sample_size(10);
    for n in RANK_SIZES {
        let objects: Vec<(ObjectId, DataObject)> = generate_mixed_images(n, 23);
        let query = objects[0].1.clone();
        let candidates: Vec<(ObjectId, &DataObject)> =
            objects.iter().map(|(id, obj)| (*id, obj)).collect();
        let emd = Emd::new(L1);
        group.throughput(Throughput::Elements(n as u64));
        for threads in THREAD_COUNTS {
            group.bench_function(BenchmarkId::new(format!("{n}"), threads), |b| {
                b.iter(|| {
                    black_box(
                        rank_candidates_parallel(black_box(&query), &candidates, &emd, 10, threads)
                            .unwrap(),
                    )
                });
            });
        }
    }
    group.finish();
}

/// One measured configuration for the JSON report.
struct Sample {
    bench: &'static str,
    size: usize,
    threads: usize,
    mean_ns: f64,
    elements_per_sec: f64,
}

fn time_mean_ns<R>(reps: usize, mut routine: impl FnMut() -> R) -> f64 {
    // One warm-up, then the mean of `reps` timed runs.
    black_box(routine());
    let start = Instant::now();
    for _ in 0..reps {
        black_box(routine());
    }
    start.elapsed().as_nanos() as f64 / reps as f64
}

fn collect_json_samples() -> (Vec<Sample>, bool) {
    let mut samples = Vec::new();
    let mut identical = true;

    for n in FILTER_SIZES {
        let engine = engine_with(n);
        let query = engine.sketched(ObjectId(0)).unwrap().clone();
        let dataset: Vec<(ObjectId, &SketchedObject)> = engine
            .ids()
            .iter()
            .map(|&id| (id, engine.sketched(id).unwrap()))
            .collect();
        let params = filter_params();
        let baseline = filter_candidates_sharded(&query, &dataset, &params, 1).unwrap();
        for threads in THREAD_COUNTS {
            let out = filter_candidates_sharded(&query, &dataset, &params, threads).unwrap();
            identical &= out == baseline;
            let mean_ns = time_mean_ns(5, || {
                filter_candidates_sharded(&query, &dataset, &params, threads).unwrap()
            });
            samples.push(Sample {
                bench: "filter_scan",
                size: n,
                threads,
                mean_ns,
                elements_per_sec: n as f64 / (mean_ns * 1e-9),
            });
        }
    }

    for n in RANK_SIZES {
        let objects: Vec<(ObjectId, DataObject)> = generate_mixed_images(n, 23);
        let query = objects[0].1.clone();
        let candidates: Vec<(ObjectId, &DataObject)> =
            objects.iter().map(|(id, obj)| (*id, obj)).collect();
        let emd = Emd::new(L1);
        let baseline: Vec<SearchResult> =
            rank_candidates_parallel(&query, &candidates, &emd, 10, 1).unwrap();
        for threads in THREAD_COUNTS {
            let out = rank_candidates_parallel(&query, &candidates, &emd, 10, threads).unwrap();
            identical &= out == baseline;
            let mean_ns = time_mean_ns(5, || {
                rank_candidates_parallel(&query, &candidates, &emd, 10, threads).unwrap()
            });
            samples.push(Sample {
                bench: "emd_rank",
                size: n,
                threads,
                mean_ns,
                elements_per_sec: n as f64 / (mean_ns * 1e-9),
            });
        }
    }

    (samples, identical)
}

fn write_json(samples: &[Sample], identical: bool) -> std::io::Result<()> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"parallel\",\n");
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str(&format!(
        "  \"results_identical_across_threads\": {identical},\n"
    ));
    out.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let base = samples
            .iter()
            .find(|b| b.bench == s.bench && b.size == s.size && b.threads == 1)
            .map(|b| b.mean_ns)
            .unwrap_or(s.mean_ns);
        let speedup = base / s.mean_ns.max(1e-9);
        out.push_str(&format!(
            "    {{\"bench\": \"{}\", \"size\": {}, \"threads\": {}, \"mean_ns\": {:.0}, \"elements_per_sec\": {:.0}, \"speedup_vs_1_thread\": {:.3}}}{}\n",
            s.bench,
            s.size,
            s.threads,
            s.mean_ns,
            s.elements_per_sec,
            speedup,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_parallel.json");
    std::fs::write(&path, out)?;
    println!("wrote {}", path.display());
    Ok(())
}

criterion_group!(benches, bench_filter_scan_threads, bench_emd_rank_threads);

fn main() {
    benches();
    let (samples, identical) = collect_json_samples();
    if let Err(e) = write_json(&samples, identical) {
        eprintln!("could not write BENCH_parallel.json: {e}");
    }
    assert!(
        identical,
        "parallel results diverged from the serial baseline"
    );
}
