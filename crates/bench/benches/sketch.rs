//! Micro-benchmarks for sketch construction and Hamming comparison — the
//! two hot operations of the core engine (paper §4.1.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ferret_core::sketch::{BitVec, SketchBuilder, SketchParams};
use ferret_core::vector::FeatureVector;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn random_vector(dim: usize, rng: &mut ChaCha8Rng) -> FeatureVector {
    FeatureVector::from_components((0..dim).map(|_| rng.random_range(0.0..1.0)).collect())
}

fn bench_sketch_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch_construction");
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    // The paper's three configurations: image 14-d/96-bit, audio
    // 192-d/600-bit, shape 544-d/800-bit.
    for (label, dim, bits) in [
        ("image_14d_96b", 14usize, 96usize),
        ("audio_192d_600b", 192, 600),
        ("shape_544d_800b", 544, 800),
    ] {
        let params =
            SketchParams::with_options(bits, 2, vec![0.0; dim], vec![1.0; dim], None).unwrap();
        let builder = SketchBuilder::new(params, 7);
        let v = random_vector(dim, &mut rng);
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| black_box(builder.sketch(black_box(&v)).unwrap()));
        });
    }
    group.finish();
}

fn bench_hamming(c: &mut Criterion) {
    let mut group = c.benchmark_group("hamming_distance");
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    for bits in [96usize, 600, 800] {
        let a = BitVec::from_bits(&(0..bits).map(|_| rng.random_bool(0.5)).collect::<Vec<_>>());
        let b = BitVec::from_bits(&(0..bits).map(|_| rng.random_bool(0.5)).collect::<Vec<_>>());
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::from_parameter(bits), |bench| {
            bench.iter(|| black_box(black_box(&a).hamming_unchecked(black_box(&b))));
        });
    }
    group.finish();
}

fn bench_hamming_scan(c: &mut Criterion) {
    // The filtering unit's inner loop: one query sketch against a stream
    // of dataset sketches.
    let mut group = c.benchmark_group("hamming_scan_100k");
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    for bits in [96usize, 800] {
        let query = BitVec::from_bits(&(0..bits).map(|_| rng.random_bool(0.5)).collect::<Vec<_>>());
        let dataset: Vec<BitVec> = (0..100_000)
            .map(|_| {
                BitVec::from_bits(&(0..bits).map(|_| rng.random_bool(0.5)).collect::<Vec<_>>())
            })
            .collect();
        group.throughput(Throughput::Elements(dataset.len() as u64));
        group.bench_function(BenchmarkId::from_parameter(bits), |bench| {
            bench.iter(|| {
                let mut sum = 0u64;
                for s in &dataset {
                    sum += u64::from(query.hamming_unchecked(s));
                }
                black_box(sum)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sketch_construction,
    bench_hamming,
    bench_hamming_scan
);
criterion_main!(benches);
