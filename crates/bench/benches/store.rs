//! Micro-benchmarks for the metadata store: commit throughput under the
//! two durability policies, and recovery/checkpoint cost (paper §4.1.3's
//! performance/durability trade-off).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::path::PathBuf;

use ferret_store::{Database, DbOptions, Durability};

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ferret-bench-store-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bench_commit_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_commit");
    group.sample_size(20);
    for (label, durability) in [
        ("buffered", Durability::Buffered { flush_every: 256 }),
        ("sync_every_commit", Durability::Sync),
    ] {
        let dir = tmpdir(label);
        let mut db = Database::open_with(
            &dir,
            DbOptions {
                durability,
                checkpoint_every: None,
            },
        )
        .unwrap();
        let value = vec![0xABu8; 256];
        let mut key = 0u64;
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                key += 1;
                db.put("bench", &key.to_le_bytes(), black_box(&value))
                    .unwrap();
            });
        });
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_open_with_recovery");
    group.sample_size(10);
    for records in [1_000usize, 10_000] {
        let dir = tmpdir(&format!("recover-{records}"));
        {
            let mut db = Database::open_with(
                &dir,
                DbOptions {
                    durability: Durability::Buffered { flush_every: 1024 },
                    checkpoint_every: None,
                },
            )
            .unwrap();
            let value = vec![0x5Au8; 128];
            for i in 0..records as u64 {
                db.put("bench", &i.to_le_bytes(), &value).unwrap();
            }
            db.flush().unwrap();
        }
        group.bench_function(BenchmarkId::from_parameter(records), |b| {
            b.iter(|| {
                let db = Database::open(black_box(&dir)).unwrap();
                black_box(db.table_len("bench"))
            });
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

criterion_group!(benches, bench_commit_throughput, bench_recovery);
criterion_main!(benches);
