//! Benchmark for the observability layer: what does an enabled
//! `MetricsRegistry` cost on the query hot path?
//!
//! Measures a filter-mode query over a mid-size image dataset with
//! telemetry off and on, plus the raw cost of single registry operations.
//! Besides the criterion report, the run writes a machine-readable
//! `BENCH_telemetry.json` at the repository root with the per-query means
//! and the relative overhead.

// Dev-tool output and test fixtures are written directly; the Vfs seam
// covers production durability, not harness artifacts.
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ferret_core::engine::{QueryOptions, SearchEngine};
use ferret_core::filter::FilterParams;
use ferret_core::object::ObjectId;
use ferret_core::telemetry::{MetricsRegistry, Unit, LATENCY_BUCKETS_NS};
use ferret_datatypes::image::{generate_mixed_images, image_sketch_params};

const DATASET: usize = 5_000;

fn engine_with(n: usize) -> SearchEngine {
    let mut engine = SearchEngine::builder(image_sketch_params(96, 2), 3)
        .build()
        .unwrap();
    for (id, obj) in generate_mixed_images(n, 11) {
        engine.insert(id, obj).unwrap();
    }
    engine
}

fn query_options() -> QueryOptions {
    QueryOptions::default()
        .with_k(10)
        .with_filter(FilterParams {
            query_segments: 2,
            candidates_per_segment: 40,
            ..FilterParams::default()
        })
}

fn bench_query_overhead(c: &mut Criterion) {
    let mut engine = engine_with(DATASET);
    let opts = query_options();
    let mut group = c.benchmark_group("telemetry_query_overhead");
    group.sample_size(10);
    for enabled in [false, true] {
        engine.set_telemetry(enabled.then(|| Arc::new(MetricsRegistry::new())));
        let label = if enabled { "on" } else { "off" };
        group.bench_function(BenchmarkId::new("filter_query", label), |b| {
            b.iter(|| black_box(engine.query_by_id(black_box(ObjectId(0)), &opts).unwrap()));
        });
    }
    group.finish();
}

fn bench_registry_primitives(c: &mut Criterion) {
    let registry = MetricsRegistry::new();
    let counter = registry.counter("bench_total", "bench", &[("mode", "filtering")]);
    let histogram = registry.histogram(
        "bench_seconds",
        "bench",
        &[("mode", "filtering")],
        &LATENCY_BUCKETS_NS,
        Unit::Nanoseconds,
    );
    let mut group = c.benchmark_group("telemetry_primitives");
    group.bench_function("counter_inc_cached_handle", |b| {
        b.iter(|| counter.inc());
    });
    group.bench_function("histogram_observe_cached_handle", |b| {
        b.iter(|| histogram.observe(black_box(1_234_567)));
    });
    group.bench_function("counter_inc_by_name", |b| {
        b.iter(|| {
            registry.inc_counter("bench_total", "bench", &[("mode", "filtering")], 1);
        });
    });
    group.finish();
}

fn time_mean_ns<R>(reps: usize, mut routine: impl FnMut() -> R) -> f64 {
    black_box(routine());
    let start = Instant::now();
    for _ in 0..reps {
        black_box(routine());
    }
    start.elapsed().as_nanos() as f64 / reps as f64
}

fn write_json() -> std::io::Result<()> {
    let mut engine = engine_with(DATASET);
    let opts = query_options();
    const REPS: usize = 30;

    engine.set_telemetry(None);
    let baseline_results = engine.query_by_id(ObjectId(0), &opts).unwrap().results;
    let off_ns = time_mean_ns(REPS, || engine.query_by_id(ObjectId(0), &opts).unwrap());

    engine.set_telemetry(Some(Arc::new(MetricsRegistry::new())));
    let on_results = engine.query_by_id(ObjectId(0), &opts).unwrap().results;
    let on_ns = time_mean_ns(REPS, || engine.query_by_id(ObjectId(0), &opts).unwrap());

    let identical = on_results == baseline_results;
    let overhead = (on_ns - off_ns) / off_ns;

    let registry = MetricsRegistry::new();
    let counter = registry.counter("t_total", "t", &[]);
    let counter_ns = time_mean_ns(1_000_000, || counter.inc());
    let histogram = registry.histogram(
        "t_seconds",
        "t",
        &[],
        &LATENCY_BUCKETS_NS,
        Unit::Nanoseconds,
    );
    let histogram_ns = time_mean_ns(1_000_000, || {
        histogram.observe_duration(Duration::from_micros(137))
    });

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let out = format!(
        "{{\n  \"bench\": \"telemetry\",\n  \"host_cores\": {cores},\n  \"dataset_objects\": {DATASET},\n  \"query\": \"filtering, k=10, 2 query segments, 40 candidates/segment\",\n  \"query_mean_ns_telemetry_off\": {off_ns:.0},\n  \"query_mean_ns_telemetry_on\": {on_ns:.0},\n  \"relative_overhead\": {overhead:.4},\n  \"results_identical\": {identical},\n  \"counter_inc_ns\": {counter_ns:.1},\n  \"histogram_observe_ns\": {histogram_ns:.1}\n}}\n"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_telemetry.json");
    std::fs::write(&path, out)?;
    println!("wrote {}", path.display());
    assert!(identical, "telemetry changed query results");
    Ok(())
}

criterion_group!(benches, bench_query_overhead, bench_registry_primitives);

fn main() {
    benches();
    if let Err(e) = write_json() {
        eprintln!("could not write BENCH_telemetry.json: {e}");
    }
}
