//! Classic-versus-one-pass sketch construction throughput.
//!
//! Sketches synthetic corpora at 1k / 10k / 100k objects with both
//! [`SketchStrategy`] settings and the same pinned seed, asserting the
//! outputs are bit-identical (the strategies differ only in how they
//! evaluate Algorithm 2, never in what they produce) and reporting
//! objects-per-second for each. The classic path is `O(N·K)` per vector
//! while the one-pass plan is `O(D·(log(N·K/D) + N/64))`, so the gap
//! widens with the fold factor `K`.
//!
//! Besides the criterion report, the run writes `BENCH_sketch_ingest.json`
//! at the repository root.

// Dev-tool output and test fixtures are written directly; the Vfs seam
// covers production durability, not harness artifacts.
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;

use ferret_core::object::DataObject;
use ferret_core::sketch::{SketchBuilder, SketchParams, SketchStrategy};
use ferret_core::vector::FeatureVector;

const NBITS: usize = 128;
const XOR_FOLDS: usize = 4;
const DIM: usize = 32;
const SIZES: [usize; 3] = [1_000, 10_000, 100_000];
const SEED: u64 = 0x00FE_44E7;

fn mix64(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn params() -> SketchParams {
    SketchParams::with_options(NBITS, XOR_FOLDS, vec![0.0; DIM], vec![1.0; DIM], None).unwrap()
}

fn corpus(n: usize) -> Vec<DataObject> {
    (0..n as u64)
        .map(|i| {
            let v: Vec<f32> = (0..DIM as u64)
                .map(|d| (mix64(SEED, i * DIM as u64 + d) >> 11) as f32 / (1u64 << 53) as f32)
                .collect();
            DataObject::single(FeatureVector::new(v).unwrap())
        })
        .collect()
}

fn builder(strategy: SketchStrategy) -> SketchBuilder {
    SketchBuilder::with_strategy(params(), SEED, strategy)
}

fn bench_classic_vs_one_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch_ingest");
    group.sample_size(10);
    let classic = builder(SketchStrategy::Classic);
    let one_pass = builder(SketchStrategy::OnePass);
    for n in SIZES {
        let objects = corpus(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::new("classic", n), |b| {
            b.iter(|| black_box(classic.sketch_objects(black_box(&objects), 1).unwrap()));
        });
        group.bench_function(BenchmarkId::new("one-pass", n), |b| {
            b.iter(|| black_box(one_pass.sketch_objects(black_box(&objects), 1).unwrap()));
        });
    }
    group.finish();
}

struct Sample {
    size: usize,
    classic_ns_per_obj: f64,
    one_pass_ns_per_obj: f64,
    classic_objs_per_sec: f64,
    one_pass_objs_per_sec: f64,
    identical: bool,
}

fn time_mean_ns<R>(reps: usize, mut routine: impl FnMut() -> R) -> f64 {
    black_box(routine());
    let start = Instant::now();
    for _ in 0..reps {
        black_box(routine());
    }
    start.elapsed().as_nanos() as f64 / reps as f64
}

fn collect_json_samples() -> Vec<Sample> {
    let classic = builder(SketchStrategy::Classic);
    let one_pass = builder(SketchStrategy::OnePass);
    SIZES
        .iter()
        .map(|&n| {
            let objects = corpus(n);
            let reps = (100_000 / n).clamp(3, 20);
            let sketches_c = classic.sketch_objects(&objects, 1).unwrap();
            let sketches_o = one_pass.sketch_objects(&objects, 1).unwrap();
            assert_eq!(sketches_c, sketches_o, "strategies diverged at n={n}");
            let classic_ns = time_mean_ns(reps, || classic.sketch_objects(&objects, 1).unwrap());
            let one_pass_ns = time_mean_ns(reps, || one_pass.sketch_objects(&objects, 1).unwrap());
            Sample {
                size: n,
                classic_ns_per_obj: classic_ns / n as f64,
                one_pass_ns_per_obj: one_pass_ns / n as f64,
                classic_objs_per_sec: n as f64 / (classic_ns * 1e-9),
                one_pass_objs_per_sec: n as f64 / (one_pass_ns * 1e-9),
                identical: true,
            }
        })
        .collect()
}

fn write_json(samples: &[Sample]) -> std::io::Result<()> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"sketch_ingest\",\n");
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str(&format!("  \"nbits\": {NBITS},\n"));
    out.push_str(&format!("  \"xor_folds\": {XOR_FOLDS},\n"));
    out.push_str(&format!("  \"dim\": {DIM},\n"));
    out.push_str(
        "  \"note\": \"serial single-thread construction (threads=1) so the numbers isolate \
         per-object algorithmic cost; on a 1-core host parallel speedups are unobservable \
         anyway, and both strategies parallelise identically (pure per object). Outputs are \
         asserted bit-identical, so the speedup is free of any quality trade-off\",\n",
    );
    out.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let speedup = s.classic_ns_per_obj / s.one_pass_ns_per_obj.max(1e-9);
        out.push_str(&format!(
            "    {{\"size\": {}, \"classic_ns_per_object\": {:.0}, \
             \"one_pass_ns_per_object\": {:.0}, \"classic_objects_per_sec\": {:.0}, \
             \"one_pass_objects_per_sec\": {:.0}, \"speedup\": {:.3}, \
             \"sketches_identical\": {}}}{}\n",
            s.size,
            s.classic_ns_per_obj,
            s.one_pass_ns_per_obj,
            s.classic_objs_per_sec,
            s.one_pass_objs_per_sec,
            speedup,
            s.identical,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_sketch_ingest.json");
    std::fs::write(&path, out)?;
    println!("wrote {}", path.display());
    Ok(())
}

criterion_group!(benches, bench_classic_vs_one_pass);

fn main() {
    benches();
    let samples = collect_json_samples();
    if let Err(e) = write_json(&samples) {
        eprintln!("could not write BENCH_sketch_ingest.json: {e}");
    }
    for s in &samples {
        assert!(s.identical, "outputs must be bit-identical at n={}", s.size);
    }
}
