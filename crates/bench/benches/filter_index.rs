//! Scan-versus-index crossover benchmark for the sketch filter stage.
//!
//! Builds synthetic 128-bit sketch corpora at 1k / 10k / 100k objects
//! (uniform random bits plus a planted near-cluster inside the Hamming
//! threshold, so the probe always has real survivors to verify), then
//! answers the same thresholded filter query with the linear scan and
//! with the multi-index Hamming probe. With `base_threshold = 12` and
//! radius `B − 1 = 15` the probe is provably exhaustive, so both paths
//! must return identical candidate sets; the interesting numbers are
//! wall time and — hardware-independent — how many candidate sketches
//! each path actually popcounted (`segments_scanned`).
//!
//! Besides the criterion report, the run writes `BENCH_filter_index.json`
//! at the repository root.

// Dev-tool output and test fixtures are written directly; the Vfs seam
// covers production durability, not harness artifacts.
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;

use ferret_core::filter::{
    filter_candidates, filter_candidates_indexed, FilterParams, IndexedFilterOutcome,
};
use ferret_core::object::ObjectId;
use ferret_core::sketch::{BitVec, ShardedSketchIndex, SketchedObject};

const NBITS: usize = 128;
const SIZES: [usize; 3] = [1_000, 10_000, 100_000];
const CLUSTER: usize = 64;
const THRESHOLD: u32 = 12;

fn mix64(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn random_sketch(seed: u64, i: u64) -> BitVec {
    let mut bits = BitVec::zeros(NBITS);
    for b in 0..NBITS {
        if mix64(seed, i * NBITS as u64 + b as u64) & 1 == 1 {
            bits.set(b, true);
        }
    }
    bits
}

/// Flip `flips` distinct bits of `base`, chosen deterministically.
fn perturb(base: &BitVec, seed: u64, flips: usize) -> BitVec {
    let mut out = base.clone();
    let mut flipped = 0usize;
    let mut n = 0u64;
    while flipped < flips {
        let b = (mix64(seed, n) as usize) % NBITS;
        n += 1;
        if out.get(b) == base.get(b) {
            out.set(b, !out.get(b));
            flipped += 1;
        }
    }
    out
}

/// Corpus: object 0 is the query; objects 1..CLUSTER are planted within
/// the threshold of it; the rest are uniform random (expected distance
/// 64, far outside the threshold).
fn corpus(n: usize) -> Vec<(ObjectId, SketchedObject)> {
    let query = random_sketch(7, 0);
    let mut out = Vec::with_capacity(n);
    for i in 0..n as u64 {
        let sketch = if i == 0 {
            query.clone()
        } else if (i as usize) < CLUSTER.min(n) {
            perturb(&query, i, (i % THRESHOLD as u64) as usize)
        } else {
            random_sketch(13, i)
        };
        out.push((
            ObjectId(i),
            SketchedObject {
                weights: vec![1.0],
                sketches: vec![sketch],
            },
        ));
    }
    out
}

fn params() -> FilterParams {
    FilterParams {
        query_segments: 1,
        candidates_per_segment: 20,
        base_threshold: Some(THRESHOLD),
        weight_attenuation: 0.0,
    }
}

fn build_index(corpus: &[(ObjectId, SketchedObject)]) -> ShardedSketchIndex {
    let mut index = ShardedSketchIndex::new(NBITS).unwrap();
    for (id, so) in corpus {
        index.insert(*id, so).unwrap();
    }
    index
}

fn bench_scan_vs_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_scan_vs_index");
    group.sample_size(10);
    for n in SIZES {
        let data = corpus(n);
        let query = data[0].1.clone();
        let dataset: Vec<(ObjectId, &SketchedObject)> =
            data.iter().map(|(id, so)| (*id, so)).collect();
        let index = build_index(&data);
        let p = params();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::new("scan", n), |b| {
            b.iter(|| {
                black_box(
                    filter_candidates(
                        black_box(&query),
                        dataset.iter().map(|&(id, so)| (id, so)),
                        &p,
                    )
                    .unwrap(),
                )
            });
        });
        group.bench_function(BenchmarkId::new("indexed", n), |b| {
            b.iter(|| {
                black_box(
                    filter_candidates_indexed(black_box(&query), &index, &p, None, 1).unwrap(),
                )
            });
        });
    }
    group.finish();
}

struct Sample {
    size: usize,
    scan_ns: f64,
    indexed_ns: f64,
    scan_segments: usize,
    indexed_segments: usize,
    candidates_equal: bool,
}

fn time_mean_ns<R>(reps: usize, mut routine: impl FnMut() -> R) -> f64 {
    black_box(routine());
    let start = Instant::now();
    for _ in 0..reps {
        black_box(routine());
    }
    start.elapsed().as_nanos() as f64 / reps as f64
}

fn collect_json_samples() -> Vec<Sample> {
    let p = params();
    SIZES
        .iter()
        .map(|&n| {
            let data = corpus(n);
            let query = data[0].1.clone();
            let dataset: Vec<(ObjectId, &SketchedObject)> =
                data.iter().map(|(id, so)| (*id, so)).collect();
            let index = build_index(&data);
            let (scan_set, scan_stats) =
                filter_candidates(&query, dataset.iter().map(|&(id, so)| (id, so)), &p).unwrap();
            let (indexed_set, indexed_stats) =
                match filter_candidates_indexed(&query, &index, &p, None, 1).unwrap() {
                    IndexedFilterOutcome::Exact {
                        candidates, stats, ..
                    } => (candidates, stats),
                    IndexedFilterOutcome::Fallback { .. } => {
                        panic!(
                            "threshold {THRESHOLD} <= radius {} must probe exactly",
                            index.exact_radius()
                        )
                    }
                };
            assert_eq!(scan_set, indexed_set, "candidate sets diverged at n={n}");
            assert_eq!(scan_stats.candidates, indexed_stats.candidates);
            let scan_ns = time_mean_ns(5, || {
                filter_candidates(&query, dataset.iter().map(|&(id, so)| (id, so)), &p).unwrap()
            });
            let indexed_ns = time_mean_ns(5, || {
                filter_candidates_indexed(&query, &index, &p, None, 1).unwrap()
            });
            Sample {
                size: n,
                scan_ns,
                indexed_ns,
                scan_segments: scan_stats.segments_scanned,
                indexed_segments: indexed_stats.segments_scanned,
                candidates_equal: true,
            }
        })
        .collect()
}

fn write_json(samples: &[Sample]) -> std::io::Result<()> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"filter_index\",\n");
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str(&format!("  \"nbits\": {NBITS},\n"));
    out.push_str(&format!("  \"base_threshold\": {THRESHOLD},\n"));
    out.push_str(
        "  \"note\": \"single-query latency, serial (threads=1); on a 1-core host wall-clock \
         ratios understate the index because both paths share one core, so the \
         hardware-independent comparison is segments popcounted (scan_segments / \
         indexed_segments)\",\n",
    );
    out.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let wall_ratio = s.scan_ns / s.indexed_ns.max(1e-9);
        let cmp_ratio = s.scan_segments as f64 / (s.indexed_segments.max(1)) as f64;
        out.push_str(&format!(
            "    {{\"size\": {}, \"scan_ns\": {:.0}, \"indexed_ns\": {:.0}, \
             \"scan_segments_compared\": {}, \"indexed_segments_compared\": {}, \
             \"wall_speedup\": {:.3}, \"comparison_reduction\": {:.3}, \
             \"candidates_identical\": {}}}{}\n",
            s.size,
            s.scan_ns,
            s.indexed_ns,
            s.scan_segments,
            s.indexed_segments,
            wall_ratio,
            cmp_ratio,
            s.candidates_equal,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_filter_index.json");
    std::fs::write(&path, out)?;
    println!("wrote {}", path.display());
    Ok(())
}

criterion_group!(benches, bench_scan_vs_index);

fn main() {
    benches();
    let samples = collect_json_samples();
    if let Err(e) = write_json(&samples) {
        eprintln!("could not write BENCH_filter_index.json: {e}");
    }
    let largest = samples.last().expect("at least one size");
    let reduction = largest.scan_segments as f64 / largest.indexed_segments.max(1) as f64;
    assert!(
        reduction >= 5.0,
        "index must cut candidate-sketch comparisons >= 5x at n={}: scan {} vs indexed {}",
        largest.size,
        largest.scan_segments,
        largest.indexed_segments
    );
}
