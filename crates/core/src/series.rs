//! Canonical catalog of every telemetry series the toolkit emits.
//!
//! This is the single eager-registration block the `ferret-lint`
//! `eager-metrics` rule cross-checks: a `ferret_*` series name used at a
//! `counter`/`gauge`/`histogram` call site anywhere in non-test code must
//! have an entry here (and a row in DESIGN.md §5.1's series table), so the
//! `/metrics` surface is a reviewed, documented contract rather than an
//! accident of which code paths ran.
//!
//! [`MetricsRegistry::register_catalog`](crate::telemetry::MetricsRegistry::register_catalog)
//! walks this table at service start-up and creates every family up front,
//! so `# HELP` / `# TYPE` headers for the full surface are visible from the
//! first scrape even before any samples exist.

/// Prometheus metric kind of a cataloged series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotonically increasing counter (name conventionally ends `_total`).
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Bucketed distribution. `nanos` selects second-rendered latency
    /// buckets; otherwise raw size buckets.
    Histogram {
        /// True when observations are nanoseconds rendered as seconds.
        nanos: bool,
    },
}

/// One documented telemetry series.
#[derive(Debug, Clone, Copy)]
pub struct SeriesDef {
    /// Fully qualified series name (`ferret_*`).
    pub name: &'static str,
    /// Metric kind; must match every call site (the registry panics on a
    /// kind mismatch, so drift fails fast in tests).
    pub kind: SeriesKind,
    /// Prometheus help text, canonical for all call sites.
    pub help: &'static str,
}

const C: SeriesKind = SeriesKind::Counter;
const G: SeriesKind = SeriesKind::Gauge;
const HL: SeriesKind = SeriesKind::Histogram { nanos: true };
const HS: SeriesKind = SeriesKind::Histogram { nanos: false };

macro_rules! series {
    ($($name:literal, $kind:expr, $help:literal;)*) => {
        &[$(SeriesDef { name: $name, kind: $kind, help: $help }),*]
    };
}

/// Every series the toolkit emits, sorted by name (enforced by a test).
pub const SERIES: &[SeriesDef] = series![
    "ferret_cache_evictions_total", C, "Result-cache entries evicted (LRU or epoch invalidation).";
    "ferret_cache_hits_total", C, "Result-cache lookups served from cache.";
    "ferret_cache_memory_bytes", G, "Approximate resident size of the result cache.";
    "ferret_cache_misses_total", C, "Result-cache lookups that fell through to the engine.";
    "ferret_commands_total", C, "Protocol commands executed, by command.";
    "ferret_compaction_seconds", HL, "Latency of segment compaction merges.";
    "ferret_compactions_total", C, "Segment compaction merges completed.";
    "ferret_filter_buckets_pruned_total", C, "Hamming-index buckets skipped by the triangle-inequality bound.";
    "ferret_filter_restrict_pruned_total", C, "Objects excluded from the filter scan by an attribute restriction.";
    "ferret_fusion_queries_total", C, "Hybrid queries executed, by fusion mode.";
    "ferret_http_request_seconds", HL, "HTTP request latency, by endpoint.";
    "ferret_http_requests_total", C, "HTTP requests served, by endpoint and status.";
    "ferret_index_memory_bytes", G, "Resident size of the in-memory sketch filter index.";
    "ferret_inflight_queries", G, "Queries currently admitted and executing.";
    "ferret_inflight_queries_peak", G, "High-water mark of concurrently executing queries.";
    "ferret_insert_batch_size", HS, "Objects per insert batch.";
    "ferret_inserts_total", C, "Objects inserted.";
    "ferret_lock_wait_seconds", HL, "Time spent waiting for the service lock, by operation class.";
    "ferret_memtable_objects", G, "Objects in the mutable memtable awaiting seal.";
    "ferret_pushdown_queries_total", C, "Filter-stage queries that carried an attribute candidate set.";
    "ferret_pushdown_skipped_total", C, "Objects excluded before heap admission by predicate pushdown.";
    "ferret_queries_total", C, "Similarity queries executed, by mode.";
    "ferret_query_candidates", HS, "Candidate-set size entering the ranking stage.";
    "ferret_query_distance_evals_total", C, "Object-distance evaluations in the ranking stage.";
    "ferret_query_objects_scanned_total", C, "Objects scanned in the filtering stage.";
    "ferret_query_seconds", HL, "End-to-end query latency, by mode.";
    "ferret_query_segments_scanned_total", C, "Segment sketches compared in the filtering stage.";
    "ferret_query_stage_seconds", HL, "Per-stage query latency, by stage.";
    "ferret_rejected_total", C, "Queries rejected by admission control.";
    "ferret_segments", G, "Immutable sealed segments in the engine.";
    "ferret_sketch_build_seconds", HL, "Sketch-construction latency per ingest batch.";
    "ferret_sketch_objects_per_sec", G, "Ingest sketch-construction throughput of the most recent batch.";
    "ferret_sketch_objects_total", C, "Objects sketched on the ingest path, by construction strategy.";
    "ferret_store_errors_total", C, "Store-layer failures surfaced by the service, by operation.";
];

/// Looks up a series definition by name.
pub fn lookup(name: &str) -> Option<&'static SeriesDef> {
    SERIES
        .binary_search_by(|def| def.name.cmp(name))
        .ok()
        .map(|i| &SERIES[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_unique_and_well_named() {
        for pair in SERIES.windows(2) {
            assert!(
                pair[0].name < pair[1].name,
                "catalog must stay sorted and duplicate-free: {} vs {}",
                pair[0].name,
                pair[1].name
            );
        }
        for def in SERIES {
            assert!(def.name.starts_with("ferret_"), "bad prefix: {}", def.name);
            assert!(!def.help.is_empty(), "missing help: {}", def.name);
            if def.kind == SeriesKind::Counter {
                assert!(
                    def.name.ends_with("_total"),
                    "counters use the _total suffix: {}",
                    def.name
                );
            }
        }
    }

    #[test]
    fn lookup_finds_every_entry() {
        for def in SERIES {
            assert_eq!(lookup(def.name).map(|d| d.name), Some(def.name));
        }
        assert!(lookup("ferret_nonexistent").is_none());
    }
}
