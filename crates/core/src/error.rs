//! Error types for the Ferret core engine.

use std::fmt;

/// Errors produced by the core similarity search engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A feature vector had a different dimensionality than expected.
    DimensionMismatch {
        /// The dimensionality the operation expected.
        expected: usize,
        /// The dimensionality that was actually supplied.
        actual: usize,
    },
    /// An object was constructed with no segments.
    EmptyObject,
    /// Segment weights were invalid (negative, NaN, or summing to zero).
    InvalidWeights(String),
    /// Sketch parameters were invalid (zero bits, inverted min/max, ...).
    InvalidSketchParams(String),
    /// Two sketches of different lengths were compared.
    SketchLengthMismatch {
        /// Length in bits of the left-hand sketch.
        left: usize,
        /// Length in bits of the right-hand sketch.
        right: usize,
    },
    /// A query referenced an object id that is not in the engine.
    UnknownObject(u64),
    /// An object id was inserted twice.
    DuplicateObject(u64),
    /// A query was issued with invalid options.
    InvalidQuery(String),
    /// A plug-in (segmentation / feature extraction) failed.
    Extraction(String),
    /// An I/O operation failed (out-of-core sketch database).
    Io(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            CoreError::EmptyObject => write!(f, "object has no segments"),
            CoreError::InvalidWeights(msg) => write!(f, "invalid segment weights: {msg}"),
            CoreError::InvalidSketchParams(msg) => write!(f, "invalid sketch parameters: {msg}"),
            CoreError::SketchLengthMismatch { left, right } => {
                write!(f, "sketch length mismatch: {left} vs {right} bits")
            }
            CoreError::UnknownObject(id) => write!(f, "unknown object id {id}"),
            CoreError::DuplicateObject(id) => write!(f, "duplicate object id {id}"),
            CoreError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            CoreError::Extraction(msg) => write!(f, "extraction failed: {msg}"),
            CoreError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience result alias used throughout the core crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::DimensionMismatch {
            expected: 14,
            actual: 3,
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 14, got 3");
        assert!(CoreError::UnknownObject(7).to_string().contains('7'));
        assert!(CoreError::EmptyObject.to_string().contains("no segments"));
        assert!(CoreError::SketchLengthMismatch {
            left: 96,
            right: 64
        }
        .to_string()
        .contains("96"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&CoreError::EmptyObject);
    }
}
