//! The plug-in interface for data-type specific modules.
//!
//! System builders parameterize the toolkit with a segmentation and feature
//! extraction module and (optionally) their own distance functions (paper
//! §4.2). [`Extractor`] is the Rust counterpart of the C interface
//! `ObjectT seg_extract_func(const char *filename)`: it digests one raw
//! input into a [`DataObject`] — a weighted set of feature vectors.

use crate::error::Result;
use crate::object::DataObject;

/// A segmentation and feature extraction module for one data type.
///
/// Implementations segment the raw input into `k` segments, extract one
/// `D`-dimensional feature vector per segment and assign each segment an
/// importance weight (normalized by [`DataObject::new`]).
pub trait Extractor: Send + Sync {
    /// The raw input this extractor digests (file contents, a PCM buffer, a
    /// voxel grid, a microarray row, ...).
    type Input: ?Sized;

    /// Human-readable name of the data type ("image", "audio", ...).
    fn name(&self) -> &'static str;

    /// The dimensionality `D` of the feature vectors this extractor emits.
    fn dim(&self) -> usize;

    /// Segments the input and extracts one weighted feature vector per
    /// segment.
    fn extract(&self, input: &Self::Input) -> Result<DataObject>;
}

/// An extractor that reads its input from a file on disk.
///
/// This is the shape the paper's data acquisition component expects: each
/// newly discovered file is handed to the plug-in by path.
pub trait FileExtractor: Send + Sync {
    /// Human-readable name of the data type.
    fn name(&self) -> &'static str;

    /// Segments and extracts the object stored in `path`.
    fn extract_file(&self, path: &std::path::Path) -> Result<DataObject>;
}

/// Adapts any byte-level [`Extractor`] into a [`FileExtractor`] by reading
/// the file into memory first.
pub struct FileAdapter<E> {
    inner: E,
}

impl<E> FileAdapter<E> {
    /// Wraps an extractor over `[u8]` input.
    pub fn new(inner: E) -> Self {
        Self { inner }
    }

    /// The wrapped extractor.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E> FileExtractor for FileAdapter<E>
where
    E: Extractor<Input = [u8]>,
{
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn extract_file(&self, path: &std::path::Path) -> Result<DataObject> {
        // ferret-lint: allow(vfs-bypass) -- read-only load of a user input file for feature extraction; durability is not involved
        let bytes = std::fs::read(path).map_err(|e| {
            crate::error::CoreError::Extraction(format!("read {}: {e}", path.display()))
        })?;
        self.inner.extract(&bytes)
    }
}

#[cfg(test)]
// Tests write fixture files directly; the Vfs seam is for production durability.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use crate::vector::FeatureVector;

    /// A toy extractor: each byte becomes a 1-d segment with weight 1.
    struct ByteExtractor;

    impl Extractor for ByteExtractor {
        type Input = [u8];

        fn name(&self) -> &'static str {
            "bytes"
        }

        fn dim(&self) -> usize {
            1
        }

        fn extract(&self, input: &[u8]) -> Result<DataObject> {
            DataObject::new(
                input
                    .iter()
                    .map(|&b| (FeatureVector::from_components(vec![f32::from(b)]), 1.0))
                    .collect(),
            )
        }
    }

    #[test]
    fn extractor_produces_objects() {
        let e = ByteExtractor;
        let obj = e.extract(&[1, 2, 3]).unwrap();
        assert_eq!(obj.num_segments(), 3);
        assert_eq!(e.dim(), 1);
        assert_eq!(e.name(), "bytes");
    }

    #[test]
    fn extractor_propagates_errors() {
        let e = ByteExtractor;
        assert!(e.extract(&[]).is_err());
    }

    #[test]
    fn file_adapter_reads_files() {
        let dir = std::env::temp_dir().join("ferret-core-plugin-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("obj.bin");
        std::fs::write(&path, [9u8, 8, 7]).unwrap();
        let fe = FileAdapter::new(ByteExtractor);
        let obj = fe.extract_file(&path).unwrap();
        assert_eq!(obj.num_segments(), 3);
        assert_eq!(fe.name(), "bytes");
        assert_eq!(fe.inner().dim(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_adapter_reports_missing_file() {
        let fe = FileAdapter::new(ByteExtractor);
        let err = fe
            .extract_file(std::path::Path::new("/nonexistent/ferret/file"))
            .unwrap_err();
        assert!(err.to_string().contains("extraction failed"));
    }
}
