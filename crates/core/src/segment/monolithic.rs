//! The original storage layout: one insertion-ordered object map and one
//! incrementally maintained [`ShardedSketchIndex`].

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{CoreError, Result};
use crate::filter::IndexedPart;
use crate::object::{DataObject, ObjectId};
use crate::sketch::{ShardedSketchIndex, SketchedObject};
use crate::telemetry::MetricsRegistry;
use ferret_store::SegmentStore;

use super::{IndexLayout, IndexStorage, ProbeSet, StorageSnapshot, StorageStats};

/// One mutable object map plus one mutable sketch index. Removals take
/// effect immediately; `merge` rebuilds the index in place (the
/// stop-the-world behavior [`super::SegmentedStorage`] exists to avoid).
pub struct MonolithicStorage {
    nbits: usize,
    order: Vec<ObjectId>,
    objects: HashMap<ObjectId, DataObject>,
    sketches: HashMap<ObjectId, SketchedObject>,
    index: Option<ShardedSketchIndex>,
    index_enabled: bool,
    epoch: u64,
    telemetry: Option<Arc<MetricsRegistry>>,
}

impl std::fmt::Debug for MonolithicStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonolithicStorage")
            .field("live", &self.order.len())
            .field("index_enabled", &self.index_enabled)
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

impl MonolithicStorage {
    /// Creates an empty monolithic storage for sketches of `nbits` bits.
    /// `index_enabled` mirrors the engine's filter strategy: `false` for
    /// scan-only engines, which never pay for index maintenance.
    pub fn new(nbits: usize, index_enabled: bool) -> Result<Self> {
        let index = if index_enabled {
            Some(ShardedSketchIndex::new(nbits)?)
        } else {
            None
        };
        Ok(Self {
            nbits,
            order: Vec::new(),
            objects: HashMap::new(),
            sketches: HashMap::new(),
            index,
            index_enabled,
            epoch: 0,
            telemetry: None,
        })
    }

    fn rebuilt_index(&self) -> Result<ShardedSketchIndex> {
        let mut index = ShardedSketchIndex::new(self.nbits)?;
        for id in &self.order {
            if let Some(so) = self.sketches.get(id) {
                index.insert(*id, so)?;
            }
        }
        Ok(index)
    }

    fn publish_gauges(&self) {
        if let Some(registry) = &self.telemetry {
            registry
                .gauge(
                    "ferret_index_memory_bytes",
                    "Approximate resident size of the sketch filter index.",
                    &[],
                )
                .set(self.index_bytes() as i64);
        }
    }
}

impl IndexStorage for MonolithicStorage {
    fn layout(&self) -> IndexLayout {
        IndexLayout::Monolithic
    }

    fn len(&self) -> usize {
        self.order.len()
    }

    fn contains(&self, id: ObjectId) -> bool {
        self.sketches.contains_key(&id)
    }

    fn object(&self, id: ObjectId) -> Option<&DataObject> {
        self.objects.get(&id)
    }

    fn sketch(&self, id: ObjectId) -> Option<&SketchedObject> {
        self.sketches.get(&id)
    }

    fn live_ids(&self) -> Vec<ObjectId> {
        self.order.clone()
    }

    fn live_refs(&self) -> Vec<(ObjectId, &SketchedObject, Option<&DataObject>)> {
        self.order
            .iter()
            .filter_map(|id| {
                self.sketches
                    .get(id)
                    .map(|so| (*id, so, self.objects.get(id)))
            })
            .collect()
    }

    fn insert(
        &mut self,
        id: ObjectId,
        sketched: SketchedObject,
        original: Option<DataObject>,
    ) -> Result<()> {
        if self.sketches.contains_key(&id) {
            return Err(CoreError::DuplicateObject(id.0));
        }
        if let Some(index) = self.index.as_mut() {
            index.insert(id, &sketched)?;
        }
        self.sketches.insert(id, sketched);
        if let Some(object) = original {
            self.objects.insert(id, object);
        }
        self.order.push(id);
        self.epoch += 1;
        self.publish_gauges();
        Ok(())
    }

    fn tombstone(&mut self, id: ObjectId) -> Result<bool> {
        let present = self.sketches.remove(&id).is_some();
        self.objects.remove(&id);
        if present {
            self.order.retain(|&x| x != id);
            if let Some(index) = self.index.as_mut() {
                index.remove(id);
            }
            self.epoch += 1;
            self.publish_gauges();
        }
        Ok(present)
    }

    fn seal(&mut self) -> Result<()> {
        Ok(())
    }

    fn merge(&mut self) -> Result<()> {
        if self.index_enabled {
            self.index = Some(self.rebuilt_index()?);
            self.epoch += 1;
            self.publish_gauges();
        }
        Ok(())
    }

    fn maintain(&mut self) -> Result<()> {
        Ok(())
    }

    fn set_index_enabled(&mut self, enabled: bool) -> Result<()> {
        if enabled == self.index_enabled {
            return Ok(());
        }
        self.index_enabled = enabled;
        self.index = if enabled {
            Some(self.rebuilt_index()?)
        } else {
            None
        };
        self.epoch += 1;
        self.publish_gauges();
        Ok(())
    }

    fn index_enabled(&self) -> bool {
        self.index_enabled
    }

    fn probe_set(&self) -> Option<ProbeSet<'_>> {
        self.index.as_ref().map(|index| ProbeSet {
            parts: vec![IndexedPart { index, dead: None }],
            extras: Vec::new(),
        })
    }

    fn monolithic_index(&self) -> Option<&ShardedSketchIndex> {
        self.index.as_ref()
    }

    fn index_bytes(&self) -> usize {
        self.index
            .as_ref()
            .map_or(0, ShardedSketchIndex::memory_bytes)
    }

    fn stats(&self) -> StorageStats {
        StorageStats {
            live_objects: self.order.len(),
            memtable_objects: 0,
            sealed_segments: 0,
            indexed_segments: 0,
            tombstones: 0,
        }
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn snapshot(&self) -> StorageSnapshot<'_> {
        StorageSnapshot {
            epoch: self.epoch,
            probe: self.probe_set(),
            live: self.live_refs(),
        }
    }

    fn set_telemetry(&mut self, registry: Option<Arc<MetricsRegistry>>) {
        self.telemetry = registry;
        self.publish_gauges();
    }

    fn attach_persistence(&mut self, _store: SegmentStore) -> Result<()> {
        Ok(())
    }

    fn persistence_handle(&self) -> Option<&SegmentStore> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::{SketchBuilder, SketchParams};
    use crate::vector::FeatureVector;

    fn sketched(builder: &SketchBuilder, v: &[f32]) -> (DataObject, SketchedObject) {
        let obj = DataObject::single(FeatureVector::new(v.to_vec()).unwrap());
        let so = builder.sketch_object(&obj).unwrap();
        (obj, so)
    }

    fn test_builder() -> SketchBuilder {
        let params = SketchParams::new(64, vec![0.0; 2], vec![1.0; 2]).unwrap();
        SketchBuilder::new(params, 7)
    }

    #[test]
    fn insert_tombstone_roundtrip() {
        let builder = test_builder();
        let mut storage = MonolithicStorage::new(builder.nbits(), true).unwrap();
        let (obj, so) = sketched(&builder, &[0.1, 0.2]);
        storage.insert(ObjectId(1), so, Some(obj)).unwrap();
        assert!(storage.contains(ObjectId(1)));
        assert_eq!(storage.len(), 1);
        assert_eq!(storage.live_ids(), vec![ObjectId(1)]);
        let e0 = storage.epoch();
        assert!(storage.tombstone(ObjectId(1)).unwrap());
        assert!(!storage.tombstone(ObjectId(1)).unwrap());
        assert!(storage.epoch() > e0);
        assert!(storage.is_empty());
        assert_eq!(storage.stats(), StorageStats::default());
    }

    #[test]
    fn index_toggle_rebuilds() {
        let builder = test_builder();
        let mut storage = MonolithicStorage::new(builder.nbits(), false).unwrap();
        let (_, so) = sketched(&builder, &[0.3, 0.4]);
        storage.insert(ObjectId(9), so, None).unwrap();
        assert!(storage.probe_set().is_none());
        assert_eq!(storage.index_bytes(), 0);
        storage.set_index_enabled(true).unwrap();
        let probe = storage.probe_set().unwrap();
        assert_eq!(probe.parts.len(), 1);
        assert!(probe.extras.is_empty());
        assert!(storage.monolithic_index().unwrap().contains(ObjectId(9)));
    }
}
