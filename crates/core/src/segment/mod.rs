//! Index storage layouts: the monolithic engine state and the LSM-style
//! segmented layout, behind one [`IndexStorage`] seam.
//!
//! The engine historically owned one mutable object map plus one mutable
//! [`ShardedSketchIndex`]; every structural change (index rebuild, retune)
//! was stop-the-world. This module extracts that state behind a trait with
//! two implementations:
//!
//! * [`MonolithicStorage`] — the original behavior: one insertion-ordered
//!   map and one incrementally maintained index.
//! * [`SegmentedStorage`] — an LSM-style layout: a small mutable
//!   **memtable** absorbs inserts; when it reaches the configured size it
//!   is **sealed** into an immutable segment; a background **compaction**
//!   worker merges adjacent small segments and builds each merged
//!   segment's index off the write path; removals land in per-segment
//!   **dead sets** until compaction reclaims them.
//!
//! The exactness contract is layout-independent: query results are
//! bit-identical across layouts for the same live object set (pinned by
//! `tests/segmented_index.rs`), because probes and scans share the same
//! total-order heap admission (see [`crate::filter`]).

use std::sync::Arc;

use crate::error::{CoreError, Result};
use crate::filter::IndexedPart;
use crate::object::{DataObject, ObjectId};
use crate::sketch::SketchedObject;
use crate::telemetry::MetricsRegistry;
use ferret_store::SegmentStore;

mod monolithic;
mod segmented;

pub use monolithic::MonolithicStorage;
pub use segmented::SegmentedStorage;

/// Which storage layout backs the engine's object maps and sketch index.
///
/// Both layouts answer every query bit-identically; they differ in how
/// structural maintenance interacts with ingest. `Monolithic` mutates one
/// index in place and rebuilds it stop-the-world; `Segmented` seals
/// immutable segments and compacts them in the background, so reads never
/// wait on an index build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexLayout {
    /// One mutable object map and one mutable sketch index (the original
    /// engine behavior).
    #[default]
    Monolithic,
    /// LSM-style memtable + immutable sealed segments with background
    /// compaction.
    Segmented,
}

impl std::fmt::Display for IndexLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IndexLayout::Monolithic => "monolithic",
            IndexLayout::Segmented => "segmented",
        })
    }
}

impl std::str::FromStr for IndexLayout {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "monolithic" => Ok(IndexLayout::Monolithic),
            "segmented" => Ok(IndexLayout::Segmented),
            other => Err(CoreError::InvalidQuery(format!(
                "unknown index layout {other:?} (expected monolithic or segmented)"
            ))),
        }
    }
}

/// Point-in-time shape of an [`IndexStorage`], for `stat` reporting and
/// the segment gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Objects visible to queries.
    pub live_objects: usize,
    /// Objects still in the mutable memtable (0 for monolithic).
    pub memtable_objects: usize,
    /// Immutable sealed segments (0 for monolithic).
    pub sealed_segments: usize,
    /// Sealed segments whose per-segment index has been built.
    pub indexed_segments: usize,
    /// Removed objects whose storage has not been reclaimed yet.
    pub tombstones: usize,
}

/// Everything the indexed filter path needs from a storage layout: the
/// immutable per-segment indexes (with their dead sets) plus the records
/// that are not indexed yet and must be scanned outright.
///
/// Fed to [`crate::filter::filter_candidates_indexed_multi`].
pub struct ProbeSet<'a> {
    /// Indexed parts, in segment order.
    pub parts: Vec<IndexedPart<'a>>,
    /// Live unindexed records (memtable + segments awaiting compaction),
    /// in insertion order.
    pub extras: Vec<(ObjectId, &'a SketchedObject)>,
}

impl ProbeSet<'_> {
    /// The guaranteed-exact probe radius of the *weakest* indexed part,
    /// or `None` when there are no indexed parts (the probe is then a
    /// full scan and unconditionally exact).
    pub fn exact_radius(&self) -> Option<u32> {
        self.parts.iter().map(|p| p.index.exact_radius()).min()
    }
}

/// A pinned read view of an [`IndexStorage`]: the epoch it was taken at,
/// the probe surface, and every live record.
///
/// Borrowing `&self` keeps the storage immutable for the snapshot's
/// lifetime, so the epoch, probe set, and live list are mutually
/// consistent — a reader iterating the snapshot never sees a half-applied
/// seal or compaction.
pub struct StorageSnapshot<'a> {
    /// The storage's epoch when the snapshot was taken. Advances on every
    /// mutation (insert, tombstone, seal, compaction apply), so equal
    /// epochs imply identical visible state.
    pub epoch: u64,
    /// The indexed probe surface, `None` when indexing is disabled.
    pub probe: Option<ProbeSet<'a>>,
    /// Every live record in insertion order: sealed segments first (in
    /// seal order), then the memtable.
    pub live: Vec<(ObjectId, &'a SketchedObject, Option<&'a DataObject>)>,
}

/// The storage seam between the engine and its object/index state.
///
/// One implementation per [`IndexLayout`]. All mutation happens through
/// `&mut self` (the service serializes writers behind its lock); readers
/// borrow plain `&self` views, so the borrow checker enforces that a
/// snapshot can never observe a torn mutation.
pub trait IndexStorage: Send + Sync {
    /// The layout this storage implements.
    fn layout(&self) -> IndexLayout;

    /// Live (visible) objects.
    fn len(&self) -> usize;

    /// True if no live objects remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `id` is live.
    fn contains(&self, id: ObjectId) -> bool;

    /// The original object, if originals are stored and `id` is live.
    fn object(&self, id: ObjectId) -> Option<&DataObject>;

    /// The sketched form of a live object.
    fn sketch(&self, id: ObjectId) -> Option<&SketchedObject>;

    /// Live object ids in insertion order (sealed segments in seal order,
    /// then the memtable).
    fn live_ids(&self) -> Vec<ObjectId>;

    /// Every live record in insertion order.
    fn live_refs(&self) -> Vec<(ObjectId, &SketchedObject, Option<&DataObject>)>;

    /// Inserts a new object. `original` is `None` for sketch-only engines.
    fn insert(
        &mut self,
        id: ObjectId,
        sketched: SketchedObject,
        original: Option<DataObject>,
    ) -> Result<()>;

    /// Removes `id` from the visible set; returns `true` if it was live.
    ///
    /// Segmented storage cannot mutate sealed segments, so the removal is
    /// recorded in the owning segment's dead set and reclaimed by a later
    /// compaction — hence "tombstone", not "remove".
    fn tombstone(&mut self, id: ObjectId) -> Result<bool>;

    /// Freezes the current memtable into an immutable sealed segment
    /// (no-op when the memtable is empty, and for monolithic storage).
    fn seal(&mut self) -> Result<()>;

    /// Runs compaction to quiescence *inline* and deterministically:
    /// applies any finished background merges, then merges/builds until no
    /// maintenance is due. For monolithic storage this rebuilds the index
    /// from the live set (reclaiming tombstones) — the stop-the-world
    /// behavior the segmented layout exists to avoid.
    fn merge(&mut self) -> Result<()>;

    /// Applies finished background work and schedules any due compaction,
    /// without blocking on it. Writers call this opportunistically; a
    /// periodic caller (the serve scan loop) guarantees progress even on
    /// an idle write path.
    fn maintain(&mut self) -> Result<()>;

    /// Enables or disables sketch indexing (the [`FilterStrategy::Scan`]
    /// strategy disables it).
    ///
    /// [`FilterStrategy::Scan`]: crate::filter::FilterStrategy::Scan
    fn set_index_enabled(&mut self, enabled: bool) -> Result<()>;

    /// True if sketch indexing is enabled.
    fn index_enabled(&self) -> bool;

    /// The indexed probe surface, `None` when indexing is disabled.
    fn probe_set(&self) -> Option<ProbeSet<'_>>;

    /// The monolithic sketch index, if this layout maintains exactly one
    /// (diagnostics; segmented storage returns `None`).
    fn monolithic_index(&self) -> Option<&crate::sketch::ShardedSketchIndex> {
        None
    }

    /// Approximate resident bytes of all sketch indexes.
    fn index_bytes(&self) -> usize;

    /// Point-in-time layout statistics.
    fn stats(&self) -> StorageStats;

    /// Monotone version counter; advances on every visible mutation.
    fn epoch(&self) -> u64;

    /// Takes a pinned, mutually consistent read view.
    fn snapshot(&self) -> StorageSnapshot<'_>;

    /// Wires (or unwires) the metrics registry the storage publishes its
    /// gauges and compaction series into.
    fn set_telemetry(&mut self, registry: Option<Arc<MetricsRegistry>>);

    /// Attaches durable segment persistence. The storage checkpoints its
    /// current sealed segments immediately and persists every subsequent
    /// seal and compaction through the store's manifest-swap protocol.
    /// Monolithic storage has no segments to persist and ignores this.
    fn attach_persistence(&mut self, store: SegmentStore) -> Result<()>;

    /// The attached segment store, if any.
    fn persistence_handle(&self) -> Option<&SegmentStore>;
}

/// Converts a store-layer failure into the engine's error type.
pub(crate) fn store_err(e: ferret_store::StoreError) -> CoreError {
    CoreError::Io(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_layout_parse_roundtrip() {
        for layout in [IndexLayout::Monolithic, IndexLayout::Segmented] {
            assert_eq!(layout.to_string().parse::<IndexLayout>().unwrap(), layout);
        }
        for bad in ["", "lsm", "Monolithic", "segmented "] {
            assert!(bad.parse::<IndexLayout>().is_err(), "{bad:?}");
        }
        assert_eq!(IndexLayout::default(), IndexLayout::Monolithic);
    }
}
