//! LSM-style segmented storage: a mutable memtable, immutable sealed
//! segments (each carrying its own build-once sketch index), per-segment
//! dead sets for removals, and a background compaction worker.
//!
//! Concurrency model: all mutation happens through `&mut self` (the
//! service serializes writers), so the only cross-thread state is the
//! compaction mailbox. Writers enqueue a merge job carrying `Arc` clones
//! of the input segments plus a snapshot of their dead sets; the worker
//! merges off-thread (including the expensive index build) and posts a
//! [`MergeOutcome`] to an outbox. The next `&mut` operation applies it:
//! if the input run is still present and the generation matches, the run
//! is spliced out for the merged segment, carrying forward any removals
//! that landed after the snapshot (`dead_now − dead_claimed`). Stale
//! outcomes are discarded — the inputs are immutable, so a discarded
//! merge wastes work but can never corrupt state.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::error::CoreError;
use crate::error::Result;
use crate::filter::IndexedPart;
use crate::object::{DataObject, ObjectId};
use crate::sketch::{ShardedSketchIndex, SketchedObject};
use crate::telemetry::{MetricsRegistry, Unit, LATENCY_BUCKETS_NS};
use ferret_store::{SegmentRecord, SegmentStore};

use super::{store_err, IndexLayout, IndexStorage, ProbeSet, StorageSnapshot, StorageStats};

const COMPACTIONS_HELP: &str = "Segment compaction merges completed.";
const COMPACTION_SECONDS_HELP: &str = "Latency of segment compaction merges.";
const SEGMENTS_HELP: &str = "Immutable sealed segments in the engine.";
const MEMTABLE_HELP: &str = "Objects in the mutable memtable awaiting seal.";
const INDEX_BYTES_HELP: &str = "Approximate resident size of the sketch filter index.";

/// An immutable sealed segment: a slice of the corpus in insertion order,
/// plus (usually) a sketch index built once at merge time.
struct Segment {
    /// Storage-local segment id (also used to match compaction outcomes
    /// back to their input run).
    id: u64,
    /// Record ids in insertion order.
    ids: Vec<ObjectId>,
    sketches: HashMap<ObjectId, SketchedObject>,
    objects: HashMap<ObjectId, DataObject>,
    /// Built once when the compactor merges this segment; `None` for a
    /// freshly sealed memtable (sealing must stay cheap).
    index: Option<ShardedSketchIndex>,
}

impl Segment {
    fn live_count(&self, dead: &HashSet<ObjectId>) -> usize {
        self.ids.len() - dead.len()
    }
}

/// A sealed segment plus its mutable side-state: removals recorded since
/// sealing, and the durable file id once checkpointed.
struct SegmentSlot {
    segment: Arc<Segment>,
    dead: HashSet<ObjectId>,
    persist_id: Option<u64>,
}

/// Work order for the compaction worker.
struct MergeJob {
    generation: u64,
    out_id: u64,
    nbits: usize,
    build_index: bool,
    inputs: Vec<Arc<Segment>>,
    dead_claimed: Vec<HashSet<ObjectId>>,
    telemetry: Option<Arc<MetricsRegistry>>,
}

enum Job {
    Merge(Box<MergeJob>),
    Shutdown,
}

/// Result posted back by the worker; applied by the next writer.
struct MergeOutcome {
    generation: u64,
    input_ids: Vec<u64>,
    dead_claimed: Vec<HashSet<ObjectId>>,
    merged: Result<Segment>,
}

#[derive(Default)]
struct CompactorShared {
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    outbox: Mutex<Vec<MergeOutcome>>,
}

struct CompactorHandle {
    shared: Arc<CompactorShared>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl Drop for CompactorHandle {
    fn drop(&mut self) {
        lock_inner(&self.shared.queue).push_back(Job::Shutdown);
        self.shared.cv.notify_one();
        if let Some(join) = self.join.take() {
            join.join().ok();
        }
    }
}

/// Locks a mutex, recovering the data from a poisoned lock — the worker
/// holds these locks only around queue push/pop, so the protected state
/// cannot be torn by a panic.
fn lock_inner<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn worker_loop(shared: Arc<CompactorShared>) {
    loop {
        let job = {
            let mut queue = lock_inner(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared
                    .cv
                    .wait(queue)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        let job = match job {
            Job::Shutdown => return,
            Job::Merge(job) => job,
        };
        let start = std::time::Instant::now();
        let input_ids = job.inputs.iter().map(|s| s.id).collect();
        let merged = merge_segments(
            job.out_id,
            job.nbits,
            job.build_index,
            &job.inputs,
            &job.dead_claimed,
        );
        if let Some(registry) = &job.telemetry {
            registry.inc_counter("ferret_compactions_total", COMPACTIONS_HELP, &[], 1);
            registry.observe_latency(
                "ferret_compaction_seconds",
                COMPACTION_SECONDS_HELP,
                &[],
                start.elapsed(),
            );
        }
        lock_inner(&shared.outbox).push(MergeOutcome {
            generation: job.generation,
            input_ids,
            dead_claimed: job.dead_claimed,
            merged,
        });
    }
}

/// Merges a contiguous run of segments into one, dropping records that
/// were dead at snapshot time. Record order is preserved (inputs are in
/// segment order, records in insertion order), so the merged segment
/// occupies exactly its inputs' place in the global insertion order.
fn merge_segments(
    out_id: u64,
    nbits: usize,
    build_index: bool,
    inputs: &[Arc<Segment>],
    dead_claimed: &[HashSet<ObjectId>],
) -> Result<Segment> {
    let mut ids = Vec::new();
    let mut sketches = HashMap::new();
    let mut objects = HashMap::new();
    for (i, seg) in inputs.iter().enumerate() {
        let dead = dead_claimed.get(i);
        for id in &seg.ids {
            if dead.is_some_and(|d| d.contains(id)) {
                continue;
            }
            let Some(so) = seg.sketches.get(id) else {
                continue;
            };
            ids.push(*id);
            sketches.insert(*id, so.clone());
            if let Some(obj) = seg.objects.get(id) {
                objects.insert(*id, obj.clone());
            }
        }
    }
    let index = if build_index {
        let mut index = ShardedSketchIndex::new(nbits)?;
        for id in &ids {
            if let Some(so) = sketches.get(id) {
                index.insert(*id, so)?;
            }
        }
        Some(index)
    } else {
        None
    };
    Ok(Segment {
        id: out_id,
        ids,
        sketches,
        objects,
        index,
    })
}

/// LSM-style [`IndexStorage`]: inserts land in a small mutable memtable,
/// sealed segments are immutable, and a background worker merges small or
/// removal-heavy runs (building each merged segment's index off the write
/// path). Reads never wait on an index build.
pub struct SegmentedStorage {
    nbits: usize,
    memtable_size: usize,
    compaction: bool,
    index_enabled: bool,
    mem_order: Vec<ObjectId>,
    mem_sketches: HashMap<ObjectId, SketchedObject>,
    mem_objects: HashMap<ObjectId, DataObject>,
    slots: Vec<SegmentSlot>,
    next_segment_id: u64,
    epoch: u64,
    /// Bumped whenever the slot list is invalidated wholesale (inline
    /// merge, index toggle); outcomes from older generations are
    /// discarded on apply.
    generation: u64,
    /// At most one background merge outstanding.
    inflight: bool,
    compactor: Option<CompactorHandle>,
    persist: Option<SegmentStore>,
    telemetry: Option<Arc<MetricsRegistry>>,
}

impl std::fmt::Debug for SegmentedStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentedStorage")
            .field("live", &self.len())
            .field("memtable", &self.mem_order.len())
            .field("segments", &self.slots.len())
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

impl SegmentedStorage {
    /// Creates an empty segmented storage. `memtable_size` is the seal
    /// threshold (clamped to at least 1); `compaction` controls the
    /// background worker — with it off, segments only merge through
    /// explicit [`IndexStorage::merge`] calls (deterministic, for tests).
    pub fn new(nbits: usize, index_enabled: bool, memtable_size: usize, compaction: bool) -> Self {
        Self {
            nbits,
            memtable_size: memtable_size.max(1),
            compaction,
            index_enabled,
            mem_order: Vec::new(),
            mem_sketches: HashMap::new(),
            mem_objects: HashMap::new(),
            slots: Vec::new(),
            next_segment_id: 0,
            epoch: 0,
            generation: 0,
            inflight: false,
            compactor: None,
            persist: None,
            telemetry: None,
        }
    }

    /// Index of the slot where `id` is live, if any.
    fn live_slot(&self, id: ObjectId) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| s.segment.sketches.contains_key(&id) && !s.dead.contains(&id))
    }

    fn publish_gauges(&self) {
        if let Some(registry) = &self.telemetry {
            registry
                .gauge("ferret_segments", SEGMENTS_HELP, &[])
                .set(self.slots.len() as i64);
            registry
                .gauge("ferret_memtable_objects", MEMTABLE_HELP, &[])
                .set(self.mem_order.len() as i64);
            registry
                .gauge("ferret_index_memory_bytes", INDEX_BYTES_HELP, &[])
                .set(self.index_bytes() as i64);
        }
    }

    /// Drains the compaction outbox and applies every outcome that still
    /// matches the current slot list.
    fn apply_pending(&mut self) -> Result<()> {
        let outcomes = match &self.compactor {
            Some(handle) => {
                let mut outbox = lock_inner(&handle.shared.outbox);
                std::mem::take(&mut *outbox)
            }
            None => return Ok(()),
        };
        for outcome in outcomes {
            // One job outstanding at a time, so any outcome settles it.
            self.inflight = false;
            if outcome.generation != self.generation {
                continue;
            }
            let Some(start) = self.find_run(&outcome.input_ids) else {
                continue;
            };
            let merged = outcome.merged?;
            self.splice_run(
                start,
                outcome.input_ids.len(),
                merged,
                &outcome.dead_claimed,
            )?;
        }
        Ok(())
    }

    /// Position of `input_ids` as a contiguous run of current slots.
    fn find_run(&self, input_ids: &[u64]) -> Option<usize> {
        if input_ids.is_empty() || input_ids.len() > self.slots.len() {
            return None;
        }
        (0..=self.slots.len() - input_ids.len()).find(|&start| {
            input_ids
                .iter()
                .enumerate()
                .all(|(i, id)| self.slots[start + i].segment.id == *id)
        })
    }

    /// Replaces `slots[start..start+len]` with the merged segment,
    /// carrying forward removals that landed after the job's dead-set
    /// snapshot (`dead_now − dead_claimed` per input — those records were
    /// live at snapshot time, so they exist in the merged segment).
    fn splice_run(
        &mut self,
        start: usize,
        len: usize,
        merged: Segment,
        dead_claimed: &[HashSet<ObjectId>],
    ) -> Result<()> {
        let mut dead = HashSet::new();
        for (i, slot) in self.slots[start..start + len].iter().enumerate() {
            let claimed = dead_claimed.get(i);
            dead.extend(
                slot.dead
                    .iter()
                    .filter(|id| !claimed.is_some_and(|c| c.contains(id)))
                    .copied(),
            );
        }
        let slot = SegmentSlot {
            segment: Arc::new(merged),
            dead,
            persist_id: None,
        };
        self.slots.splice(start..start + len, [slot]);
        self.epoch += 1;
        self.persist_checkpoint()?;
        self.publish_gauges();
        Ok(())
    }

    /// Freezes the memtable into a new (unindexed) sealed segment.
    fn seal_memtable(&mut self) -> Result<()> {
        if self.mem_order.is_empty() {
            return Ok(());
        }
        let id = self.next_segment_id;
        self.next_segment_id += 1;
        let segment = Segment {
            id,
            ids: std::mem::take(&mut self.mem_order),
            sketches: std::mem::take(&mut self.mem_sketches),
            objects: std::mem::take(&mut self.mem_objects),
            index: None,
        };
        self.slots.push(SegmentSlot {
            segment: Arc::new(segment),
            dead: HashSet::new(),
            persist_id: None,
        });
        self.epoch += 1;
        self.persist_checkpoint()?;
        self.publish_gauges();
        Ok(())
    }

    /// Picks the next contiguous run to compact: the first maximal run of
    /// two or more candidate slots (unindexed while indexing is on, small,
    /// or removal-heavy), else a lone slot that needs an index build or a
    /// removal sweep. Returns `(start, len)`.
    fn plan_merge(&self) -> Option<(usize, usize)> {
        let small_limit = self.memtable_size.saturating_mul(4).max(8);
        let needs_rewrite = |slot: &SegmentSlot| {
            (self.index_enabled && slot.segment.index.is_none())
                || slot.dead.len() * 2 >= slot.segment.ids.len().max(1)
        };
        let candidate = |slot: &SegmentSlot| {
            needs_rewrite(slot) || slot.segment.live_count(&slot.dead) < small_limit
        };
        let mut start = 0;
        while start < self.slots.len() {
            if !candidate(&self.slots[start]) {
                start += 1;
                continue;
            }
            let mut end = start + 1;
            while end < self.slots.len() && candidate(&self.slots[end]) {
                end += 1;
            }
            if end - start >= 2 {
                return Some((start, end - start));
            }
            // A lone candidate is only worth rewriting if it needs an
            // index build or a removal sweep; re-merging a small but
            // healthy segment by itself would loop forever.
            if needs_rewrite(&self.slots[start]) {
                return Some((start, 1));
            }
            start = end;
        }
        None
    }

    /// Snapshot of the run for a merge: `Arc` clones of the segments plus
    /// the dead sets as of now.
    fn snapshot_run(
        &self,
        start: usize,
        len: usize,
    ) -> (Vec<Arc<Segment>>, Vec<HashSet<ObjectId>>) {
        let inputs = self.slots[start..start + len]
            .iter()
            .map(|s| Arc::clone(&s.segment))
            .collect();
        let dead = self.slots[start..start + len]
            .iter()
            .map(|s| s.dead.clone())
            .collect();
        (inputs, dead)
    }

    /// Spawns the compaction worker on first use. Returns `false` (and
    /// disables background compaction) if the thread cannot be spawned.
    fn ensure_worker(&mut self) -> bool {
        if self.compactor.is_some() {
            return true;
        }
        if !self.compaction {
            return false;
        }
        let shared = Arc::new(CompactorShared::default());
        let worker_shared = Arc::clone(&shared);
        match std::thread::Builder::new()
            .name("ferret-compaction".into())
            .spawn(move || worker_loop(worker_shared))
        {
            Ok(join) => {
                self.compactor = Some(CompactorHandle {
                    shared,
                    join: Some(join),
                });
                true
            }
            Err(_) => {
                self.compaction = false;
                false
            }
        }
    }

    /// Enqueues the next due merge for the background worker, if any.
    fn schedule_compaction(&mut self) {
        if !self.compaction || self.inflight {
            return;
        }
        let Some((start, len)) = self.plan_merge() else {
            return;
        };
        if !self.ensure_worker() {
            return;
        }
        let (inputs, dead_claimed) = self.snapshot_run(start, len);
        let out_id = self.next_segment_id;
        self.next_segment_id += 1;
        let job = MergeJob {
            generation: self.generation,
            out_id,
            nbits: self.nbits,
            build_index: self.index_enabled,
            inputs,
            dead_claimed,
            telemetry: self.telemetry.clone(),
        };
        if let Some(handle) = &self.compactor {
            lock_inner(&handle.shared.queue).push_back(Job::Merge(Box::new(job)));
            handle.shared.cv.notify_one();
            self.inflight = true;
        }
    }

    /// Writes any not-yet-persisted sealed segments through the attached
    /// [`SegmentStore`] and commits a manifest naming the live set. The
    /// manifest swap is the durability point; superseded segment files are
    /// garbage-collected only after the swap.
    fn persist_checkpoint(&mut self) -> Result<()> {
        let Some(store) = self.persist.as_mut() else {
            return Ok(());
        };
        for slot in &mut self.slots {
            if slot.persist_id.is_some() {
                continue;
            }
            let mut records = Vec::with_capacity(slot.segment.ids.len());
            for id in &slot.segment.ids {
                if let Some(so) = slot.segment.sketches.get(id) {
                    records.push(SegmentRecord {
                        id: id.0,
                        payload: crate::codec::encode_sketched(so),
                    });
                }
            }
            slot.persist_id = Some(store.write_segment(&records).map_err(store_err)?);
        }
        let live: Vec<u64> = self.slots.iter().filter_map(|s| s.persist_id).collect();
        store.commit_manifest(&live).map_err(store_err)?;
        Ok(())
    }

    /// Runs one inline (synchronous) merge step; returns `true` if a run
    /// was merged.
    fn merge_step(&mut self) -> Result<bool> {
        let Some((start, len)) = self.plan_merge() else {
            return Ok(false);
        };
        let (inputs, dead_claimed) = self.snapshot_run(start, len);
        let out_id = self.next_segment_id;
        self.next_segment_id += 1;
        let begin = std::time::Instant::now();
        let merged = merge_segments(
            out_id,
            self.nbits,
            self.index_enabled,
            &inputs,
            &dead_claimed,
        )?;
        if let Some(registry) = &self.telemetry {
            registry.inc_counter("ferret_compactions_total", COMPACTIONS_HELP, &[], 1);
            registry.observe_latency(
                "ferret_compaction_seconds",
                COMPACTION_SECONDS_HELP,
                &[],
                begin.elapsed(),
            );
        }
        self.splice_run(start, len, merged, &dead_claimed)?;
        Ok(true)
    }
}

impl IndexStorage for SegmentedStorage {
    fn layout(&self) -> IndexLayout {
        IndexLayout::Segmented
    }

    fn len(&self) -> usize {
        let sealed: usize = self
            .slots
            .iter()
            .map(|s| s.segment.live_count(&s.dead))
            .sum();
        sealed + self.mem_order.len()
    }

    fn contains(&self, id: ObjectId) -> bool {
        self.mem_sketches.contains_key(&id) || self.live_slot(id).is_some()
    }

    fn object(&self, id: ObjectId) -> Option<&DataObject> {
        if let Some(obj) = self.mem_objects.get(&id) {
            return Some(obj);
        }
        if self.mem_sketches.contains_key(&id) {
            return None;
        }
        self.live_slot(id)
            .and_then(|i| self.slots[i].segment.objects.get(&id))
    }

    fn sketch(&self, id: ObjectId) -> Option<&SketchedObject> {
        if let Some(so) = self.mem_sketches.get(&id) {
            return Some(so);
        }
        self.live_slot(id)
            .and_then(|i| self.slots[i].segment.sketches.get(&id))
    }

    fn live_ids(&self) -> Vec<ObjectId> {
        let mut out = Vec::with_capacity(self.len());
        for slot in &self.slots {
            out.extend(slot.segment.ids.iter().filter(|id| !slot.dead.contains(id)));
        }
        out.extend(self.mem_order.iter().copied());
        out
    }

    fn live_refs(&self) -> Vec<(ObjectId, &SketchedObject, Option<&DataObject>)> {
        let mut out = Vec::with_capacity(self.len());
        for slot in &self.slots {
            for id in &slot.segment.ids {
                if slot.dead.contains(id) {
                    continue;
                }
                if let Some(so) = slot.segment.sketches.get(id) {
                    out.push((*id, so, slot.segment.objects.get(id)));
                }
            }
        }
        for id in &self.mem_order {
            if let Some(so) = self.mem_sketches.get(id) {
                out.push((*id, so, self.mem_objects.get(id)));
            }
        }
        out
    }

    fn insert(
        &mut self,
        id: ObjectId,
        sketched: SketchedObject,
        original: Option<DataObject>,
    ) -> Result<()> {
        self.apply_pending()?;
        if self.contains(id) {
            return Err(CoreError::DuplicateObject(id.0));
        }
        self.mem_sketches.insert(id, sketched);
        if let Some(object) = original {
            self.mem_objects.insert(id, object);
        }
        self.mem_order.push(id);
        self.epoch += 1;
        if self.mem_order.len() >= self.memtable_size {
            self.seal_memtable()?;
            self.schedule_compaction();
        }
        self.publish_gauges();
        Ok(())
    }

    fn tombstone(&mut self, id: ObjectId) -> Result<bool> {
        self.apply_pending()?;
        if self.mem_sketches.remove(&id).is_some() {
            self.mem_objects.remove(&id);
            self.mem_order.retain(|&x| x != id);
            self.epoch += 1;
            self.publish_gauges();
            return Ok(true);
        }
        if let Some(i) = self.live_slot(id) {
            self.slots[i].dead.insert(id);
            self.epoch += 1;
            self.schedule_compaction();
            self.publish_gauges();
            return Ok(true);
        }
        Ok(false)
    }

    fn seal(&mut self) -> Result<()> {
        self.apply_pending()?;
        self.seal_memtable()?;
        self.schedule_compaction();
        Ok(())
    }

    fn merge(&mut self) -> Result<()> {
        self.apply_pending()?;
        // Invalidate any in-flight background job: its inputs may be
        // spliced away by the inline merges below.
        self.generation += 1;
        while self.merge_step()? {}
        Ok(())
    }

    fn maintain(&mut self) -> Result<()> {
        self.apply_pending()?;
        self.schedule_compaction();
        Ok(())
    }

    fn set_index_enabled(&mut self, enabled: bool) -> Result<()> {
        self.apply_pending()?;
        if enabled == self.index_enabled {
            return Ok(());
        }
        self.index_enabled = enabled;
        // In-flight jobs were planned under the other indexing mode.
        self.generation += 1;
        self.epoch += 1;
        self.schedule_compaction();
        self.publish_gauges();
        Ok(())
    }

    fn index_enabled(&self) -> bool {
        self.index_enabled
    }

    fn probe_set(&self) -> Option<ProbeSet<'_>> {
        if !self.index_enabled {
            return None;
        }
        let mut parts = Vec::new();
        let mut extras = Vec::new();
        for slot in &self.slots {
            match &slot.segment.index {
                Some(index) => parts.push(IndexedPart {
                    index,
                    dead: if slot.dead.is_empty() {
                        None
                    } else {
                        Some(&slot.dead)
                    },
                }),
                None => {
                    for id in &slot.segment.ids {
                        if slot.dead.contains(id) {
                            continue;
                        }
                        if let Some(so) = slot.segment.sketches.get(id) {
                            extras.push((*id, so));
                        }
                    }
                }
            }
        }
        for id in &self.mem_order {
            if let Some(so) = self.mem_sketches.get(id) {
                extras.push((*id, so));
            }
        }
        Some(ProbeSet { parts, extras })
    }

    fn index_bytes(&self) -> usize {
        if !self.index_enabled {
            return 0;
        }
        self.slots
            .iter()
            .filter_map(|s| s.segment.index.as_ref())
            .map(ShardedSketchIndex::memory_bytes)
            .sum()
    }

    fn stats(&self) -> StorageStats {
        StorageStats {
            live_objects: self.len(),
            memtable_objects: self.mem_order.len(),
            sealed_segments: self.slots.len(),
            indexed_segments: self
                .slots
                .iter()
                .filter(|s| s.segment.index.is_some())
                .count(),
            tombstones: self.slots.iter().map(|s| s.dead.len()).sum(),
        }
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn snapshot(&self) -> StorageSnapshot<'_> {
        StorageSnapshot {
            epoch: self.epoch,
            probe: self.probe_set(),
            live: self.live_refs(),
        }
    }

    fn set_telemetry(&mut self, registry: Option<Arc<MetricsRegistry>>) {
        self.telemetry = registry;
        // Register the compaction series eagerly so `/metrics` shows them
        // (at zero) before the first background merge completes.
        if let Some(registry) = &self.telemetry {
            registry.counter("ferret_compactions_total", COMPACTIONS_HELP, &[]);
            registry.histogram(
                "ferret_compaction_seconds",
                COMPACTION_SECONDS_HELP,
                &[],
                &LATENCY_BUCKETS_NS,
                Unit::Nanoseconds,
            );
        }
        self.publish_gauges();
    }

    fn attach_persistence(&mut self, store: SegmentStore) -> Result<()> {
        self.persist = Some(store);
        self.persist_checkpoint()
    }

    fn persistence_handle(&self) -> Option<&SegmentStore> {
        self.persist.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::{SketchBuilder, SketchParams};
    use crate::vector::FeatureVector;

    fn test_builder() -> SketchBuilder {
        let params = SketchParams::new(64, vec![0.0; 2], vec![1.0; 2]).unwrap();
        SketchBuilder::new(params, 7)
    }

    fn sketched(builder: &SketchBuilder, v: &[f32]) -> (DataObject, SketchedObject) {
        let obj = DataObject::single(FeatureVector::new(v.to_vec()).unwrap());
        let so = builder.sketch_object(&obj).unwrap();
        (obj, so)
    }

    fn fill(storage: &mut SegmentedStorage, builder: &SketchBuilder, ids: std::ops::Range<u64>) {
        for i in ids {
            let (obj, so) = sketched(builder, &[(i % 10) as f32 / 10.0, 0.5]);
            storage.insert(ObjectId(i), so, Some(obj)).unwrap();
        }
    }

    #[test]
    fn seal_and_inline_merge_preserve_order() {
        let builder = test_builder();
        let mut storage = SegmentedStorage::new(builder.nbits(), true, 4, false);
        fill(&mut storage, &builder, 0..10);
        let stats = storage.stats();
        assert_eq!(stats.live_objects, 10);
        assert_eq!(stats.sealed_segments, 2);
        assert_eq!(stats.memtable_objects, 2);
        let expect: Vec<ObjectId> = (0..10).map(ObjectId).collect();
        assert_eq!(storage.live_ids(), expect);
        storage.merge().unwrap();
        assert_eq!(storage.live_ids(), expect);
        let stats = storage.stats();
        assert_eq!(stats.sealed_segments, 1);
        assert_eq!(stats.indexed_segments, 1);
        assert_eq!(stats.tombstones, 0);
    }

    #[test]
    fn tombstone_then_reinsert_moves_to_memtable() {
        let builder = test_builder();
        let mut storage = SegmentedStorage::new(builder.nbits(), true, 2, false);
        fill(&mut storage, &builder, 0..4);
        assert!(storage.tombstone(ObjectId(1)).unwrap());
        assert!(!storage.contains(ObjectId(1)));
        assert_eq!(storage.stats().tombstones, 1);
        let (obj, so) = sketched(&builder, &[0.9, 0.9]);
        storage.insert(ObjectId(1), so, Some(obj)).unwrap();
        assert!(storage.contains(ObjectId(1)));
        // Reinsertion lands at the end of the global order.
        let ids = storage.live_ids();
        assert_eq!(ids.last(), Some(&ObjectId(1)));
        storage.merge().unwrap();
        assert_eq!(storage.stats().tombstones, 0);
        assert_eq!(storage.live_ids().last(), Some(&ObjectId(1)));
        assert_eq!(storage.len(), 4);
    }

    #[test]
    fn background_compaction_applies_on_next_write() {
        let builder = test_builder();
        let mut storage = SegmentedStorage::new(builder.nbits(), true, 2, true);
        fill(&mut storage, &builder, 0..8);
        // The worker needs a moment; poll through maintain().
        for _ in 0..200 {
            storage.maintain().unwrap();
            if storage.stats().indexed_segments > 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(
            storage.stats().indexed_segments > 0,
            "{:?}",
            storage.stats()
        );
        assert_eq!(storage.len(), 8);
        let expect: Vec<ObjectId> = (0..8).map(ObjectId).collect();
        assert_eq!(storage.live_ids(), expect);
    }

    #[test]
    fn probe_set_covers_all_live_records() {
        let builder = test_builder();
        let mut storage = SegmentedStorage::new(builder.nbits(), true, 3, false);
        fill(&mut storage, &builder, 0..8);
        storage.merge().unwrap();
        fill(&mut storage, &builder, 8..10);
        storage.tombstone(ObjectId(0)).unwrap();
        let probe = storage.probe_set().unwrap();
        let indexed: usize = probe
            .parts
            .iter()
            .map(|p| {
                p.index.len()
                    - p.dead
                        .map_or(0, |d| d.iter().filter(|id| p.index.contains(**id)).count())
            })
            .sum();
        assert_eq!(indexed + probe.extras.len(), storage.len());
    }
}
