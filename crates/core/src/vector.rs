//! Dense feature vectors extracted from data segments.

use crate::error::{CoreError, Result};

/// A dense, fixed-dimensionality feature vector describing one segment.
///
/// Feature vectors are the unit on which segment distance functions and
/// sketch construction operate. They are immutable after construction; the
/// components are stored as `f32`, matching the paper's `float` metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector {
    components: Box<[f32]>,
}

impl FeatureVector {
    /// Creates a feature vector from its components.
    ///
    /// Returns an error if the vector is empty or contains non-finite
    /// components (noisy data is expected, NaN metadata is not).
    pub fn new(components: Vec<f32>) -> Result<Self> {
        if components.is_empty() {
            return Err(CoreError::DimensionMismatch {
                expected: 1,
                actual: 0,
            });
        }
        if let Some(bad) = components.iter().position(|c| !c.is_finite()) {
            return Err(CoreError::InvalidWeights(format!(
                "component {bad} is not finite"
            )));
        }
        Ok(Self {
            components: components.into_boxed_slice(),
        })
    }

    /// Creates a feature vector without validating the components.
    ///
    /// Intended for generated data known to be finite; still panics in debug
    /// builds if a non-finite component slips through.
    pub fn from_components(components: Vec<f32>) -> Self {
        debug_assert!(components.iter().all(|c| c.is_finite()));
        debug_assert!(!components.is_empty());
        Self {
            components: components.into_boxed_slice(),
        }
    }

    /// The dimensionality `D` of the vector.
    #[inline]
    pub fn dim(&self) -> usize {
        self.components.len()
    }

    /// The raw components.
    #[inline]
    pub fn components(&self) -> &[f32] {
        &self.components
    }

    /// Returns component `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    #[inline]
    pub fn get(&self, i: usize) -> f32 {
        self.components[i]
    }

    /// Checks that `self` and `other` have the same dimensionality.
    pub fn check_same_dim(&self, other: &Self) -> Result<()> {
        if self.dim() != other.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim(),
                actual: other.dim(),
            });
        }
        Ok(())
    }
}

impl AsRef<[f32]> for FeatureVector {
    fn as_ref(&self) -> &[f32] {
        &self.components
    }
}

impl<'a> IntoIterator for &'a FeatureVector {
    type Item = &'a f32;
    type IntoIter = std::slice::Iter<'a, f32>;

    fn into_iter(self) -> Self::IntoIter {
        self.components.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_finite_components() {
        let v = FeatureVector::new(vec![1.0, -2.5, 0.0]).unwrap();
        assert_eq!(v.dim(), 3);
        assert_eq!(v.components(), &[1.0, -2.5, 0.0]);
        assert_eq!(v.get(1), -2.5);
    }

    #[test]
    fn new_rejects_empty() {
        assert!(matches!(
            FeatureVector::new(vec![]),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn new_rejects_nan_and_inf() {
        assert!(FeatureVector::new(vec![1.0, f32::NAN]).is_err());
        assert!(FeatureVector::new(vec![f32::INFINITY]).is_err());
        assert!(FeatureVector::new(vec![f32::NEG_INFINITY, 0.0]).is_err());
    }

    #[test]
    fn check_same_dim_detects_mismatch() {
        let a = FeatureVector::new(vec![1.0, 2.0]).unwrap();
        let b = FeatureVector::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert!(a.check_same_dim(&b).is_err());
        assert!(a.check_same_dim(&a.clone()).is_ok());
    }

    #[test]
    fn iterates_components() {
        let v = FeatureVector::new(vec![3.0, 4.0]).unwrap();
        let sum: f32 = (&v).into_iter().sum();
        assert_eq!(sum, 7.0);
    }
}
