//! The core similarity search engine (paper §4.1.1).
//!
//! The engine owns the sketch construction unit, the (optional) feature
//! vector metadata, the sketch database, the filtering unit and the ranking
//! unit. It supports the three query approaches evaluated in the paper
//! (§6.3.3): `BruteForceOriginal`, `BruteForceSketch`, and `Filtering`.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::distance::emd::{emd_with_costs, greedy_emd_with_costs, Emd, GreedyEmd, ThresholdedEmd};
use crate::distance::{ObjectDistance, SegmentDistance};
use crate::error::{CoreError, Result};
use crate::filter::{
    filter_candidates_indexed_multi, filter_candidates_sharded_traced, FilterParams, FilterStats,
    FilterStrategy, IndexedFilterOutcome, ProbeStats,
};
use crate::object::{DataObject, ObjectId};
use crate::parallel::{try_map_chunked, Parallelism, DEFAULT_CHUNK};
use crate::rank::{rank_candidates_parallel, rank_scores, SearchResult};
use crate::segment::{
    IndexLayout, IndexStorage, MonolithicStorage, SegmentedStorage, StorageStats,
};
use crate::sketch::{
    ShardedSketchIndex, SketchBuilder, SketchParams, SketchStrategy, SketchedObject,
};
use crate::telemetry::{
    MetricsRegistry, QueryTrace, ShardTrace, StageClock, StageTrace, SIZE_BUCKETS,
};

/// How a query traverses the dataset (paper §6.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryMode {
    /// Compute the object distance to every object using original feature
    /// vectors. Most accurate, slowest, requires stored originals.
    BruteForceOriginal,
    /// Compute the object distance to every object using sketches only
    /// (segment distances estimated by scaled Hamming distance).
    BruteForceSketch,
    /// Sketch-based filtering to a small candidate set, then accurate
    /// ranking of the candidates.
    Filtering,
}

impl std::fmt::Display for QueryMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            QueryMode::BruteForceOriginal => "brute-force-original",
            QueryMode::BruteForceSketch => "brute-force-sketch",
            QueryMode::Filtering => "filtering",
        };
        f.write_str(s)
    }
}

/// The object distance used by the ranking unit.
#[derive(Clone)]
pub enum RankingMethod {
    /// Exact Earth Mover's Distance over the segment distance.
    Emd,
    /// EMD with ground distances clamped at `tau` and optional square-root
    /// weight transformation (the improved EMD of CIKM'04, paper §4.2.2).
    ThresholdedEmd {
        /// Ground-distance clamp, in segment-distance units.
        tau: f64,
        /// Apply the square-root weighting transform before matching.
        sqrt_weights: bool,
    },
    /// Greedy EMD approximation (upper bound, faster).
    GreedyEmd,
    /// A user-supplied object distance; only usable with stored originals
    /// (`BruteForceOriginal` or the ranking phase of `Filtering`).
    Custom(Arc<dyn ObjectDistance>),
}

impl std::fmt::Debug for RankingMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankingMethod::Emd => write!(f, "Emd"),
            RankingMethod::ThresholdedEmd { tau, sqrt_weights } => {
                write!(
                    f,
                    "ThresholdedEmd {{ tau: {tau}, sqrt_weights: {sqrt_weights} }}"
                )
            }
            RankingMethod::GreedyEmd => write!(f, "GreedyEmd"),
            RankingMethod::Custom(d) => write!(f, "Custom({})", d.name()),
        }
    }
}

/// Engine construction parameters.
///
/// Marked `#[non_exhaustive]` so new knobs can be added without breaking
/// downstream crates: construct via [`EngineConfig::basic`] (or
/// [`EngineBuilder`]), then refine fields directly or with the fluent
/// `with_*` methods.
#[derive(Clone)]
#[non_exhaustive]
pub struct EngineConfig {
    /// Sketch construction parameters (`N`, `K`, per-dimension ranges).
    pub sketch: SketchParams,
    /// Seed for the sketch construction unit's random `(i, t)` pairs.
    pub seed: u64,
    /// The segment distance function (used for original-vector EMD grounds).
    pub seg_distance: Arc<dyn SegmentDistance>,
    /// The object distance used by the ranking unit.
    pub ranking: RankingMethod,
    /// Keep original feature vectors in memory. When `false` the engine is
    /// sketch-only ("users have the option to use compact sketches as the
    /// only internal data structures", §4.1.1); `BruteForceOriginal` queries
    /// are then rejected and `Filtering` ranks with sketches.
    pub store_originals: bool,
    /// How many threads the query path (filtering scan, EMD ranking) and
    /// batch sketch construction may use. Results are bit-identical for
    /// every setting; this only trades wall-clock time for cores.
    pub parallelism: Parallelism,
    /// How the filtering stage traverses the sketch database: full scan,
    /// multi-index probe, or a per-query automatic choice. Results are
    /// byte-identical for every setting (see [`FilterStrategy`]).
    pub filter_strategy: FilterStrategy,
    /// How the sketch construction unit evaluates its `N × K` random
    /// pairs: the paper's per-pair loop or the pre-sorted one-pass plan.
    /// Sketches are byte-identical for every setting (see
    /// [`SketchStrategy`]); this only trades plan memory for ingest
    /// throughput.
    pub sketch_strategy: SketchStrategy,
    /// Which storage layout backs the object maps and sketch index:
    /// one mutable monolith, or LSM-style immutable segments. Results
    /// are bit-identical for every setting (see [`IndexLayout`]).
    pub index_layout: IndexLayout,
    /// Seal threshold of the segmented layout's memtable (ignored by
    /// [`IndexLayout::Monolithic`]).
    pub memtable_size: usize,
    /// Run the segmented layout's background compaction worker (ignored
    /// by [`IndexLayout::Monolithic`]). Off, segments only merge through
    /// explicit [`SearchEngine::compact`] calls — deterministic, for
    /// tests.
    pub compaction: bool,
}

/// Default memtable seal threshold for [`IndexLayout::Segmented`].
pub const DEFAULT_MEMTABLE_SIZE: usize = 1024;

impl EngineConfig {
    /// Conventional configuration: ℓ₁ segment distance, exact EMD ranking,
    /// originals stored.
    pub fn basic(sketch: SketchParams, seed: u64) -> Self {
        Self {
            sketch,
            seed,
            seg_distance: Arc::new(crate::distance::lp::L1),
            ranking: RankingMethod::Emd,
            store_originals: true,
            parallelism: Parallelism::Auto,
            filter_strategy: FilterStrategy::Auto,
            sketch_strategy: SketchStrategy::Classic,
            index_layout: IndexLayout::default(),
            memtable_size: DEFAULT_MEMTABLE_SIZE,
            compaction: true,
        }
    }

    /// Sets the segment distance function.
    pub fn with_seg_distance(mut self, seg_distance: Arc<dyn SegmentDistance>) -> Self {
        self.seg_distance = seg_distance;
        self
    }

    /// Sets the ranking method.
    pub fn with_ranking(mut self, ranking: RankingMethod) -> Self {
        self.ranking = ranking;
        self
    }

    /// Keeps (or drops) original feature vectors in memory.
    pub fn with_store_originals(mut self, store_originals: bool) -> Self {
        self.store_originals = store_originals;
        self
    }

    /// Sets the parallelism budget.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the filtering strategy.
    pub fn with_filter_strategy(mut self, filter_strategy: FilterStrategy) -> Self {
        self.filter_strategy = filter_strategy;
        self
    }

    /// Sets the sketch construction strategy.
    pub fn with_sketch_strategy(mut self, sketch_strategy: SketchStrategy) -> Self {
        self.sketch_strategy = sketch_strategy;
        self
    }

    /// Sets the index storage layout.
    pub fn with_index_layout(mut self, index_layout: IndexLayout) -> Self {
        self.index_layout = index_layout;
        self
    }

    /// Sets the segmented layout's memtable seal threshold.
    pub fn with_memtable_size(mut self, memtable_size: usize) -> Self {
        self.memtable_size = memtable_size;
        self
    }

    /// Enables or disables the segmented layout's background compaction.
    pub fn with_compaction(mut self, compaction: bool) -> Self {
        self.compaction = compaction;
        self
    }
}

/// Minimum corpus size at which [`FilterStrategy::Auto`] considers the
/// multi-index worthwhile; below this a scan is cheaper than probing
/// `B` hash tables per query segment.
pub const AUTO_INDEX_MIN_OBJECTS: usize = 256;

/// Maps a ranking distance to a similarity score in `(0, 1]`: `1 / (1 + d)`.
///
/// Monotone decreasing in the distance, so similarity order always equals
/// distance order; distance `0` is similarity `1`. This is the scale both
/// the `min_similarity` threshold and weighted fusion scoring use.
pub fn similarity_from_distance(d: f64) -> f64 {
    1.0 / (1.0 + d)
}

/// How a hybrid query blends the attribute-match ranking with the
/// similarity (EMD) ranking.
///
/// The engine itself never fuses — it has no attribute index. Fusion is
/// interpreted by the service layer (`ferret-query`), which owns both
/// rankings; the mode travels in [`QueryOptions`] so one options value
/// describes the whole query. Both modes order results by
/// `(score descending, object id ascending)`, a deterministic total order.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FusionMode {
    /// No fusion: plain similarity ranking (possibly attribute-restricted).
    #[default]
    None,
    /// Reciprocal rank fusion: `score = Σ_lists 1 / (k + rank)` with ranks
    /// starting at 1. Rank-based, so it needs no score normalization.
    Rrf {
        /// The rank-smoothing constant (60 is the conventional default).
        k: u32,
    },
    /// Weighted score merge: `score = attr_weight · attr_score_normalized +
    /// (1 − attr_weight) · similarity`, with the attribute score normalized
    /// by the largest attribute score in the result set.
    Weighted {
        /// Weight of the attribute ranking in `[0, 1]`.
        attr_weight: f64,
    },
}

impl FusionMode {
    /// Conventional RRF rank-smoothing constant (used by [`FromStr`](std::str::FromStr)).
    pub const DEFAULT_RRF_K: u32 = 60;
    /// Balanced attribute weight (used by [`FromStr`](std::str::FromStr)).
    pub const DEFAULT_ATTR_WEIGHT: f64 = 0.5;
}

impl std::fmt::Display for FusionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FusionMode::None => "none",
            FusionMode::Rrf { .. } => "rrf",
            FusionMode::Weighted { .. } => "weighted",
        })
    }
}

impl std::str::FromStr for FusionMode {
    type Err = CoreError;

    /// Parses the `Display` labels back into modes with their documented
    /// default parameters (`k = 60`, `attr_weight = 0.5`); callers refine
    /// the parameters afterwards (e.g. the protocol's `rrfk=`/`fw=` keys).
    fn from_str(s: &str) -> Result<Self> {
        match s {
            "none" => Ok(FusionMode::None),
            "rrf" => Ok(FusionMode::Rrf {
                k: FusionMode::DEFAULT_RRF_K,
            }),
            "weighted" => Ok(FusionMode::Weighted {
                attr_weight: FusionMode::DEFAULT_ATTR_WEIGHT,
            }),
            other => Err(CoreError::InvalidQuery(format!(
                "unknown fusion mode {other:?} (expected none, rrf, or weighted)"
            ))),
        }
    }
}

/// Per-query options.
///
/// Marked `#[non_exhaustive]` so new knobs can be added without breaking
/// downstream crates: construct via [`QueryOptions::default`] or the named
/// constructors, then refine with the fluent `with_*` methods.
///
/// ```
/// use ferret_core::engine::{QueryMode, QueryOptions};
/// let opts = QueryOptions::default()
///     .with_k(5)
///     .with_mode(QueryMode::BruteForceOriginal);
/// assert_eq!(opts.k, 5);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct QueryOptions {
    /// Number of results to return.
    pub k: usize,
    /// Query traversal mode.
    pub mode: QueryMode,
    /// Filtering parameters (used only in [`QueryMode::Filtering`]).
    pub filter: FilterParams,
    /// Restrict the search to these objects (e.g. the result of an
    /// attribute-based search, paper §4.1.2). `None` searches everything.
    pub restrict: Option<HashSet<ObjectId>>,
    /// Override the query object's segment weights ("adjusted weights for
    /// feature vectors", paper §4.1.4). Must match the query's segment
    /// count; weights are re-normalized.
    pub weight_override: Option<Vec<f32>>,
    /// How a hybrid query blends attribute and similarity rankings. The
    /// engine ignores this (it has no attribute ranking); the service
    /// layer interprets it. See [`FusionMode`].
    pub fusion: FusionMode,
    /// Drop results whose similarity `1 / (1 + distance)` falls below this
    /// threshold (must lie in `[0, 1]`). Applied after ranking, so it only
    /// shrinks the result list.
    pub min_similarity: Option<f64>,
    /// Cap the final result list at this many entries (must be > 0).
    /// Unlike `k` — the size of the ranked similarity pool — the limit is
    /// applied *after* the min-similarity threshold (and, in the service
    /// layer, after fusion).
    pub limit: Option<usize>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self {
            k: 10,
            mode: QueryMode::Filtering,
            filter: FilterParams::default(),
            restrict: None,
            weight_override: None,
            fusion: FusionMode::None,
            min_similarity: None,
            limit: None,
        }
    }
}

impl QueryOptions {
    /// Options for a brute-force query over the original feature vectors.
    pub fn brute_force(k: usize) -> Self {
        Self {
            k,
            mode: QueryMode::BruteForceOriginal,
            ..Self::default()
        }
    }

    /// Options for a brute-force query over sketches.
    pub fn brute_force_sketch(k: usize) -> Self {
        Self {
            k,
            mode: QueryMode::BruteForceSketch,
            ..Self::default()
        }
    }

    /// Options for a filtered query.
    pub fn filtering(k: usize, filter: FilterParams) -> Self {
        Self {
            k,
            mode: QueryMode::Filtering,
            filter,
            ..Self::default()
        }
    }

    /// Sets the number of results to return.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the traversal mode.
    pub fn with_mode(mut self, mode: QueryMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the filtering parameters (used in [`QueryMode::Filtering`]).
    pub fn with_filter(mut self, filter: FilterParams) -> Self {
        self.filter = filter;
        self
    }

    /// Restricts the search to `ids` (e.g. an attribute-search result).
    pub fn with_restrict(mut self, ids: HashSet<ObjectId>) -> Self {
        self.restrict = Some(ids);
        self
    }

    /// Overrides the query object's segment weights.
    pub fn with_weights(mut self, weights: Vec<f32>) -> Self {
        self.weight_override = Some(weights);
        self
    }

    /// Sets the fusion mode (interpreted by the service layer).
    pub fn with_fusion(mut self, fusion: FusionMode) -> Self {
        self.fusion = fusion;
        self
    }

    /// Drops results whose similarity falls below `threshold`.
    pub fn with_min_similarity(mut self, threshold: f64) -> Self {
        self.min_similarity = Some(threshold);
        self
    }

    /// Caps the final result list at `limit` entries.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Validates the result-shaping knobs (`min_similarity`, `limit`).
    fn validate_shape(&self) -> Result<()> {
        if let Some(ms) = self.min_similarity {
            if !ms.is_finite() || !(0.0..=1.0).contains(&ms) {
                return Err(CoreError::InvalidQuery(format!(
                    "min similarity {ms} outside [0, 1]"
                )));
            }
        }
        if self.limit == Some(0) {
            return Err(CoreError::InvalidQuery("limit must be > 0".into()));
        }
        Ok(())
    }

    /// Applies the result-shaping knobs to a ranked result list: the
    /// min-similarity threshold first, then the limit. Shaping only ever
    /// removes entries from the tail region; the surviving prefix order is
    /// untouched, so shaped results stay a prefix-consistent view of the
    /// unshaped ranking.
    pub fn apply_shape(&self, results: &mut Vec<SearchResult>) {
        if let Some(ms) = self.min_similarity {
            results.retain(|r| similarity_from_distance(r.distance) >= ms);
        }
        if let Some(limit) = self.limit {
            results.truncate(limit);
        }
    }
}

/// Statistics collected while answering one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryStats {
    /// The traversal mode used.
    pub mode: QueryMode,
    /// Objects visited during filtering or brute-force scanning.
    pub objects_scanned: usize,
    /// Segment sketches compared during filtering.
    pub segments_scanned: usize,
    /// Objects whose object distance to the query was evaluated.
    pub distance_evals: usize,
    /// Wall-clock time for the query.
    pub elapsed: Duration,
}

/// A query answer: ranked results plus statistics.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Ranked results, closest first.
    pub results: Vec<SearchResult>,
    /// Query execution statistics.
    pub stats: QueryStats,
    /// Per-stage trace, present when engine telemetry is enabled.
    /// Instrumentation never affects `results`: telemetry-on and
    /// telemetry-off runs are byte-identical in everything but this
    /// field.
    pub trace: Option<QueryTrace>,
}

/// Size of the engine's metadata, for storage-ratio reporting (Table 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetadataFootprint {
    /// Bytes of original feature-vector metadata (4 bytes per component).
    pub feature_vector_bytes: usize,
    /// Bytes of sketch metadata (packed bits).
    pub sketch_bytes: usize,
    /// Total number of segments stored.
    pub segments: usize,
}

impl MetadataFootprint {
    /// Feature-vector to sketch size ratio (`0.0` if no sketches).
    pub fn ratio(&self) -> f64 {
        if self.sketch_bytes == 0 {
            0.0
        } else {
            self.feature_vector_bytes as f64 / self.sketch_bytes as f64
        }
    }
}

/// Builds a [`SearchEngine`], mirroring `ServiceBuilder` in the query
/// crate. This is the one construction surface: the deprecated
/// [`SearchEngine::new`] is a thin wrapper over it.
///
/// ```
/// use ferret_core::prelude::*;
/// let params = SketchParams::new(64, vec![0.0; 2], vec![1.0; 2]).unwrap();
/// let engine = SearchEngine::builder(params, 42)
///     .filter_strategy(FilterStrategy::Indexed)
///     .index_layout(IndexLayout::Segmented)
///     .memtable_size(64)
///     .build()
///     .unwrap();
/// assert!(engine.is_empty());
/// ```
#[derive(Clone)]
pub struct EngineBuilder {
    config: EngineConfig,
    telemetry: Option<Arc<MetricsRegistry>>,
}

impl EngineBuilder {
    /// Starts from the conventional configuration (see
    /// [`EngineConfig::basic`]).
    pub fn new(sketch: SketchParams, seed: u64) -> Self {
        Self::from_config(EngineConfig::basic(sketch, seed))
    }

    /// Starts from an existing configuration.
    pub fn from_config(config: EngineConfig) -> Self {
        Self {
            config,
            telemetry: None,
        }
    }

    /// Sets the segment distance function.
    pub fn seg_distance(mut self, seg_distance: Arc<dyn SegmentDistance>) -> Self {
        self.config.seg_distance = seg_distance;
        self
    }

    /// Sets the ranking method.
    pub fn ranking(mut self, ranking: RankingMethod) -> Self {
        self.config.ranking = ranking;
        self
    }

    /// Keeps (or drops) original feature vectors in memory.
    pub fn store_originals(mut self, store_originals: bool) -> Self {
        self.config.store_originals = store_originals;
        self
    }

    /// Sets the parallelism budget.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.config.parallelism = parallelism;
        self
    }

    /// Sets the filtering strategy.
    pub fn filter_strategy(mut self, filter_strategy: FilterStrategy) -> Self {
        self.config.filter_strategy = filter_strategy;
        self
    }

    /// Sets the sketch construction strategy.
    pub fn sketch_strategy(mut self, sketch_strategy: SketchStrategy) -> Self {
        self.config.sketch_strategy = sketch_strategy;
        self
    }

    /// Sets the index storage layout.
    pub fn index_layout(mut self, index_layout: IndexLayout) -> Self {
        self.config.index_layout = index_layout;
        self
    }

    /// Sets the segmented layout's memtable seal threshold.
    pub fn memtable_size(mut self, memtable_size: usize) -> Self {
        self.config.memtable_size = memtable_size;
        self
    }

    /// Enables or disables the segmented layout's background compaction.
    pub fn compaction(mut self, compaction: bool) -> Self {
        self.config.compaction = compaction;
        self
    }

    /// Wires a metrics registry into the engine at construction time.
    pub fn telemetry(mut self, registry: Option<Arc<MetricsRegistry>>) -> Self {
        self.telemetry = registry;
        self
    }

    /// Builds the engine.
    pub fn build(self) -> Result<SearchEngine> {
        let config = self.config;
        let builder = SketchBuilder::with_strategy(
            config.sketch.clone(),
            config.seed,
            config.sketch_strategy,
        );
        let sketch_scale = 1.0 / builder.hamming_per_l1();
        let index_enabled = config.filter_strategy != FilterStrategy::Scan;
        let storage: Box<dyn IndexStorage> = match config.index_layout {
            IndexLayout::Monolithic => {
                Box::new(MonolithicStorage::new(builder.nbits(), index_enabled)?)
            }
            IndexLayout::Segmented => Box::new(SegmentedStorage::new(
                builder.nbits(),
                index_enabled,
                config.memtable_size,
                config.compaction,
            )),
        };
        let mut engine = SearchEngine {
            builder,
            sketch_scale,
            config,
            telemetry: None,
            storage,
        };
        if self.telemetry.is_some() {
            engine.set_telemetry(self.telemetry);
        }
        Ok(engine)
    }
}

/// The core similarity search engine.
pub struct SearchEngine {
    builder: SketchBuilder,
    /// Cached `1 / hamming_per_l1`, the sketch-to-l1 scale factor.
    sketch_scale: f64,
    /// The full construction configuration, kept so [`SearchEngine::rebuild`]
    /// preserves every knob (not just the ones it re-specifies).
    config: EngineConfig,
    /// When set, queries are timed per stage, metrics are recorded into
    /// the registry, and responses carry a [`QueryTrace`].
    telemetry: Option<Arc<MetricsRegistry>>,
    /// The object maps and sketch index, behind the layout seam.
    storage: Box<dyn IndexStorage>,
}

impl SearchEngine {
    /// Starts an [`EngineBuilder`] with the conventional configuration.
    pub fn builder(sketch: SketchParams, seed: u64) -> EngineBuilder {
        EngineBuilder::new(sketch, seed)
    }

    /// Creates an empty engine from a configuration.
    #[deprecated(since = "0.2.0", note = "use SearchEngine::builder or EngineBuilder")]
    pub fn new(config: EngineConfig) -> Self {
        EngineBuilder::from_config(config)
            .build()
            .expect("valid sketch params imply valid engine")
    }

    /// The engine's sketch construction unit.
    pub fn sketch_builder(&self) -> &SketchBuilder {
        &self.builder
    }

    /// The engine's full construction configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The engine's index storage layout.
    pub fn index_layout(&self) -> IndexLayout {
        self.storage.layout()
    }

    /// The engine's parallelism setting.
    pub fn parallelism(&self) -> Parallelism {
        self.config.parallelism
    }

    /// Changes the parallelism setting. Affects only wall-clock time:
    /// results are bit-identical across settings.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.config.parallelism = parallelism;
    }

    /// The engine's filtering strategy.
    pub fn filter_strategy(&self) -> FilterStrategy {
        self.config.filter_strategy
    }

    /// The engine's sketch construction strategy.
    pub fn sketch_strategy(&self) -> SketchStrategy {
        self.builder.strategy()
    }

    /// The sketch strategy as a metric label value.
    fn sketch_strategy_label(&self) -> &'static str {
        match self.builder.strategy() {
            SketchStrategy::Classic => "classic",
            SketchStrategy::OnePass => "one-pass",
        }
    }

    /// Records one ingest batch into the metrics registry: objects
    /// sketched (by strategy), the sketch-stage build timer, and the
    /// most recent objects/sec ingest rate.
    fn record_ingest_metrics(&self, objects: usize, elapsed: Duration) {
        let Some(registry) = &self.telemetry else {
            return;
        };
        let strategy = self.sketch_strategy_label();
        registry.inc_counter(
            "ferret_sketch_objects_total",
            "Objects sketched on the ingest path, by construction strategy.",
            &[("strategy", strategy)],
            objects as u64,
        );
        registry.observe_latency(
            "ferret_sketch_build_seconds",
            "Wall time of the ingest sketch-construction stage, by strategy.",
            &[("strategy", strategy)],
            elapsed,
        );
        let secs = elapsed.as_secs_f64();
        if secs > 0.0 {
            registry
                .gauge(
                    "ferret_sketch_objects_per_sec",
                    "Ingest sketch-construction throughput of the most recent batch.",
                    &[("strategy", strategy)],
                )
                .set((objects as f64 / secs) as i64);
        }
    }

    /// Changes the filtering strategy. Switching away from
    /// [`FilterStrategy::Scan`] builds the multi-index from the stored
    /// sketches; switching to it drops the index. Results are
    /// byte-identical across strategies.
    pub fn set_filter_strategy(&mut self, strategy: FilterStrategy) -> Result<()> {
        self.config.filter_strategy = strategy;
        self.storage
            .set_index_enabled(strategy != FilterStrategy::Scan)
    }

    /// The multi-index over segment sketches, if the monolithic layout
    /// maintains one (`None` for the segmented layout, whose indexes are
    /// per-segment).
    pub fn filter_index(&self) -> Option<&ShardedSketchIndex> {
        self.storage.monolithic_index()
    }

    /// Approximate resident size of the filter index(es), in bytes (0
    /// when the strategy is [`FilterStrategy::Scan`]).
    pub fn filter_index_bytes(&self) -> usize {
        self.storage.index_bytes()
    }

    /// Point-in-time statistics of the storage layout (segment counts,
    /// memtable occupancy, tombstones).
    pub fn storage_stats(&self) -> StorageStats {
        self.storage.stats()
    }

    /// The storage epoch: a monotone counter advancing on every visible
    /// mutation (insert, remove, seal, compaction apply). Equal epochs
    /// imply identical visible state.
    pub fn storage_epoch(&self) -> u64 {
        self.storage.epoch()
    }

    /// Seals the segmented layout's memtable into an immutable segment
    /// (no-op for the monolithic layout or an empty memtable).
    pub fn seal(&mut self) -> Result<()> {
        self.storage.seal()
    }

    /// Runs compaction to quiescence inline: merges small or
    /// removal-heavy segment runs and builds their indexes synchronously.
    /// For the monolithic layout this rebuilds the index in place.
    pub fn compact(&mut self) -> Result<()> {
        self.storage.merge()
    }

    /// Applies any finished background compactions and schedules due
    /// ones, without blocking. Call periodically (the serve scan loop
    /// does) so background merges land even when the write path is idle.
    pub fn maintain(&mut self) -> Result<()> {
        self.storage.maintain()
    }

    /// Attaches durable segment persistence (segmented layout only; the
    /// monolithic layout has no segments and ignores this). The current
    /// sealed segments are checkpointed immediately.
    pub fn attach_segment_persistence(&mut self, store: ferret_store::SegmentStore) -> Result<()> {
        self.storage.attach_persistence(store)
    }

    /// Enables (or disables, with `None`) telemetry collection. When
    /// enabled, every query records per-stage latency histograms and
    /// scan counters into `registry` and returns a [`QueryTrace`] on its
    /// response. Collection never changes query results.
    pub fn set_telemetry(&mut self, registry: Option<Arc<MetricsRegistry>>) {
        self.telemetry = registry;
        self.storage.set_telemetry(self.telemetry.clone());
        // Register the ingest sketch series eagerly so `/metrics` shows
        // them (at zero) even before the first post-enable insert — the
        // initial import typically happens before telemetry is wired up.
        if let Some(registry) = &self.telemetry {
            let strategy = self.sketch_strategy_label();
            registry.counter(
                "ferret_sketch_objects_total",
                "Objects sketched on the ingest path, by construction strategy.",
                &[("strategy", strategy)],
            );
            registry.gauge(
                "ferret_sketch_objects_per_sec",
                "Ingest sketch-construction throughput of the most recent batch.",
                &[("strategy", strategy)],
            );
            // Pushdown counters likewise appear at zero so dashboards can
            // tell "no hybrid queries yet" from "series missing".
            registry.counter(
                "ferret_pushdown_queries_total",
                "Filter-stage queries that carried an attribute candidate set.",
                &[],
            );
            registry.counter(
                "ferret_pushdown_skipped_total",
                "Objects excluded before heap admission by predicate pushdown.",
                &[],
            );
        }
    }

    /// The metrics registry queries record into, if telemetry is on.
    pub fn telemetry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.telemetry.as_ref()
    }

    /// Number of objects stored.
    pub fn len(&self) -> usize {
        self.storage.len()
    }

    /// True if the engine holds no objects.
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty()
    }

    /// True if `id` is stored.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.storage.contains(id)
    }

    /// Object ids in insertion order.
    pub fn ids(&self) -> Vec<ObjectId> {
        self.storage.live_ids()
    }

    /// The original object, if originals are stored.
    pub fn object(&self, id: ObjectId) -> Option<&DataObject> {
        self.storage.object(id)
    }

    /// The sketched form of an object.
    pub fn sketched(&self, id: ObjectId) -> Option<&SketchedObject> {
        self.storage.sketch(id)
    }

    /// Inserts an object: sketches every segment and stores the metadata.
    pub fn insert(&mut self, id: ObjectId, object: DataObject) -> Result<()> {
        if self.storage.contains(id) {
            return Err(CoreError::DuplicateObject(id.0));
        }
        if object.dim() != self.builder.params().dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.builder.params().dim(),
                actual: object.dim(),
            });
        }
        let clock = StageClock::start(self.telemetry.is_some());
        let sketched = self.builder.sketch_object(&object)?;
        if let Some(elapsed) = clock.elapsed() {
            self.record_ingest_metrics(1, elapsed);
        }
        let original = self.config.store_originals.then_some(object);
        self.storage.insert(id, sketched, original)
    }

    /// Inserts a batch of objects, sketching them in parallel according
    /// to the engine's [`Parallelism`] setting.
    ///
    /// The whole batch is validated up front (duplicate ids — against the
    /// store *and* within the batch — and dimension mismatches), so a
    /// failed batch leaves the engine untouched. Insertion order follows
    /// the batch order, and the stored sketches are identical to what
    /// one-by-one [`SearchEngine::insert`] calls would produce.
    pub fn insert_batch(&mut self, items: Vec<(ObjectId, DataObject)>) -> Result<()> {
        let mut batch_ids = HashSet::with_capacity(items.len());
        for (id, object) in &items {
            if self.storage.contains(*id) || !batch_ids.insert(*id) {
                return Err(CoreError::DuplicateObject(id.0));
            }
            if object.dim() != self.builder.params().dim() {
                return Err(CoreError::DimensionMismatch {
                    expected: self.builder.params().dim(),
                    actual: object.dim(),
                });
            }
        }
        let threads = self.config.parallelism.threads_for(items.len());
        let clock = StageClock::start(self.telemetry.is_some());
        let sketched = try_map_chunked(threads, DEFAULT_CHUNK, &items, |_, (_, object)| {
            self.builder.sketch_object(object)
        })?;
        if let Some(elapsed) = clock.elapsed() {
            self.record_ingest_metrics(items.len(), elapsed);
        }
        for ((id, object), so) in items.into_iter().zip(sketched) {
            let original = self.config.store_originals.then_some(object);
            self.storage.insert(id, so, original)?;
        }
        Ok(())
    }

    /// Removes an object; returns `true` if it was present. With the
    /// segmented layout the removal is a tombstone until compaction
    /// reclaims it, which is why this can now report an I/O error (the
    /// tombstone may trigger a persisted compaction apply).
    pub fn remove(&mut self, id: ObjectId) -> Result<bool> {
        self.storage.tombstone(id)
    }

    /// Sketches a query object with the engine's construction unit.
    pub fn sketch_query(&self, query: &DataObject) -> Result<SketchedObject> {
        self.builder.sketch_object(query)
    }

    /// Derives sketch parameters from the stored feature vectors
    /// (per-dimension min/max), keeping `nbits`/`xor_folds` as given.
    /// Requires stored originals and at least one object.
    pub fn derive_sketch_params(&self, nbits: usize, xor_folds: usize) -> Result<SketchParams> {
        if !self.config.store_originals {
            return Err(CoreError::InvalidQuery(
                "engine is sketch-only; cannot derive parameters".into(),
            ));
        }
        let live = self.storage.live_refs();
        let vectors = live
            .iter()
            .filter_map(|(_, _, obj)| *obj)
            .flat_map(|o| o.segments().iter().map(|s| &s.vector));
        SketchParams::from_samples(nbits, xor_folds, vectors)
    }

    /// Rebuilds the engine with new sketch parameters, re-sketching every
    /// stored object (the parameter-tuning loop of paper §4.3). Requires
    /// stored originals.
    pub fn rebuild(&self, sketch: SketchParams, seed: u64) -> Result<SearchEngine> {
        if !self.config.store_originals {
            return Err(CoreError::InvalidQuery(
                "engine is sketch-only; cannot rebuild".into(),
            ));
        }
        // Preserve the *entire* configuration — only the sketch geometry
        // and seed change. (Constructing a fresh config here used to
        // silently reset every knob added after the original fields.)
        let mut config = self.config.clone();
        config.sketch = sketch;
        config.seed = seed;
        // Carry the registry over so a retune does not silently disable
        // telemetry on the replacement engine.
        let mut rebuilt = EngineBuilder::from_config(config)
            .telemetry(self.telemetry.clone())
            .build()?;
        let items: Vec<(ObjectId, DataObject)> = self
            .storage
            .live_refs()
            .into_iter()
            .filter_map(|(id, _, obj)| obj.map(|o| (id, o.clone())))
            .collect();
        rebuilt.insert_batch(items)?;
        // The replacement engine takes over durable segment persistence:
        // its first checkpoint commits a manifest naming only its own
        // segment files, superseding (and garbage-collecting) ours.
        if let Some(store) = self.storage.persistence_handle() {
            rebuilt.attach_segment_persistence(store.clone())?;
        }
        Ok(rebuilt)
    }

    /// Current metadata footprint (for storage-ratio reporting).
    pub fn metadata_footprint(&self) -> MetadataFootprint {
        let mut fp = MetadataFootprint::default();
        let live = self.storage.live_refs();
        for (_, so, _) in &live {
            fp.segments += so.num_segments();
            for s in &so.sketches {
                fp.sketch_bytes += s.len().div_ceil(8);
            }
        }
        if self.config.store_originals {
            for obj in live.iter().filter_map(|(_, _, obj)| *obj) {
                for seg in obj.segments() {
                    fp.feature_vector_bytes += seg.vector.dim() * std::mem::size_of::<f32>();
                }
            }
        } else {
            // Originals not stored: report what they would occupy.
            let dim = self.builder.params().dim();
            fp.feature_vector_bytes = fp.segments * dim * std::mem::size_of::<f32>();
        }
        fp
    }

    /// Rebuilds a query object with overridden segment weights.
    fn apply_weight_override(query: &DataObject, weights: &[f32]) -> Result<DataObject> {
        if weights.len() != query.num_segments() {
            return Err(CoreError::InvalidQuery(format!(
                "weight override has {} entries for {} query segments",
                weights.len(),
                query.num_segments()
            )));
        }
        DataObject::new(
            query
                .segments()
                .iter()
                .zip(weights.iter())
                .map(|(seg, &w)| (seg.vector.clone(), w))
                .collect(),
        )
    }

    /// Answers a similarity query.
    pub fn query(&self, query: &DataObject, options: &QueryOptions) -> Result<QueryResponse> {
        if options.k == 0 {
            return Err(CoreError::InvalidQuery("k must be > 0".into()));
        }
        options.validate_shape()?;
        let reweighted;
        let query = match &options.weight_override {
            Some(weights) => {
                reweighted = Self::apply_weight_override(query, weights)?;
                &reweighted
            }
            None => query,
        };
        let start = Instant::now();
        let mut stats = QueryStats {
            mode: options.mode,
            objects_scanned: 0,
            segments_scanned: 0,
            distance_evals: 0,
            elapsed: Duration::ZERO,
        };
        let mut trace = self.telemetry.is_some().then(QueryTrace::default);
        let mut results = match options.mode {
            QueryMode::BruteForceOriginal => {
                self.query_brute_original(query, options, &mut stats, &mut trace)?
            }
            QueryMode::BruteForceSketch => {
                self.query_brute_sketch(query, options, &mut stats, &mut trace)?
            }
            QueryMode::Filtering => self.query_filtering(query, options, &mut stats, &mut trace)?,
        };
        options.apply_shape(&mut results);
        stats.elapsed = start.elapsed();
        self.finish_trace(&mut trace, &stats, results.len());
        Ok(QueryResponse {
            results,
            stats,
            trace,
        })
    }

    /// Fills the cross-stage fields of a trace and records the query's
    /// metrics into the registry.
    fn finish_trace(&self, trace: &mut Option<QueryTrace>, stats: &QueryStats, results: usize) {
        let Some(t) = trace.as_mut() else {
            return;
        };
        t.mode = stats.mode.to_string();
        t.total = stats.elapsed;
        t.objects_scanned = stats.objects_scanned;
        t.segments_scanned = stats.segments_scanned;
        t.distance_evals = stats.distance_evals;
        t.results = results;
        if t.sketch.is_some() {
            t.sketch_strategy = Some(self.sketch_strategy_label().to_string());
        }
        if let Some(registry) = &self.telemetry {
            Self::record_query_metrics(registry, t);
        }
    }

    /// Records one traced query into the metrics registry: per-mode
    /// query counts and latency, per-stage latency histograms, and scan
    /// volume counters.
    fn record_query_metrics(registry: &MetricsRegistry, trace: &QueryTrace) {
        let mode = trace.mode.as_str();
        registry.inc_counter(
            "ferret_queries_total",
            "Similarity queries answered, by traversal mode.",
            &[("mode", mode)],
            1,
        );
        registry.observe_latency(
            "ferret_query_seconds",
            "End-to-end query latency.",
            &[("mode", mode)],
            trace.total,
        );
        if let Some(st) = &trace.rank {
            registry.observe_latency(
                "ferret_query_stage_seconds",
                "Per-stage query latency (sketch, filter scan, EMD rank).",
                &[("stage", "rank"), ("mode", mode)],
                st.duration,
            );
        }
        if let Some(st) = &trace.sketch {
            // The sketch stage carries which construction strategy built the
            // query sketch: "classic" or "one-pass".
            let strategy = trace.sketch_strategy.as_deref().unwrap_or("classic");
            registry.observe_latency(
                "ferret_query_stage_seconds",
                "Per-stage query latency (sketch, filter scan, EMD rank).",
                &[("stage", "sketch"), ("mode", mode), ("strategy", strategy)],
                st.duration,
            );
        }
        if let Some(st) = &trace.filter {
            // The filter stage additionally carries which execution path
            // ran: "scan", "indexed", or "indexed-fallback".
            let strategy = trace.filter_strategy.as_deref().unwrap_or("scan");
            registry.observe_latency(
                "ferret_query_stage_seconds",
                "Per-stage query latency (sketch, filter scan, EMD rank).",
                &[("stage", "filter"), ("mode", mode), ("strategy", strategy)],
                st.duration,
            );
        }
        registry.inc_counter(
            "ferret_query_objects_scanned_total",
            "Objects visited while scanning.",
            &[("mode", mode)],
            trace.objects_scanned as u64,
        );
        registry.inc_counter(
            "ferret_query_segments_scanned_total",
            "Segment sketches compared during filtering.",
            &[("mode", mode)],
            trace.segments_scanned as u64,
        );
        registry.inc_counter(
            "ferret_query_distance_evals_total",
            "Object-distance evaluations in the ranking stage.",
            &[("mode", mode)],
            trace.distance_evals as u64,
        );
        registry
            .histogram(
                "ferret_query_candidates",
                "Candidate-set size entering the ranking stage.",
                &[("mode", mode)],
                &SIZE_BUCKETS,
                crate::telemetry::Unit::Raw,
            )
            .observe(trace.candidates as u64);
    }

    /// Answers a query using a stored object as the seed
    /// ("similarity search requires a seed or initial query object", §4.1.2).
    pub fn query_by_id(&self, id: ObjectId, options: &QueryOptions) -> Result<QueryResponse> {
        match options.mode {
            QueryMode::BruteForceSketch => {
                options.validate_shape()?;
                // Sketch-only queries can be seeded without originals.
                let mut seed = self
                    .storage
                    .sketch(id)
                    .ok_or(CoreError::UnknownObject(id.0))?
                    .clone();
                if let Some(weights) = &options.weight_override {
                    if weights.len() != seed.num_segments() {
                        return Err(CoreError::InvalidQuery(format!(
                            "weight override has {} entries for {} query segments",
                            weights.len(),
                            seed.num_segments()
                        )));
                    }
                    let sum: f32 = weights.iter().sum();
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(CoreError::InvalidQuery(
                            "weight override sums to zero".into(),
                        ));
                    }
                    seed.weights = weights.iter().map(|w| w / sum).collect();
                }
                let start = Instant::now();
                let mut stats = QueryStats {
                    mode: options.mode,
                    objects_scanned: 0,
                    segments_scanned: 0,
                    distance_evals: 0,
                    elapsed: Duration::ZERO,
                };
                let mut trace = self.telemetry.is_some().then(QueryTrace::default);
                let mut results =
                    self.rank_all_by_sketch(&seed, options, &mut stats, &mut trace)?;
                options.apply_shape(&mut results);
                stats.elapsed = start.elapsed();
                self.finish_trace(&mut trace, &stats, results.len());
                Ok(QueryResponse {
                    results,
                    stats,
                    trace,
                })
            }
            _ => {
                let seed = self
                    .storage
                    .object(id)
                    .ok_or(CoreError::UnknownObject(id.0))?
                    .clone();
                self.query(&seed, options)
            }
        }
    }

    fn allowed(&self, id: ObjectId, options: &QueryOptions) -> bool {
        options
            .restrict
            .as_ref()
            .is_none_or(|set| set.contains(&id))
    }

    fn object_distance_original(&self) -> Result<Box<dyn ObjectDistance + '_>> {
        let ground = Arc::clone(&self.config.seg_distance);
        Ok(match &self.config.ranking {
            RankingMethod::Emd => Box::new(Emd::new(ground)),
            RankingMethod::ThresholdedEmd { tau, sqrt_weights } => {
                Box::new(ThresholdedEmd::new(ground, *tau, *sqrt_weights))
            }
            RankingMethod::GreedyEmd => Box::new(GreedyEmd::new(ground)),
            RankingMethod::Custom(d) => Box::new(Arc::clone(d)),
        })
    }

    fn query_brute_original(
        &self,
        query: &DataObject,
        options: &QueryOptions,
        stats: &mut QueryStats,
        trace: &mut Option<QueryTrace>,
    ) -> Result<Vec<SearchResult>> {
        if !self.config.store_originals {
            return Err(CoreError::InvalidQuery(
                "engine is sketch-only; BruteForceOriginal unavailable".into(),
            ));
        }
        let dist = self.object_distance_original()?;
        let live = self.storage.live_refs();
        let collected: Vec<(ObjectId, &DataObject)> = live
            .iter()
            .filter_map(|&(id, _, obj)| {
                if !self.allowed(id, options) {
                    return None;
                }
                obj.map(|o| (id, o))
            })
            .collect();
        stats.objects_scanned = collected.len();
        stats.distance_evals = collected.len();
        let threads = self.config.parallelism.threads_for(collected.len());
        let clock = StageClock::start(trace.is_some());
        let ranked = rank_candidates_parallel(query, &collected, dist.as_ref(), options.k, threads);
        if let (Some(t), Some(elapsed)) = (trace.as_mut(), clock.elapsed()) {
            t.candidates = collected.len();
            t.rank = Some(StageTrace {
                duration: elapsed,
                threads,
            });
        }
        ranked
    }

    /// Object distance between two sketched objects: EMD over scaled
    /// Hamming ground distances (the sketch estimate of the segment ℓ₁).
    pub fn sketched_object_distance(&self, a: &SketchedObject, b: &SketchedObject) -> Result<f64> {
        let scale = self.sketch_scale;
        let ground =
            |i: usize, j: usize| f64::from(a.sketches[i].hamming_unchecked(&b.sketches[j])) * scale;
        // Single-segment objects: the object distance is the (scaled,
        // possibly thresholded) segment Hamming distance; skip the solver.
        if a.num_segments() == 1 && b.num_segments() == 1 {
            return match &self.config.ranking {
                RankingMethod::Emd | RankingMethod::GreedyEmd => Ok(ground(0, 0)),
                RankingMethod::ThresholdedEmd { tau, .. } => Ok(ground(0, 0).min(*tau)),
                RankingMethod::Custom(_) => Err(CoreError::InvalidQuery(
                    "custom object distance cannot rank sketches".into(),
                )),
            };
        }
        match &self.config.ranking {
            RankingMethod::Emd => emd_with_costs(&a.weights, &b.weights, ground),
            RankingMethod::ThresholdedEmd { tau, sqrt_weights } => {
                let wa = transform_weights(&a.weights, *sqrt_weights);
                let wb = transform_weights(&b.weights, *sqrt_weights);
                emd_with_costs(&wa, &wb, |i, j| ground(i, j).min(*tau))
            }
            RankingMethod::GreedyEmd => greedy_emd_with_costs(&a.weights, &b.weights, ground),
            RankingMethod::Custom(_) => Err(CoreError::InvalidQuery(
                "custom object distance cannot rank sketches".into(),
            )),
        }
    }

    fn rank_all_by_sketch(
        &self,
        query: &SketchedObject,
        options: &QueryOptions,
        stats: &mut QueryStats,
        trace: &mut Option<QueryTrace>,
    ) -> Result<Vec<SearchResult>> {
        // Sketch lengths must match the engine's.
        for s in &query.sketches {
            if s.len() != self.builder.nbits() {
                return Err(CoreError::SketchLengthMismatch {
                    left: s.len(),
                    right: self.builder.nbits(),
                });
            }
        }
        let live = self.storage.live_refs();
        let cands: Vec<(ObjectId, &SketchedObject)> = live
            .iter()
            .filter_map(|&(id, so, _)| {
                if !self.allowed(id, options) {
                    return None;
                }
                Some((id, so))
            })
            .collect();
        stats.objects_scanned = cands.len();
        stats.distance_evals = cands.len();
        let threads = self.config.parallelism.threads_for(cands.len());
        let clock = StageClock::start(trace.is_some());
        let scored = try_map_chunked(threads, DEFAULT_CHUNK, &cands, |_, &(id, so)| {
            let d = self.sketched_object_distance(query, so)?;
            Ok(SearchResult { id, distance: d })
        })?;
        if let (Some(t), Some(elapsed)) = (trace.as_mut(), clock.elapsed()) {
            t.candidates = cands.len();
            t.rank = Some(StageTrace {
                duration: elapsed,
                threads,
            });
        }
        Ok(rank_scores(scored, options.k))
    }

    fn query_brute_sketch(
        &self,
        query: &DataObject,
        options: &QueryOptions,
        stats: &mut QueryStats,
        trace: &mut Option<QueryTrace>,
    ) -> Result<Vec<SearchResult>> {
        let clock = StageClock::start(trace.is_some());
        let qs = self.builder.sketch_object(query)?;
        if let (Some(t), Some(elapsed)) = (trace.as_mut(), clock.elapsed()) {
            t.sketch = Some(StageTrace {
                duration: elapsed,
                threads: 1,
            });
        }
        self.rank_all_by_sketch(&qs, options, stats, trace)
    }

    fn query_filtering(
        &self,
        query: &DataObject,
        options: &QueryOptions,
        stats: &mut QueryStats,
        trace: &mut Option<QueryTrace>,
    ) -> Result<Vec<SearchResult>> {
        let clock = StageClock::start(trace.is_some());
        let qs = self.builder.sketch_object(query)?;
        if let (Some(t), Some(elapsed)) = (trace.as_mut(), clock.elapsed()) {
            t.sketch = Some(StageTrace {
                duration: elapsed,
                threads: 1,
            });
        }
        // Strategy dispatch: `Indexed` always probes (and falls back to a
        // scan when the probe cannot prove exactness); `Auto` probes only
        // when the corpus is large, at least one indexed segment exists,
        // and the thresholds make a fallback impossible, so it never pays
        // for a wasted probe.
        let probe_set = match self.config.filter_strategy {
            FilterStrategy::Scan => None,
            FilterStrategy::Indexed => self.storage.probe_set(),
            FilterStrategy::Auto => self.storage.probe_set().filter(|ps| {
                self.len() >= AUTO_INDEX_MIN_OBJECTS
                    && ps
                        .exact_radius()
                        .is_some_and(|r| options.filter.guarantees_exact_probe(&qs, r))
            }),
        };
        let clock = StageClock::start(trace.is_some());
        let mut strategy = "scan";
        let mut probe_stats: Option<ProbeStats> = None;
        let mut filter_threads = 0usize;
        let live = self.storage.live_refs();
        let scan_fallback = |threads_out: &mut usize| -> Result<(
            HashSet<ObjectId>,
            FilterStats,
            Vec<FilterStats>,
        )> {
            let dataset: Vec<(ObjectId, &SketchedObject)> = live
                .iter()
                .filter_map(|&(id, so, _)| {
                    if !self.allowed(id, options) {
                        return None;
                    }
                    Some((id, so))
                })
                .collect();
            let threads = self.config.parallelism.threads_for(dataset.len());
            *threads_out = threads;
            filter_candidates_sharded_traced(&qs, &dataset, &options.filter, threads)
        };
        let (candidates, fstats, shard_stats): (_, FilterStats, Vec<FilterStats>) = match probe_set
        {
            Some(ps) => {
                let shard_count: usize = ps.parts.iter().map(|p| p.index.num_shards()).sum();
                let threads = self.config.parallelism.threads_for(shard_count.max(1));
                filter_threads = threads;
                match filter_candidates_indexed_multi(
                    &qs,
                    &ps.parts,
                    &ps.extras,
                    &options.filter,
                    options.restrict.as_ref(),
                    threads,
                )? {
                    IndexedFilterOutcome::Exact {
                        candidates,
                        stats,
                        probe,
                    } => {
                        strategy = "indexed";
                        probe_stats = Some(probe);
                        (candidates, stats, Vec::new())
                    }
                    IndexedFilterOutcome::Fallback { probe } => {
                        strategy = "indexed-fallback";
                        probe_stats = Some(probe);
                        scan_fallback(&mut filter_threads)?
                    }
                }
            }
            None => scan_fallback(&mut filter_threads)?,
        };
        if let (Some(t), Some(elapsed)) = (trace.as_mut(), clock.elapsed()) {
            t.filter = Some(StageTrace {
                duration: elapsed,
                threads: filter_threads,
            });
            t.filter_strategy = Some(strategy.to_string());
            t.shards = shard_stats
                .iter()
                .map(|s| ShardTrace {
                    objects_scanned: s.objects_scanned,
                    segments_scanned: s.segments_scanned,
                })
                .collect();
            t.candidates = candidates.len();
        }
        if let (Some(registry), Some(probe)) = (&self.telemetry, &probe_stats) {
            registry.inc_counter(
                "ferret_filter_buckets_pruned_total",
                "Index buckets skipped because their block value differed from the query's.",
                &[],
                probe.buckets_pruned as u64,
            );
            registry.inc_counter(
                "ferret_filter_restrict_pruned_total",
                "Index entries skipped inside the probe because the attribute \
                 candidate set excluded them.",
                &[],
                probe.restrict_pruned as u64,
            );
        }
        if let (Some(registry), Some(allowed)) = (&self.telemetry, &options.restrict) {
            // Predicate pushdown: count queries that carried a candidate
            // set and how many corpus objects it let the filter skip.
            registry.inc_counter(
                "ferret_pushdown_queries_total",
                "Filter-stage queries that carried an attribute candidate set.",
                &[],
                1,
            );
            let skipped = live
                .iter()
                .filter(|(id, _, _)| !allowed.contains(id))
                .count();
            registry.inc_counter(
                "ferret_pushdown_skipped_total",
                "Objects excluded before heap admission by predicate pushdown.",
                &[],
                skipped as u64,
            );
        }
        stats.objects_scanned = fstats.objects_scanned;
        stats.segments_scanned = fstats.segments_scanned;
        stats.distance_evals = candidates.len();

        // Deterministic ranking order.
        let mut cand_ids: Vec<ObjectId> = candidates.into_iter().collect();
        cand_ids.sort();
        let rank_threads = self.config.parallelism.threads_for(cand_ids.len());
        let clock = StageClock::start(trace.is_some());
        let ranked = if self.config.store_originals {
            let dist = self.object_distance_original()?;
            let cands: Vec<(ObjectId, &DataObject)> = cand_ids
                .iter()
                .filter_map(|&id| self.storage.object(id).map(|o| (id, o)))
                .collect();
            rank_candidates_parallel(query, &cands, dist.as_ref(), options.k, rank_threads)
        } else {
            // Sketch-only engine: rank candidates by sketch distance.
            let cands: Vec<(ObjectId, &SketchedObject)> = cand_ids
                .iter()
                .filter_map(|&id| self.storage.sketch(id).map(|so| (id, so)))
                .collect();
            let scored = try_map_chunked(rank_threads, DEFAULT_CHUNK, &cands, |_, &(id, so)| {
                let d = self.sketched_object_distance(&qs, so)?;
                Ok(SearchResult { id, distance: d })
            })?;
            Ok(rank_scores(scored, options.k))
        };
        if let (Some(t), Some(elapsed)) = (trace.as_mut(), clock.elapsed()) {
            t.rank = Some(StageTrace {
                duration: elapsed,
                threads: rank_threads,
            });
        }
        ranked
    }
}

fn transform_weights(weights: &[f32], sqrt: bool) -> Vec<f32> {
    if !sqrt {
        return weights.to_vec();
    }
    let sqrted: Vec<f64> = weights.iter().map(|&w| f64::from(w).sqrt()).collect();
    let sum: f64 = sqrted.iter().sum();
    if sum <= 0.0 {
        return weights.to_vec();
    }
    sqrted.into_iter().map(|w| (w / sum) as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::FeatureVector;

    fn params(nbits: usize, d: usize) -> SketchParams {
        SketchParams::new(nbits, vec![0.0; d], vec![1.0; d]).unwrap()
    }

    fn obj(parts: &[(&[f32], f32)]) -> DataObject {
        DataObject::new(
            parts
                .iter()
                .map(|(c, w)| (FeatureVector::new(c.to_vec()).unwrap(), *w))
                .collect(),
        )
        .unwrap()
    }

    fn engine(nbits: usize, d: usize) -> SearchEngine {
        SearchEngine::builder(params(nbits, d), 42).build().unwrap()
    }

    #[test]
    fn fusion_mode_parse_roundtrip() {
        for mode in [
            FusionMode::None,
            FusionMode::Rrf {
                k: FusionMode::DEFAULT_RRF_K,
            },
            FusionMode::Weighted {
                attr_weight: FusionMode::DEFAULT_ATTR_WEIGHT,
            },
        ] {
            assert_eq!(mode.to_string().parse::<FusionMode>().unwrap(), mode);
        }
        // Parsing always yields the documented default parameters.
        assert_eq!(
            "rrf".parse::<FusionMode>().unwrap(),
            FusionMode::Rrf { k: 60 }
        );
        for bad in ["", "RRF", "blend", "none "] {
            assert!(
                bad.parse::<FusionMode>().is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    /// A small clustered dataset: ids 0..3 near the query, 4..9 far away.
    fn clustered_engine() -> (SearchEngine, DataObject) {
        let mut e = engine(256, 4);
        let query = obj(&[(&[0.1, 0.1, 0.1, 0.1], 0.5), (&[0.2, 0.2, 0.2, 0.2], 0.5)]);
        for i in 0..4u64 {
            let eps = i as f32 * 0.01;
            e.insert(
                ObjectId(i),
                obj(&[
                    (&[0.1 + eps, 0.1, 0.1, 0.1], 0.5),
                    (&[0.2, 0.2 + eps, 0.2, 0.2], 0.5),
                ]),
            )
            .unwrap();
        }
        for i in 4..10u64 {
            let base = 0.6 + (i as f32 - 4.0) * 0.05;
            e.insert(
                ObjectId(i),
                obj(&[
                    (&[base, base, base, base], 0.5),
                    (&[0.9, 0.9, 0.9, base], 0.5),
                ]),
            )
            .unwrap();
        }
        (e, query)
    }

    #[test]
    fn insert_and_lookup() {
        let mut e = engine(64, 2);
        let o = obj(&[(&[0.5, 0.5], 1.0)]);
        e.insert(ObjectId(1), o.clone()).unwrap();
        assert_eq!(e.len(), 1);
        assert!(e.contains(ObjectId(1)));
        assert_eq!(e.object(ObjectId(1)), Some(&o));
        assert!(e.sketched(ObjectId(1)).is_some());
        assert_eq!(e.ids(), &[ObjectId(1)]);
    }

    #[test]
    fn insert_rejects_duplicates_and_bad_dims() {
        let mut e = engine(64, 2);
        e.insert(ObjectId(1), obj(&[(&[0.5, 0.5], 1.0)])).unwrap();
        assert!(matches!(
            e.insert(ObjectId(1), obj(&[(&[0.4, 0.4], 1.0)])),
            Err(CoreError::DuplicateObject(1))
        ));
        assert!(matches!(
            e.insert(ObjectId(2), obj(&[(&[0.5], 1.0)])),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn remove_works() {
        let mut e = engine(64, 2);
        e.insert(ObjectId(1), obj(&[(&[0.5, 0.5], 1.0)])).unwrap();
        assert!(e.remove(ObjectId(1)).unwrap());
        assert!(!e.remove(ObjectId(1)).unwrap());
        assert!(e.is_empty());
    }

    #[test]
    fn brute_force_original_finds_nearest() {
        let (e, q) = clustered_engine();
        let resp = e.query(&q, &QueryOptions::brute_force(4)).unwrap();
        let ids: HashSet<u64> = resp.results.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, HashSet::from([0, 1, 2, 3]));
        assert_eq!(resp.stats.distance_evals, 10);
        assert_eq!(resp.stats.mode, QueryMode::BruteForceOriginal);
    }

    #[test]
    fn brute_force_sketch_finds_nearest() {
        let (e, q) = clustered_engine();
        let resp = e.query(&q, &QueryOptions::brute_force_sketch(4)).unwrap();
        let ids: HashSet<u64> = resp.results.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, HashSet::from([0, 1, 2, 3]));
    }

    #[test]
    fn filtering_finds_nearest() {
        let (e, q) = clustered_engine();
        let opts = QueryOptions::filtering(
            4,
            FilterParams {
                query_segments: 2,
                candidates_per_segment: 4,
                ..FilterParams::default()
            },
        );
        let resp = e.query(&q, &opts).unwrap();
        let ids: HashSet<u64> = resp.results.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, HashSet::from([0, 1, 2, 3]));
        // Filtering must not rank everything.
        assert!(resp.stats.distance_evals < 10);
        assert!(resp.stats.segments_scanned > 0);
    }

    #[test]
    fn restrict_limits_search() {
        let (e, q) = clustered_engine();
        let mut opts = QueryOptions::brute_force(10);
        opts.restrict = Some(HashSet::from([ObjectId(5), ObjectId(6)]));
        let resp = e.query(&q, &opts).unwrap();
        let ids: HashSet<u64> = resp.results.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, HashSet::from([5, 6]));
    }

    #[test]
    fn query_by_id_uses_seed_object() {
        let (e, _) = clustered_engine();
        let resp = e
            .query_by_id(ObjectId(0), &QueryOptions::brute_force(1))
            .unwrap();
        // The seed itself is its own nearest neighbor.
        assert_eq!(resp.results[0].id, ObjectId(0));
        assert!(resp.results[0].distance < 1e-9);
        assert!(e
            .query_by_id(ObjectId(99), &QueryOptions::brute_force(1))
            .is_err());
    }

    #[test]
    fn sketch_only_engine_rejects_brute_original() {
        let mut cfg = EngineConfig::basic(params(128, 2), 1);
        cfg.store_originals = false;
        let mut e = EngineBuilder::from_config(cfg).build().unwrap();
        e.insert(ObjectId(1), obj(&[(&[0.2, 0.2], 1.0)])).unwrap();
        assert!(e.object(ObjectId(1)).is_none());
        let q = obj(&[(&[0.2, 0.2], 1.0)]);
        assert!(e.query(&q, &QueryOptions::brute_force(1)).is_err());
        // Sketch and filtering modes still work.
        assert!(e.query(&q, &QueryOptions::brute_force_sketch(1)).is_ok());
        let resp = e
            .query(&q, &QueryOptions::filtering(1, FilterParams::default()))
            .unwrap();
        assert_eq!(resp.results.len(), 1);
    }

    #[test]
    fn k_zero_is_invalid() {
        let (e, q) = clustered_engine();
        let opts = QueryOptions {
            k: 0,
            ..QueryOptions::default()
        };
        assert!(e.query(&q, &opts).is_err());
    }

    #[test]
    fn insert_batch_matches_serial_insert_and_is_atomic() {
        let mut serial = engine(128, 2);
        let mut batched = engine(128, 2);
        let items: Vec<(ObjectId, DataObject)> = (0..20u64)
            .map(|i| {
                let x = i as f32 / 20.0;
                (ObjectId(i), obj(&[(&[x, 1.0 - x], 1.0), (&[0.5, x], 2.0)]))
            })
            .collect();
        for (id, o) in items.clone() {
            serial.insert(id, o).unwrap();
        }
        batched.set_parallelism(Parallelism::Threads(3));
        batched.insert_batch(items).unwrap();
        assert_eq!(serial.ids(), batched.ids());
        for id in serial.ids() {
            assert_eq!(serial.sketched(id), batched.sketched(id), "{id:?}");
            assert_eq!(serial.object(id), batched.object(id));
        }
        // A duplicate anywhere in the batch rejects the whole batch.
        let before = batched.len();
        let bad = vec![
            (ObjectId(100), obj(&[(&[0.3, 0.3], 1.0)])),
            (ObjectId(5), obj(&[(&[0.4, 0.4], 1.0)])),
        ];
        assert!(matches!(
            batched.insert_batch(bad),
            Err(CoreError::DuplicateObject(5))
        ));
        assert_eq!(batched.len(), before);
        assert!(!batched.contains(ObjectId(100)));
        // Duplicates within the batch itself are also rejected.
        let twice = vec![
            (ObjectId(200), obj(&[(&[0.3, 0.3], 1.0)])),
            (ObjectId(200), obj(&[(&[0.4, 0.4], 1.0)])),
        ];
        assert!(batched.insert_batch(twice).is_err());
        assert!(!batched.contains(ObjectId(200)));
    }

    #[test]
    fn queries_identical_across_parallelism_settings() {
        let (mut e, q) = clustered_engine();
        let opts = [
            QueryOptions::brute_force(5),
            QueryOptions::brute_force_sketch(5),
            QueryOptions::filtering(
                5,
                FilterParams {
                    query_segments: 2,
                    candidates_per_segment: 4,
                    ..FilterParams::default()
                },
            ),
        ];
        e.set_parallelism(Parallelism::Serial);
        let baselines: Vec<_> = opts.iter().map(|o| e.query(&q, o).unwrap()).collect();
        for p in [
            Parallelism::Threads(2),
            Parallelism::Threads(7),
            Parallelism::Auto,
        ] {
            e.set_parallelism(p);
            assert_eq!(e.parallelism(), p);
            for (o, base) in opts.iter().zip(baselines.iter()) {
                let resp = e.query(&q, o).unwrap();
                assert_eq!(resp.results, base.results, "{p} {:?}", o.mode);
                assert_eq!(resp.stats.objects_scanned, base.stats.objects_scanned);
                assert_eq!(resp.stats.segments_scanned, base.stats.segments_scanned);
                assert_eq!(resp.stats.distance_evals, base.stats.distance_evals);
            }
        }
    }

    #[test]
    fn metadata_footprint_reports_ratio() {
        let (e, _) = clustered_engine();
        let fp = e.metadata_footprint();
        assert_eq!(fp.segments, 20);
        // 4 dims * 4 bytes = 16 bytes per vector; 256-bit sketch = 32 bytes.
        assert_eq!(fp.feature_vector_bytes, 20 * 16);
        assert_eq!(fp.sketch_bytes, 20 * 32);
        assert!((fp.ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn thresholded_ranking_works_in_all_modes() {
        let mut cfg = EngineConfig::basic(params(256, 4), 3);
        cfg.ranking = RankingMethod::ThresholdedEmd {
            tau: 0.5,
            sqrt_weights: true,
        };
        let mut e = EngineBuilder::from_config(cfg).build().unwrap();
        for i in 0..5u64 {
            let x = i as f32 * 0.2;
            e.insert(ObjectId(i), obj(&[(&[x, x, x, x], 1.0)])).unwrap();
        }
        let q = obj(&[(&[0.0, 0.0, 0.0, 0.0], 1.0)]);
        for mode in [
            QueryMode::BruteForceOriginal,
            QueryMode::BruteForceSketch,
            QueryMode::Filtering,
        ] {
            let opts = QueryOptions {
                mode,
                k: 1,
                ..QueryOptions::default()
            };
            let resp = e.query(&q, &opts).unwrap();
            assert_eq!(resp.results[0].id, ObjectId(0), "mode {mode}");
        }
    }

    #[test]
    fn custom_ranking_rejected_for_sketch_mode() {
        let mut cfg = EngineConfig::basic(params(64, 2), 1);
        cfg.ranking = RankingMethod::Custom(Arc::new(Emd::new(crate::distance::lp::L2)));
        let mut e = EngineBuilder::from_config(cfg).build().unwrap();
        e.insert(ObjectId(1), obj(&[(&[0.5, 0.5], 1.0)])).unwrap();
        let q = obj(&[(&[0.5, 0.5], 1.0)]);
        assert!(e.query(&q, &QueryOptions::brute_force_sketch(1)).is_err());
        assert!(e.query(&q, &QueryOptions::brute_force(1)).is_ok());
    }

    #[test]
    fn derive_and_rebuild() {
        let (e, q) = clustered_engine();
        let derived = e.derive_sketch_params(512, 2).unwrap();
        assert_eq!(derived.dim(), 4);
        assert!(derived
            .mins
            .iter()
            .zip(derived.maxs.iter())
            .all(|(a, b)| a < b));
        let rebuilt = e.rebuild(derived, 99).unwrap();
        assert_eq!(rebuilt.len(), e.len());
        // Data-derived ranges keep retrieval working.
        let resp = rebuilt
            .query(&q, &QueryOptions::brute_force_sketch(4))
            .unwrap();
        let ids: HashSet<u64> = resp.results.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, HashSet::from([0, 1, 2, 3]));
        // Sketch-only engines cannot rebuild.
        let mut cfg = EngineConfig::basic(params(64, 2), 1);
        cfg.store_originals = false;
        let sk = EngineBuilder::from_config(cfg).build().unwrap();
        assert!(sk.derive_sketch_params(64, 1).is_err());
        assert!(sk.rebuild(params(64, 2), 0).is_err());
    }

    #[test]
    fn weight_override_changes_ranking() {
        // Two stored objects match the query's two segments respectively;
        // shifting the query weights flips which one ranks first.
        let mut e = engine(512, 2);
        e.insert(ObjectId(1), obj(&[(&[0.1, 0.1], 1.0)])).unwrap();
        e.insert(ObjectId(2), obj(&[(&[0.9, 0.9], 1.0)])).unwrap();
        let q = obj(&[(&[0.1, 0.1], 0.5), (&[0.9, 0.9], 0.5)]);
        let mut opts = QueryOptions::brute_force(1);
        opts.weight_override = Some(vec![1.0, 0.0]);
        let resp = e.query(&q, &opts).unwrap();
        assert_eq!(resp.results[0].id, ObjectId(1));
        opts.weight_override = Some(vec![0.0, 1.0]);
        let resp = e.query(&q, &opts).unwrap();
        assert_eq!(resp.results[0].id, ObjectId(2));
        // Mismatched length is rejected.
        opts.weight_override = Some(vec![1.0]);
        assert!(e.query(&q, &opts).is_err());
    }

    #[test]
    fn weight_override_in_sketch_seeded_query() {
        let mut e = engine(512, 2);
        e.insert(ObjectId(0), obj(&[(&[0.1, 0.1], 0.5), (&[0.9, 0.9], 0.5)]))
            .unwrap();
        e.insert(ObjectId(1), obj(&[(&[0.1, 0.1], 1.0)])).unwrap();
        e.insert(ObjectId(2), obj(&[(&[0.9, 0.9], 1.0)])).unwrap();
        let mut opts = QueryOptions::brute_force_sketch(2);
        opts.weight_override = Some(vec![1.0, 0.0]);
        let resp = e.query_by_id(ObjectId(0), &opts).unwrap();
        let top_non_self = resp.results.iter().find(|r| r.id != ObjectId(0)).unwrap();
        assert_eq!(top_non_self.id, ObjectId(1));
        opts.weight_override = Some(vec![0.0, 0.0]);
        assert!(e.query_by_id(ObjectId(0), &opts).is_err());
        opts.weight_override = Some(vec![1.0]);
        assert!(e.query_by_id(ObjectId(0), &opts).is_err());
    }

    #[test]
    fn sketch_distance_scaling_tracks_l1() {
        // With many bits, the sketched object distance should approximate
        // the true EMD/l1 distance reasonably well.
        let mut e = SearchEngine::builder(params(4096, 4), 9).build().unwrap();
        let a = obj(&[(&[0.2, 0.2, 0.2, 0.2], 1.0)]);
        let b = obj(&[(&[0.4, 0.4, 0.4, 0.4], 1.0)]);
        e.insert(ObjectId(1), b.clone()).unwrap();
        let sa = e.sketch_query(&a).unwrap();
        let sb = e.sketch_query(&b).unwrap();
        let est = e.sketched_object_distance(&sa, &sb).unwrap();
        // True l1 distance is 0.8.
        assert!((est - 0.8).abs() < 0.15, "estimate {est}");
    }
}
