//! The filtering unit: fast candidate-set generation from sketches.
//!
//! Filtering implements the first of the two query steps (paper §4.1.1):
//! given a query object `Q`, select its `r` highest-weight segments; stream
//! through all segment sketches in the dataset and, for each selected query
//! segment `Q_i`, find the `k` nearest dataset segments by Hamming distance,
//! keeping only those within a distance threshold that *decreases* with
//! `w(Q_i)` (heavier query segments demand closer matches). Every object
//! owning at least one such close segment enters the candidate set.

use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::error::{CoreError, Result};
use crate::object::ObjectId;
use crate::sketch::{ShardedSketchIndex, SketchIndex, SketchedObject};

/// Which execution path the engine's filtering stage uses.
///
/// Every strategy returns byte-identical candidate sets: `Indexed` probes
/// the multi-index and *proves* per query that the probe saw every segment
/// the scan would have kept (see [`filter_candidates_indexed`]), falling
/// back to the full scan when it cannot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FilterStrategy {
    /// Always stream every stored segment sketch (the paper's behaviour).
    Scan,
    /// Always probe the multi-index first; scan only on fallback.
    Indexed,
    /// Probe the index when the corpus is large enough and the effective
    /// per-segment thresholds ([`FilterParams::threshold_for_weight`])
    /// statically guarantee an exact probe; otherwise scan.
    #[default]
    Auto,
}

impl std::fmt::Display for FilterStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FilterStrategy::Scan => "scan",
            FilterStrategy::Indexed => "indexed",
            FilterStrategy::Auto => "auto",
        })
    }
}

impl std::str::FromStr for FilterStrategy {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "scan" => Ok(FilterStrategy::Scan),
            "indexed" => Ok(FilterStrategy::Indexed),
            "auto" => Ok(FilterStrategy::Auto),
            other => Err(CoreError::InvalidQuery(format!(
                "unknown filter strategy {other:?} (expected scan, indexed, or auto)"
            ))),
        }
    }
}

/// Parameters of the filtering step.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterParams {
    /// `r`: how many of the highest-weight query segments to use.
    pub query_segments: usize,
    /// `k`: how many nearest dataset segments to keep per query segment.
    pub candidates_per_segment: usize,
    /// Base Hamming threshold in bits; `None` disables the threshold and
    /// keeps the pure k-NN behaviour.
    pub base_threshold: Option<u32>,
    /// How strongly the threshold shrinks with query segment weight, in
    /// `[0, 1]`: the effective threshold is
    /// `base_threshold · (1 − weight_attenuation · w(Q_i))`.
    pub weight_attenuation: f64,
}

impl Default for FilterParams {
    fn default() -> Self {
        Self {
            query_segments: 2,
            candidates_per_segment: 40,
            base_threshold: None,
            weight_attenuation: 0.5,
        }
    }
}

impl FilterParams {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<()> {
        if self.query_segments == 0 {
            return Err(CoreError::InvalidQuery(
                "filter needs at least one query segment".into(),
            ));
        }
        if self.candidates_per_segment == 0 {
            return Err(CoreError::InvalidQuery(
                "filter needs at least one candidate per segment".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.weight_attenuation) {
            return Err(CoreError::InvalidQuery(format!(
                "weight attenuation {} outside [0, 1]",
                self.weight_attenuation
            )));
        }
        Ok(())
    }

    /// The effective Hamming threshold for a query segment of weight `w`
    /// (a decreasing function of the weight, per the paper).
    pub fn threshold_for_weight(&self, w: f32) -> Option<u32> {
        self.base_threshold.map(|base| {
            let factor = 1.0 - self.weight_attenuation * f64::from(w.clamp(0.0, 1.0));
            (f64::from(base) * factor).floor().max(0.0) as u32
        })
    }

    /// True if an index probe of guaranteed radius `radius` is *statically*
    /// exact for `query` under these parameters: every selected query
    /// segment has an adaptive threshold, and each threshold is at most
    /// `radius`, so no admissible segment can lie outside the probe's
    /// no-false-negative zone. The `Auto` strategy uses this to pick the
    /// index only when a fallback scan is impossible.
    pub fn guarantees_exact_probe(&self, query: &SketchedObject, radius: u32) -> bool {
        if query.num_segments() == 0 {
            return false;
        }
        query
            .segments_by_weight()
            .into_iter()
            .take(self.query_segments)
            .all(|qi| {
                self.threshold_for_weight(query.weights[qi])
                    .is_some_and(|t| t <= radius)
            })
    }
}

/// Statistics from one filtering pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Dataset segments whose sketches were compared against the query.
    pub segments_scanned: usize,
    /// Objects streamed.
    pub objects_scanned: usize,
    /// Size of the resulting candidate set.
    pub candidates: usize,
}

/// Max-heap entry so the [`BinaryHeap`] keeps the `k` *smallest* distances.
#[derive(PartialEq, Eq)]
struct HeapEntry {
    hamming: u32,
    object: ObjectId,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.hamming
            .cmp(&other.hamming)
            .then(self.object.cmp(&other.object))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Admits `entry` into a bounded k-NN max-heap.
///
/// Admission compares full `(hamming, object id)` entries, a *total*
/// order, so the kept set is the `k` smallest entries of everything
/// offered — independent of the order entries arrive in. This is what
/// makes sharded scans merge bit-identically with serial ones.
fn admit(heap: &mut BinaryHeap<HeapEntry>, capacity: usize, entry: HeapEntry) {
    if heap.len() < capacity {
        heap.push(entry);
    } else if let Some(top) = heap.peek() {
        if entry < *top {
            heap.pop();
            heap.push(entry);
        }
    }
}

/// An incremental filtering pass.
///
/// Feed every `(id, sketched_object)` of the dataset through
/// [`FilterScan::observe`] (in any storage order — memory, disk, network)
/// and call [`FilterScan::finish`] for the candidate set. The convenience
/// wrapper [`filter_candidates`] drives it from an iterator; the
/// out-of-core sketch database streams records from disk into the same
/// scan.
pub struct FilterScan {
    /// Sketches of the selected (highest-weight) query segments.
    query_sketches: Vec<crate::sketch::BitVec>,
    thresholds: Vec<Option<u32>>,
    candidates_per_segment: usize,
    heaps: Vec<BinaryHeap<HeapEntry>>,
    stats: FilterStats,
}

impl FilterScan {
    /// Starts a scan for `query` with the given parameters.
    pub fn new(query: &SketchedObject, params: &FilterParams) -> Result<Self> {
        params.validate()?;
        if query.num_segments() == 0 {
            return Err(CoreError::EmptyObject);
        }
        // Select the r highest-weight query segments.
        let selected: Vec<usize> = query
            .segments_by_weight()
            .into_iter()
            .take(params.query_segments)
            .collect();
        let thresholds: Vec<Option<u32>> = selected
            .iter()
            .map(|&qi| params.threshold_for_weight(query.weights[qi]))
            .collect();
        let heaps = selected
            .iter()
            .map(|_| BinaryHeap::with_capacity(params.candidates_per_segment + 1))
            .collect();
        Ok(Self {
            query_sketches: selected
                .into_iter()
                .map(|qi| query.sketches[qi].clone())
                .collect(),
            thresholds,
            candidates_per_segment: params.candidates_per_segment,
            heaps,
            stats: FilterStats::default(),
        })
    }

    /// Feeds one dataset object through the scan.
    pub fn observe(&mut self, id: ObjectId, so: &SketchedObject) -> Result<()> {
        self.stats.objects_scanned += 1;
        self.stats.segments_scanned += so.sketches.len();
        let cap = self.candidates_per_segment;
        for (slot, qs) in self.query_sketches.iter().enumerate() {
            let heap = &mut self.heaps[slot];
            // Tightest admission bound: the weight threshold caps entry
            // outright, and a full heap only admits distances at or below
            // its current worst (an equal distance can still win on object
            // id). The heap-top read is hoisted out of the segment loop:
            // while the heap is not yet full the bound is the threshold
            // alone, and once full it only changes after an admission.
            let threshold = self.thresholds[slot].unwrap_or(u32::MAX);
            let mut limit = threshold;
            let mut full = heap.len() >= cap;
            if full {
                if let Some(top) = heap.peek() {
                    limit = limit.min(top.hamming);
                }
            }
            for sketch in &so.sketches {
                let Some(h) = qs.hamming_within(sketch, limit)? else {
                    continue;
                };
                admit(
                    heap,
                    cap,
                    HeapEntry {
                        hamming: h,
                        object: id,
                    },
                );
                full = full || heap.len() >= cap;
                if full {
                    if let Some(top) = heap.peek() {
                        limit = threshold.min(top.hamming);
                    }
                }
            }
        }
        Ok(())
    }

    /// Merges another scan of the *same query and parameters* into this
    /// one, as if its observations had been fed to this scan directly.
    ///
    /// Sharded scans split the dataset into contiguous chunks, run one
    /// scan per shard, then fold the shards together with this. Because
    /// heap admission is a total order on `(hamming, object id)`, the
    /// merged heaps (and hence the candidate set and every statistic)
    /// are bit-identical to a serial scan of the whole dataset.
    pub fn merge(&mut self, other: FilterScan) {
        debug_assert_eq!(self.query_sketches.len(), other.query_sketches.len());
        self.stats.objects_scanned += other.stats.objects_scanned;
        self.stats.segments_scanned += other.stats.segments_scanned;
        for (heap, other_heap) in self.heaps.iter_mut().zip(other.heaps) {
            for entry in other_heap {
                admit(heap, self.candidates_per_segment, entry);
            }
        }
    }

    /// Ends the scan, returning the candidate set and statistics.
    pub fn finish(mut self) -> (HashSet<ObjectId>, FilterStats) {
        let mut candidates = HashSet::new();
        for heap in self.heaps {
            for entry in heap {
                candidates.insert(entry.object);
            }
        }
        self.stats.candidates = candidates.len();
        (candidates, self.stats)
    }

    /// Probes one index shard: for every selected query segment, looks up
    /// the query's block values, unions the surviving buckets, and feeds
    /// live survivors through the same bounded-heap admission as a scan.
    ///
    /// Statistics convention for probes: `segments_scanned` counts the
    /// distinct `(query slot, entry)` pairs actually *verified* (offered a
    /// popcount) and `objects_scanned` the distinct objects among them —
    /// the real work the index saved relative to a scan. Both are derived
    /// from bucket contents only, so they are identical for every thread
    /// count.
    fn probe_shard(
        &mut self,
        shard: &SketchIndex,
        dead: Option<&HashSet<ObjectId>>,
        restrict: Option<&HashSet<ObjectId>>,
        probe: &mut ProbeStats,
    ) -> Result<()> {
        let Self {
            query_sketches,
            thresholds,
            candidates_per_segment,
            heaps,
            stats,
        } = self;
        let cap = *candidates_per_segment;
        let mut seen_objects: HashSet<ObjectId> = HashSet::new();
        let mut seen_entries: HashSet<u32> = HashSet::new();
        for (slot, qs) in query_sketches.iter().enumerate() {
            seen_entries.clear();
            let heap = &mut heaps[slot];
            let threshold = thresholds[slot].unwrap_or(u32::MAX);
            for b in 0..shard.num_blocks() {
                let range = shard.block_range(b);
                let key = shard.block_key(qs, b)?;
                probe.buckets_probed += 1;
                let Some(bucket) = shard.bucket(b, key) else {
                    probe.buckets_pruned += shard.buckets_in_block(b);
                    continue;
                };
                probe.buckets_pruned += shard.buckets_in_block(b) - 1;
                for &eidx in bucket {
                    if !seen_entries.insert(eidx) {
                        continue;
                    }
                    let Some((oid, sketch)) = shard.entry(eidx) else {
                        continue; // tombstoned
                    };
                    // Segment-level tombstones (the segmented layout's dead
                    // set) are removals the immutable index cannot record
                    // in place; treat them exactly like tombstoned entries.
                    if dead.is_some_and(|set| set.contains(&oid)) {
                        continue;
                    }
                    if restrict.is_some_and(|set| !set.contains(&oid)) {
                        probe.restrict_pruned += 1;
                        continue;
                    }
                    stats.segments_scanned += 1;
                    probe.entries_verified += 1;
                    seen_objects.insert(oid);
                    let mut limit = threshold;
                    if heap.len() >= cap {
                        if let Some(top) = heap.peek() {
                            limit = limit.min(top.hamming);
                        }
                    }
                    // The survivor matched the query exactly inside block
                    // `b`, so the Hamming distance over the bits *before*
                    // the block lower-bounds the full distance: reject on
                    // the prefix alone when it already exceeds the bound.
                    if range.start > 0 && qs.hamming_prefix(sketch, range.start)? > limit {
                        probe.prefix_pruned += 1;
                        continue;
                    }
                    let Some(h) = qs.hamming_within(sketch, limit)? else {
                        continue;
                    };
                    admit(
                        heap,
                        cap,
                        HeapEntry {
                            hamming: h,
                            object: oid,
                        },
                    );
                }
            }
        }
        stats.objects_scanned += seen_objects.len();
        Ok(())
    }

    /// True if this (merged) scan provably kept everything a full scan
    /// would keep, given that it only saw segments within Hamming distance
    /// `radius` of each query segment (plus arbitrary extras).
    ///
    /// Per slot, either suffices:
    /// * the adaptive threshold is at most `radius` — segments beyond the
    ///   probe's no-false-negative zone were inadmissible anyway; or
    /// * the heap is full with its worst kept distance at most `radius` —
    ///   any unseen segment has distance ≥ `radius + 1` > the full scan's
    ///   own worst kept distance, so it cannot displace anything.
    fn complete_within(&self, radius: u32) -> bool {
        (0..self.heaps.len()).all(|slot| {
            if self.thresholds[slot].is_some_and(|t| t <= radius) {
                return true;
            }
            self.heaps[slot].len() >= self.candidates_per_segment
                && self.heaps[slot]
                    .peek()
                    .is_some_and(|top| top.hamming <= radius)
        })
    }
}

/// Statistics from one multi-index probe (see
/// [`filter_candidates_indexed`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Buckets looked up (one per query slot × block × shard).
    pub buckets_probed: usize,
    /// Buckets skipped because their block value differed from the
    /// query's — segments never touched at all.
    pub buckets_pruned: usize,
    /// Distinct `(query slot, entry)` survivors offered a verification.
    pub entries_verified: usize,
    /// Survivors rejected on the prefix distance alone, before a full
    /// popcount.
    pub prefix_pruned: usize,
    /// Survivors skipped because the caller's candidate restriction
    /// (predicate pushdown) excluded their object.
    pub restrict_pruned: usize,
}

impl ProbeStats {
    fn absorb(&mut self, other: ProbeStats) {
        self.buckets_probed += other.buckets_probed;
        self.buckets_pruned += other.buckets_pruned;
        self.entries_verified += other.entries_verified;
        self.prefix_pruned += other.prefix_pruned;
        self.restrict_pruned += other.restrict_pruned;
    }
}

/// The result of an indexed filtering attempt.
#[derive(Debug)]
pub enum IndexedFilterOutcome {
    /// The probe provably matched a full scan: these candidates (and the
    /// candidate count in `stats`) are byte-identical to
    /// [`filter_candidates`] over the same live objects.
    Exact {
        /// The candidate object set.
        candidates: HashSet<ObjectId>,
        /// Scan statistics (probe convention: work actually done).
        stats: FilterStats,
        /// Probe statistics.
        probe: ProbeStats,
    },
    /// The probe could not prove exactness (no threshold within the index
    /// radius and some k-NN heap not saturated below it); the caller must
    /// run the full scan.
    Fallback {
        /// Probe statistics for the wasted probe.
        probe: ProbeStats,
    },
}

/// One immutable sketch index participating in a probe, with the
/// segment-level tombstones ("dead set") the index itself cannot record.
///
/// The segmented storage layout keeps one [`ShardedSketchIndex`] per
/// sealed segment; removals after sealing land in the owning segment's
/// dead set instead of mutating the index. A probe over several parts
/// skips dead objects exactly as if they had been tombstoned in place.
#[derive(Debug, Clone, Copy)]
pub struct IndexedPart<'a> {
    /// The immutable per-segment index.
    pub index: &'a ShardedSketchIndex,
    /// Objects removed from this segment after its index was built.
    pub dead: Option<&'a HashSet<ObjectId>>,
}

/// Answers a [`FilterScan`]-shaped query through the multi-index instead
/// of a full scan.
///
/// Shards are probed independently (in parallel across `threads`) and the
/// per-shard scans merged through the same total-order heap admission as
/// the sharded scan, so the merged heaps hold the k smallest
/// `(hamming, object id)` entries of every segment the probe surfaced.
/// The probe surfaces a *superset* of all segments within Hamming distance
/// `B − 1` of each query segment (the pigeonhole guarantee of
/// [`SketchIndex`]); [`FilterScan::complete_within`] then decides whether
/// that superset provably contains everything a full scan would have kept.
/// If yes, the outcome is [`IndexedFilterOutcome::Exact`] and bit-identical
/// to [`filter_candidates`]; otherwise [`IndexedFilterOutcome::Fallback`]
/// tells the caller to scan.
pub fn filter_candidates_indexed(
    query: &SketchedObject,
    index: &ShardedSketchIndex,
    params: &FilterParams,
    restrict: Option<&HashSet<ObjectId>>,
    threads: usize,
) -> Result<IndexedFilterOutcome> {
    filter_candidates_indexed_multi(
        query,
        &[IndexedPart { index, dead: None }],
        &[],
        params,
        restrict,
        threads,
    )
}

/// [`filter_candidates_indexed`] generalized to a *set* of immutable
/// per-segment indexes plus unindexed extras (the segmented layout's
/// memtable and not-yet-compacted segments).
///
/// Every part is probed through the same bounded-heap admission; `extras`
/// are fully observed like a scan would, so they can never cause a
/// fallback. Exactness is decided against the *weakest* part: any segment
/// the probe did not surface lies beyond its own part's pigeonhole radius,
/// which is at least the minimum radius passed to
/// [`FilterScan::complete_within`]. With no parts at all the probe *is* a
/// full scan of `extras` and is unconditionally exact.
pub fn filter_candidates_indexed_multi(
    query: &SketchedObject,
    parts: &[IndexedPart<'_>],
    extras: &[(ObjectId, &SketchedObject)],
    params: &FilterParams,
    restrict: Option<&HashSet<ObjectId>>,
    threads: usize,
) -> Result<IndexedFilterOutcome> {
    // Flatten to one probe-able shard list so parallelism sees the whole
    // probe surface, not one part at a time.
    let flat: Vec<(&SketchIndex, Option<&HashSet<ObjectId>>)> = parts
        .iter()
        .flat_map(|p| p.index.shards().iter().map(move |s| (s, p.dead)))
        .collect();
    let probe_range = |range: std::ops::Range<usize>| -> Result<(FilterScan, ProbeStats)> {
        let mut scan = FilterScan::new(query, params)?;
        let mut probe = ProbeStats::default();
        for &(shard, dead) in &flat[range] {
            scan.probe_shard(shard, dead, restrict, &mut probe)?;
        }
        Ok((scan, probe))
    };
    let outcomes = if threads <= 1 || flat.len() <= 1 {
        vec![probe_range(0..flat.len())]
    } else {
        crate::parallel::map_shards(threads, flat.len(), |_, range| probe_range(range))
    };
    let mut merged: Option<FilterScan> = None;
    let mut probe = ProbeStats::default();
    for outcome in outcomes {
        let (scan, p) = outcome?;
        probe.absorb(p);
        match &mut merged {
            None => merged = Some(scan),
            Some(m) => m.merge(scan),
        }
    }
    let mut merged = match merged {
        Some(m) => m,
        None => FilterScan::new(query, params)?, // no indexed parts
    };
    // Unindexed extras are observed in full, exactly like a scan.
    for &(id, so) in extras {
        if restrict.is_some_and(|set| !set.contains(&id)) {
            continue;
        }
        merged.observe(id, so)?;
    }
    let radius = parts.iter().map(|p| p.index.exact_radius()).min();
    let exact = match radius {
        None => true, // everything was fully scanned
        Some(r) => merged.complete_within(r),
    };
    if exact {
        let (candidates, stats) = merged.finish();
        Ok(IndexedFilterOutcome::Exact {
            candidates,
            stats,
            probe,
        })
    } else {
        Ok(IndexedFilterOutcome::Fallback { probe })
    }
}

/// Streams the sketch database and produces the candidate object set.
///
/// `dataset` yields `(id, sketched_object)` pairs; iteration order does
/// not affect the result (ties are broken by object id, not arrival
/// order). Returns the candidate ids and scan statistics.
pub fn filter_candidates<'a, I>(
    query: &SketchedObject,
    dataset: I,
    params: &FilterParams,
) -> Result<(HashSet<ObjectId>, FilterStats)>
where
    I: IntoIterator<Item = (ObjectId, &'a SketchedObject)>,
{
    let mut scan = FilterScan::new(query, params)?;
    for (id, so) in dataset {
        scan.observe(id, so)?;
    }
    Ok(scan.finish())
}

/// Sharded filtering scan: partitions `dataset` into contiguous chunks,
/// runs an independent [`FilterScan`] per shard on scoped threads, and
/// merges the per-shard heaps and statistics.
///
/// Results are bit-identical to [`filter_candidates`] over the same
/// slice for every thread count (see [`FilterScan::merge`]). If several
/// records fail, the error of the earliest record in slice order is
/// returned, matching the serial scan.
pub fn filter_candidates_sharded(
    query: &SketchedObject,
    dataset: &[(ObjectId, &SketchedObject)],
    params: &FilterParams,
    threads: usize,
) -> Result<(HashSet<ObjectId>, FilterStats)> {
    let (candidates, stats, _) = filter_candidates_sharded_traced(query, dataset, params, threads)?;
    Ok((candidates, stats))
}

/// [`filter_candidates_sharded`] plus the per-shard scan statistics that
/// went into the merge, for query tracing. The shard list is empty when
/// the scan ran unsharded (one thread or a tiny dataset).
pub fn filter_candidates_sharded_traced(
    query: &SketchedObject,
    dataset: &[(ObjectId, &SketchedObject)],
    params: &FilterParams,
    threads: usize,
) -> Result<(HashSet<ObjectId>, FilterStats, Vec<FilterStats>)> {
    if threads <= 1 || dataset.len() < 2 {
        let (candidates, stats) =
            filter_candidates(query, dataset.iter().map(|&(id, so)| (id, so)), params)?;
        return Ok((candidates, stats, Vec::new()));
    }
    let shard_scans = crate::parallel::map_shards(threads, dataset.len(), |_, range| {
        let mut scan = FilterScan::new(query, params)?;
        for &(id, so) in &dataset[range] {
            scan.observe(id, so)?;
        }
        Ok(scan)
    });
    let mut merged: Option<FilterScan> = None;
    let mut shard_stats = Vec::with_capacity(shard_scans.len());
    for scan in shard_scans {
        let scan = scan?;
        shard_stats.push(scan.stats);
        match &mut merged {
            None => merged = Some(scan),
            Some(m) => m.merge(scan),
        }
    }
    let scan = merged.expect("non-empty dataset implies at least one shard");
    let (candidates, stats) = scan.finish();
    Ok((candidates, stats, shard_stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::{BitVec, SketchedObject};

    fn sketched(bits: &[&[bool]], weights: &[f32]) -> SketchedObject {
        SketchedObject {
            weights: weights.to_vec(),
            sketches: bits.iter().map(|b| BitVec::from_bits(b)).collect(),
        }
    }

    /// 4-bit sketch helper.
    fn s4(a: bool, b: bool, c: bool, d: bool) -> Vec<bool> {
        vec![a, b, c, d]
    }

    #[test]
    fn default_params_are_valid() {
        FilterParams::default().validate().unwrap();
    }

    #[test]
    fn params_validation() {
        let p = FilterParams {
            query_segments: 0,
            ..FilterParams::default()
        };
        assert!(p.validate().is_err());
        let p = FilterParams {
            candidates_per_segment: 0,
            ..FilterParams::default()
        };
        assert!(p.validate().is_err());
        let p = FilterParams {
            weight_attenuation: 1.5,
            ..FilterParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn threshold_decreases_with_weight() {
        let p = FilterParams {
            base_threshold: Some(100),
            weight_attenuation: 0.5,
            ..FilterParams::default()
        };
        let t_light = p.threshold_for_weight(0.1).unwrap();
        let t_heavy = p.threshold_for_weight(0.9).unwrap();
        assert!(t_heavy < t_light, "{t_heavy} !< {t_light}");
        assert_eq!(p.threshold_for_weight(0.0).unwrap(), 100);
        // No threshold configured -> None.
        assert!(FilterParams::default().threshold_for_weight(0.5).is_none());
    }

    #[test]
    fn finds_objects_with_close_segments() {
        let query = sketched(&[&s4(true, true, false, false)], &[1.0]);
        let near = sketched(&[&s4(true, true, false, true)], &[1.0]); // hamming 1
        let far = sketched(&[&s4(false, false, true, true)], &[1.0]); // hamming 4
        let data = vec![(ObjectId(1), &near), (ObjectId(2), &far)];
        let p = FilterParams {
            query_segments: 1,
            candidates_per_segment: 1,
            ..FilterParams::default()
        };
        let (cands, stats) = filter_candidates(&query, data, &p).unwrap();
        assert!(cands.contains(&ObjectId(1)));
        assert!(!cands.contains(&ObjectId(2)));
        assert_eq!(stats.objects_scanned, 2);
        assert_eq!(stats.segments_scanned, 2);
        assert_eq!(stats.candidates, 1);
    }

    #[test]
    fn threshold_excludes_distant_matches() {
        let query = sketched(&[&s4(true, true, true, true)], &[1.0]);
        let far = sketched(&[&s4(false, false, false, false)], &[1.0]); // hamming 4
        let data = vec![(ObjectId(1), &far)];
        // Without a threshold the k-NN keeps it even though it is far.
        let p = FilterParams {
            query_segments: 1,
            candidates_per_segment: 5,
            ..FilterParams::default()
        };
        let (cands, _) = filter_candidates(&query, data.clone(), &p).unwrap();
        assert_eq!(cands.len(), 1);
        // With a threshold of 2 bits it is dropped.
        let p = FilterParams {
            base_threshold: Some(2),
            weight_attenuation: 0.0,
            ..p
        };
        let (cands, stats) = filter_candidates(&query, data, &p).unwrap();
        assert!(cands.is_empty());
        assert_eq!(stats.candidates, 0);
    }

    #[test]
    fn keeps_k_nearest_only() {
        let query = sketched(&[&s4(true, true, true, true)], &[1.0]);
        // Objects at increasing Hamming distance 0, 1, 2, 3.
        let d0 = sketched(&[&s4(true, true, true, true)], &[1.0]);
        let d1 = sketched(&[&s4(true, true, true, false)], &[1.0]);
        let d2 = sketched(&[&s4(true, true, false, false)], &[1.0]);
        let d3 = sketched(&[&s4(true, false, false, false)], &[1.0]);
        let data = vec![
            (ObjectId(3), &d3),
            (ObjectId(0), &d0),
            (ObjectId(2), &d2),
            (ObjectId(1), &d1),
        ];
        let p = FilterParams {
            query_segments: 1,
            candidates_per_segment: 2,
            ..FilterParams::default()
        };
        let (cands, _) = filter_candidates(&query, data, &p).unwrap();
        assert_eq!(cands.len(), 2);
        assert!(cands.contains(&ObjectId(0)) && cands.contains(&ObjectId(1)));
    }

    #[test]
    fn uses_highest_weight_query_segments() {
        // Query has a heavy segment (all ones) and a light one (all zeros);
        // with r = 1 only the heavy segment drives filtering.
        let query = sketched(
            &[&s4(false, false, false, false), &s4(true, true, true, true)],
            &[0.1, 0.9],
        );
        let matches_heavy = sketched(&[&s4(true, true, true, true)], &[1.0]);
        let matches_light = sketched(&[&s4(false, false, false, false)], &[1.0]);
        let data = vec![(ObjectId(1), &matches_heavy), (ObjectId(2), &matches_light)];
        let p = FilterParams {
            query_segments: 1,
            candidates_per_segment: 1,
            ..FilterParams::default()
        };
        let (cands, _) = filter_candidates(&query, data, &p).unwrap();
        assert!(cands.contains(&ObjectId(1)));
        assert!(!cands.contains(&ObjectId(2)));
    }

    #[test]
    fn multi_segment_objects_counted_once() {
        let query = sketched(&[&s4(true, true, false, false)], &[1.0]);
        let multi = sketched(
            &[&s4(true, true, false, false), &s4(true, true, false, true)],
            &[0.5, 0.5],
        );
        let data = vec![(ObjectId(7), &multi)];
        let p = FilterParams {
            query_segments: 1,
            candidates_per_segment: 10,
            ..FilterParams::default()
        };
        let (cands, stats) = filter_candidates(&query, data, &p).unwrap();
        assert_eq!(cands.len(), 1);
        assert_eq!(stats.segments_scanned, 2);
    }

    #[test]
    fn empty_dataset_gives_empty_candidates() {
        let query = sketched(&[&s4(true, false, true, false)], &[1.0]);
        let (cands, stats) =
            filter_candidates(&query, Vec::new(), &FilterParams::default()).unwrap();
        assert!(cands.is_empty());
        assert_eq!(stats.objects_scanned, 0);
    }

    #[test]
    fn sharded_scan_matches_serial_for_any_thread_count() {
        // A dataset with deliberate distance ties so tie-breaking matters.
        let query = sketched(&[&s4(true, true, false, false)], &[1.0]);
        let objects: Vec<SketchedObject> = (0..40)
            .map(|i| {
                let bits = s4(i % 2 == 0, true, i % 3 == 0, false);
                sketched(&[&bits], &[1.0])
            })
            .collect();
        let dataset: Vec<(ObjectId, &SketchedObject)> = objects
            .iter()
            .enumerate()
            .map(|(i, so)| (ObjectId(i as u64), so))
            .collect();
        let p = FilterParams {
            query_segments: 1,
            candidates_per_segment: 7,
            ..FilterParams::default()
        };
        let (serial, serial_stats) =
            filter_candidates(&query, dataset.iter().copied(), &p).unwrap();
        for threads in [1usize, 2, 3, 7, 64] {
            let (sharded, stats) =
                filter_candidates_sharded(&query, &dataset, &p, threads).unwrap();
            assert_eq!(serial, sharded, "threads {threads}");
            assert_eq!(serial_stats, stats, "threads {threads}");
        }
    }

    #[test]
    fn kept_set_is_scan_order_independent() {
        // Ties at the same Hamming distance resolve by object id, so a
        // reversed scan keeps the same candidates.
        let query = sketched(&[&s4(true, true, true, true)], &[1.0]);
        let tied: Vec<SketchedObject> = (0..10)
            .map(|_| sketched(&[&s4(true, true, true, false)], &[1.0]))
            .collect();
        let forward: Vec<(ObjectId, &SketchedObject)> = tied
            .iter()
            .enumerate()
            .map(|(i, so)| (ObjectId(i as u64), so))
            .collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        let p = FilterParams {
            query_segments: 1,
            candidates_per_segment: 3,
            ..FilterParams::default()
        };
        let (a, _) = filter_candidates(&query, forward, &p).unwrap();
        let (b, _) = filter_candidates(&query, reversed, &p).unwrap();
        assert_eq!(a, b);
        // Lowest ids win ties.
        assert_eq!(a, HashSet::from([ObjectId(0), ObjectId(1), ObjectId(2)]));
    }

    #[test]
    fn rejects_empty_query() {
        let query = SketchedObject {
            weights: vec![],
            sketches: vec![],
        };
        assert!(matches!(
            filter_candidates(&query, Vec::new(), &FilterParams::default()),
            Err(CoreError::EmptyObject)
        ));
    }
}
