//! # ferret-core
//!
//! Core of the Ferret toolkit: a general-purpose content-based similarity
//! search engine for feature-rich data, after *Ferret: A Toolkit for
//! Content-Based Similarity Search of Feature-Rich Data* (Lv, Josephson,
//! Wang, Charikar, Li — EuroSys 2006).
//!
//! Objects are weighted sets of high-dimensional feature vectors. The
//! engine converts feature vectors into compact bit-vector **sketches**
//! whose Hamming distances estimate (a thresholded transform of) the
//! weighted ℓ₁ distance, **filters** the dataset by streaming sketches to
//! form a small candidate set, and **ranks** candidates with an accurate
//! object distance — by default the Earth Mover's Distance.
//!
//! ```
//! use ferret_core::prelude::*;
//!
//! // An engine over 2-d feature vectors in [0, 1]^2 with 64-bit sketches.
//! let params = SketchParams::new(64, vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
//! let mut engine = SearchEngine::builder(params, 42).build().unwrap();
//!
//! // Insert two single-segment objects.
//! let near = DataObject::single(FeatureVector::new(vec![0.21, 0.19]).unwrap());
//! let far = DataObject::single(FeatureVector::new(vec![0.9, 0.85]).unwrap());
//! engine.insert(ObjectId(1), near).unwrap();
//! engine.insert(ObjectId(2), far).unwrap();
//!
//! // Query near (0.2, 0.2): object 1 must rank first.
//! let query = DataObject::single(FeatureVector::new(vec![0.2, 0.2]).unwrap());
//! let resp = engine.query(&query, &QueryOptions::brute_force(1)).unwrap();
//! assert_eq!(resp.results[0].id, ObjectId(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod distance;
pub mod engine;
pub mod error;
pub mod filter;
pub mod index;
pub mod object;
pub mod parallel;
pub mod plugin;
pub mod rank;
pub mod segment;
pub mod series;
pub mod sketch;
pub mod telemetry;
pub mod vector;

/// Commonly used types, for glob import.
pub mod prelude {
    pub use crate::distance::emd::{Emd, GreedyEmd, ThresholdedEmd};
    pub use crate::distance::hamming::{Hamming, NormalizedHamming, ScaledHamming, SketchDistance};
    pub use crate::distance::histogram::{ChiSquare, HistogramIntersection};
    pub use crate::distance::lp::{LInf, Lp, WeightedL1, L1, L2};
    pub use crate::distance::{ObjectDistance, SegmentDistance};
    pub use crate::engine::{
        EngineBuilder, EngineConfig, MetadataFootprint, QueryMode, QueryOptions, QueryResponse,
        QueryStats, RankingMethod, SearchEngine,
    };
    pub use crate::error::{CoreError, Result};
    pub use crate::filter::{FilterParams, FilterScan, FilterStats, FilterStrategy, ProbeStats};
    pub use crate::index::{BandedSketchIndex, BandingParams};
    pub use crate::object::{DataObject, ObjectId, Segment};
    pub use crate::parallel::Parallelism;
    pub use crate::plugin::{Extractor, FileExtractor};
    pub use crate::rank::SearchResult;
    pub use crate::segment::{IndexLayout, IndexStorage, StorageStats};
    pub use crate::sketch::{
        BitVec, ShardedSketchIndex, SketchBuilder, SketchIndex, SketchParams, SketchedObject,
    };
    pub use crate::telemetry::{
        Counter, Gauge, Histogram, MetricsRegistry, QueryTrace, ShardTrace, StageTrace,
    };
    pub use crate::vector::FeatureVector;
}
