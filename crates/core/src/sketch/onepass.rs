//! One-pass weighted sketch construction.
//!
//! The classic construction (Algorithm 2) evaluates all `N × K` random
//! `(i, t)` pairs independently per vector: `O(N·K)` comparisons each of
//! which XORs one raw bit into an output bit. Following the shape of
//! *DartMinHash* (Christiani) and *Fast Similarity Sketching*
//! (Dahlgaard–Knudsen–Thorup), the one-pass strategy reorganizes the same
//! random pairs into per-dimension **plans** so a vector is sketched in a
//! single sweep over its components:
//!
//! * all `(i, t)` pairs with the same dimension `i` form one contiguous
//!   *run*, sorted by threshold `t` ascending;
//! * for component `v_i`, one binary search finds how many thresholds
//!   satisfy `t <= v_i` — exactly the pairs whose raw bit is 1;
//! * because XOR is commutative and associative, those raw 1-bits can be
//!   applied in any order, so each run carries **checkpoint masks**: the
//!   XOR-fold of the first `c·S` flip targets, precomputed as packed
//!   `u64` words. A prefix of length `idx` is applied as one mask XOR
//!   plus at most `S − 1` individual bit flips;
//! * components at or below a run's smallest threshold terminate early
//!   (no raw 1-bits), which on weight-skewed data skips most runs
//!   outright — the DartMinHash observation that low-weight coordinates
//!   rarely produce sketch updates.
//!
//! The result is *bit-identical* to the classic construction for the same
//! parameters and seed — the strategy is a pure performance knob — while
//! the per-vector work drops from `O(N·K)` comparisons to
//! `O(D·(log(N·K/D) + N/64 + S))` word operations, independent of `K`.

use super::bitvec::BitVec;
use super::params::SketchParams;
use crate::error::{CoreError, Result};

/// How the sketch construction unit evaluates its `N × K` random pairs.
///
/// Both strategies produce **byte-identical sketches** for the same
/// parameters and seed (pinned by the golden-sketch fixtures and the
/// cross-strategy proptests); they differ only in the work done per
/// vector. This mirrors the [`FilterStrategy`](crate::filter::FilterStrategy)
/// and [`Parallelism`](crate::parallel::Parallelism) knob pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SketchStrategy {
    /// The paper's Algorithm 2: evaluate each of the `N × K` pairs
    /// independently — `O(N·K)` comparisons per vector.
    #[default]
    Classic,
    /// Pre-sorted per-dimension plans with checkpointed XOR-fold masks:
    /// ~one pass over the vector's components per sketch, with work
    /// independent of `K`.
    OnePass,
}

impl std::fmt::Display for SketchStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SketchStrategy::Classic => "classic",
            SketchStrategy::OnePass => "one-pass",
        })
    }
}

impl std::str::FromStr for SketchStrategy {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "classic" => Ok(SketchStrategy::Classic),
            "one-pass" | "onepass" | "one_pass" => Ok(SketchStrategy::OnePass),
            other => Err(CoreError::InvalidSketchParams(format!(
                "unknown sketch strategy {other:?} (expected classic or one-pass)"
            ))),
        }
    }
}

/// Checkpoint stride `S`: a prefix mask is precomputed every `S` entries
/// of a run, so applying a prefix costs one mask XOR plus at most `S − 1`
/// individual flips. Smaller strides trade plan memory for fewer flips.
const CHECKPOINT_STRIDE: usize = 8;

/// One per-dimension threshold run inside the plan.
#[derive(Debug, Clone, Copy)]
struct Run {
    /// First entry in `thresholds` / `flip_bits`.
    start: u32,
    /// Number of entries.
    len: u32,
    /// First checkpoint mask (in units of masks) in `masks`.
    mask_start: u32,
}

/// The pre-sorted execution plan of the one-pass strategy.
///
/// Built once per [`SketchBuilder`](super::SketchBuilder) from the same
/// `N × K` random `(i, t)` pairs the classic loop walks; sketching then
/// only reads the plan.
#[derive(Debug, Clone)]
pub struct OnePassPlan {
    /// One run per dimension (empty runs for never-sampled dimensions).
    runs: Vec<Run>,
    /// Thresholds, sorted ascending within each run.
    thresholds: Vec<f32>,
    /// Output bit index of each threshold's XOR-fold accumulator.
    flip_bits: Vec<u32>,
    /// Concatenated checkpoint masks, `words_per_mask` words each: the
    /// `c`-th mask of a run is the XOR of the first `c·S` flip targets.
    masks: Vec<u64>,
    /// `ceil(nbits / 64)`.
    words_per_mask: usize,
    /// `N`: sketch length in bits.
    nbits: usize,
}

impl OnePassPlan {
    /// Compiles the `N × K` `(i, t)` pairs of Algorithm 1 into
    /// per-dimension runs with checkpoint masks. `rnd_i[p]` / `rnd_t[p]`
    /// are the sampled dimension and threshold of raw pair `p`, which
    /// XOR-folds into output bit `p / K`.
    pub fn build(params: &SketchParams, rnd_i: &[u32], rnd_t: &[f32]) -> Self {
        debug_assert_eq!(rnd_i.len(), params.nbits * params.xor_folds);
        debug_assert_eq!(rnd_t.len(), rnd_i.len());
        let dims = params.dim();
        let k = params.xor_folds;
        let words_per_mask = params.nbits.div_ceil(64);

        // Bucket pair indices by dimension (counting sort keeps this O(N·K)).
        let mut counts = vec![0u32; dims];
        for &i in rnd_i {
            counts[i as usize] += 1;
        }
        let mut per_dim: Vec<Vec<(f32, u32)>> = counts
            .iter()
            .map(|&c| Vec::with_capacity(c as usize))
            .collect();
        for (p, (&i, &t)) in rnd_i.iter().zip(rnd_t.iter()).enumerate() {
            per_dim[i as usize].push((t, (p / k) as u32));
        }

        let total = rnd_i.len();
        let mut runs = Vec::with_capacity(dims);
        let mut thresholds = Vec::with_capacity(total);
        let mut flip_bits = Vec::with_capacity(total);
        let mut masks: Vec<u64> = Vec::new();
        for mut entries in per_dim {
            // Sort by threshold; ties keep any order (XOR commutes, and
            // equal thresholds are counted together by the binary search).
            entries.sort_by(f32_pair_order);
            let start = thresholds.len() as u32;
            let mask_start = (masks.len() / words_per_mask.max(1)) as u32;
            let mut acc = vec![0u64; words_per_mask];
            for (n, (t, bit)) in entries.iter().enumerate() {
                thresholds.push(*t);
                flip_bits.push(*bit);
                acc[*bit as usize / 64] ^= 1u64 << (*bit as usize % 64);
                if (n + 1) % CHECKPOINT_STRIDE == 0 {
                    masks.extend_from_slice(&acc);
                }
            }
            runs.push(Run {
                start,
                len: (thresholds.len() as u32) - start,
                mask_start,
            });
        }
        Self {
            runs,
            thresholds,
            flip_bits,
            masks,
            words_per_mask,
            nbits: params.nbits,
        }
    }

    /// Sketch length in bits.
    pub fn nbits(&self) -> usize {
        self.nbits
    }

    /// Approximate resident size of the plan, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.runs.len() * std::mem::size_of::<Run>()
            + self.thresholds.len() * 4
            + self.flip_bits.len() * 4
            + self.masks.len() * 8
    }

    /// Sketches raw components in one sweep. The caller guarantees
    /// `v.len()` equals the plan's dimensionality.
    pub fn sketch_components(&self, v: &[f32]) -> BitVec {
        debug_assert_eq!(v.len(), self.runs.len());
        let words = self.words_per_mask;
        let mut acc = vec![0u64; words];
        for (run, &x) in self.runs.iter().zip(v.iter()) {
            let len = run.len as usize;
            if len == 0 {
                continue;
            }
            let start = run.start as usize;
            let ts = &self.thresholds[start..start + len];
            // Early termination: a component at or above the run's
            // largest threshold takes the whole run; one below the
            // smallest (or NaN, for which every comparison is false —
            // matching the classic `v_i >= t` evaluation) contributes no
            // raw 1-bits at all.
            let idx = if x >= ts[len - 1] {
                len
            } else if x >= ts[0] {
                ts.partition_point(|&t| t <= x)
            } else {
                continue;
            };
            // Nearest checkpoint mask covers the bulk of the prefix...
            let cp = idx / CHECKPOINT_STRIDE;
            if cp > 0 {
                let m = (run.mask_start as usize + cp - 1) * words;
                for (a, &b) in acc.iter_mut().zip(&self.masks[m..m + words]) {
                    *a ^= b;
                }
            }
            // ...and at most S − 1 flips finish it.
            for &bit in &self.flip_bits[start + cp * CHECKPOINT_STRIDE..start + idx] {
                acc[bit as usize / 64] ^= 1u64 << (bit as usize % 64);
            }
        }
        BitVec::from_words(acc.into_boxed_slice(), self.nbits)
    }
}

/// Total order on `(threshold, bit)` pairs: thresholds are finite by
/// [`SketchParams`] validation, so `partial_cmp` cannot fail; ties break
/// by flip bit for a deterministic plan layout.
fn f32_pair_order(a: &(f32, u32), b: &(f32, u32)) -> std::cmp::Ordering {
    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_parses_and_displays() {
        for (s, v) in [
            ("classic", SketchStrategy::Classic),
            ("one-pass", SketchStrategy::OnePass),
            ("onepass", SketchStrategy::OnePass),
            ("one_pass", SketchStrategy::OnePass),
        ] {
            assert_eq!(s.parse::<SketchStrategy>().unwrap(), v);
        }
        assert!("fast".parse::<SketchStrategy>().is_err());
        assert_eq!(SketchStrategy::Classic.to_string(), "classic");
        assert_eq!(SketchStrategy::OnePass.to_string(), "one-pass");
        assert_eq!(SketchStrategy::default(), SketchStrategy::Classic);
    }

    #[test]
    fn plan_reports_memory() {
        let params = SketchParams::with_options(64, 2, vec![0.0; 4], vec![1.0; 4], None).unwrap();
        let b = super::super::SketchBuilder::with_strategy(params, 3, SketchStrategy::OnePass);
        let plan = b.one_pass_plan().expect("one-pass builder has a plan");
        assert!(plan.memory_bytes() > 0);
        assert_eq!(plan.nbits(), 64);
    }
}
