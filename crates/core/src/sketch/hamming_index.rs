//! Exact multi-index Hamming search over segment sketches.
//!
//! The filtering scan compares the query against *every* stored segment
//! sketch, so at large corpus sizes the O(n) scan dominates query latency.
//! This module trades memory for a sub-linear probe with the classic
//! multi-index (pigeonhole) scheme: each `nbits`-long sketch is split into
//! `B` fixed bit-blocks and bucketed per block value. If two sketches are
//! within Hamming distance `t` and `B > t`, at least one block of the pair
//! is *identical* (t differing bits cannot touch all B disjoint blocks), so
//! looking up the query's own `B` block values and unioning the bucket
//! contents yields a superset of every segment within distance `B − 1` —
//! no false negatives below that radius. Survivors are then verified with
//! the early-exit [`BitVec::hamming_within`] popcount, and the filter layer
//! ([`crate::filter::filter_candidates_indexed`]) proves per query whether
//! the probe radius was sufficient for bit-identical results, falling back
//! to the full scan when it was not.
//!
//! [`SketchIndex`] is the single-shard structure; [`ShardedSketchIndex`]
//! splits the corpus into fixed-size shards so probes parallelize the same
//! way the sharded scan does, and so per-shard statistics stay independent
//! of the thread count.

use std::collections::{HashMap, HashSet};
use std::ops::Range;

use crate::error::{CoreError, Result};
use crate::object::ObjectId;
use crate::sketch::{BitVec, SketchedObject};

/// One indexed segment: the owning object and a copy of its sketch for
/// verification without chasing back into the engine's maps.
#[derive(Debug, Clone)]
struct IndexEntry {
    object: ObjectId,
    sketch: BitVec,
}

/// A multi-index over segment sketches: `B` hash tables, one per bit-block,
/// mapping the block's value to the entries carrying it.
///
/// Removal is tombstone-based (entries are marked dead, postings stay in
/// place); a shard never shrinks until rebuilt, which keeps removal O(1)
/// per segment and keeps probe statistics deterministic.
#[derive(Debug, Clone)]
pub struct SketchIndex {
    nbits: usize,
    block_ranges: Vec<Range<usize>>,
    /// `tables[b][key]` lists indices into `entries` whose block `b` equals
    /// `key`. Keys fit in a `u64` because blocks are at most 64 bits wide.
    tables: Vec<HashMap<u64, Vec<u32>>>,
    entries: Vec<IndexEntry>,
    dead: Vec<bool>,
    /// Each object's contiguous entry range (its segments are appended
    /// together), for O(1) removal.
    by_object: HashMap<ObjectId, Range<u32>>,
    /// Objects ever inserted (monotone; drives shard rollover).
    inserted_objects: usize,
    live_objects: usize,
    live_segments: usize,
}

impl SketchIndex {
    /// Creates an index for `nbits`-long sketches with the default block
    /// count ([`SketchIndex::default_blocks`]).
    pub fn new(nbits: usize) -> Result<Self> {
        Self::with_blocks(nbits, Self::default_blocks(nbits))
    }

    /// Creates an index with an explicit block count `B`. The guaranteed
    /// exact probe radius is `B − 1`; more blocks raise the radius but
    /// shrink each block, making buckets denser and probes slower.
    pub fn with_blocks(nbits: usize, blocks: usize) -> Result<Self> {
        if nbits == 0 {
            return Err(CoreError::InvalidSketchParams(
                "sketch index needs at least one bit".into(),
            ));
        }
        if blocks == 0 || blocks > nbits {
            return Err(CoreError::InvalidSketchParams(format!(
                "block count {blocks} outside [1, {nbits}]"
            )));
        }
        if nbits.div_ceil(blocks) > 64 {
            return Err(CoreError::InvalidSketchParams(format!(
                "{blocks} blocks over {nbits} bits exceed 64 bits per block"
            )));
        }
        // Near-equal split: the first `nbits % blocks` blocks get one
        // extra bit, so ranges tile [0, nbits) exactly.
        let base = nbits / blocks;
        let extra = nbits % blocks;
        let mut block_ranges = Vec::with_capacity(blocks);
        let mut start = 0;
        for b in 0..blocks {
            let len = base + usize::from(b < extra);
            block_ranges.push(start..start + len);
            start += len;
        }
        debug_assert_eq!(start, nbits);
        Ok(Self {
            nbits,
            block_ranges,
            tables: vec![HashMap::new(); blocks],
            entries: Vec::new(),
            dead: Vec::new(),
            by_object: HashMap::new(),
            inserted_objects: 0,
            live_objects: 0,
            live_segments: 0,
        })
    }

    /// The default block count for `nbits`-long sketches: 8-bit blocks
    /// (a guaranteed exact radius of `nbits/8 − 1`, ~12% of the sketch),
    /// clamped so each block holds between 1 and 64 bits.
    pub fn default_blocks(nbits: usize) -> usize {
        (nbits / 8).clamp(nbits.div_ceil(64).max(1), nbits.max(1))
    }

    /// Sketch length this index accepts, in bits.
    pub fn nbits(&self) -> usize {
        self.nbits
    }

    /// Number of bit-blocks `B`.
    pub fn num_blocks(&self) -> usize {
        self.block_ranges.len()
    }

    /// The largest Hamming distance at which a probe is guaranteed to find
    /// every match: `B − 1` (pigeonhole over `B` disjoint blocks).
    pub fn exact_radius(&self) -> u32 {
        (self.num_blocks() - 1) as u32
    }

    /// The bit range of block `b`.
    pub fn block_range(&self, b: usize) -> Range<usize> {
        self.block_ranges[b].clone()
    }

    /// Extracts block `b` of `sketch` as the bucket key.
    pub fn block_key(&self, sketch: &BitVec, b: usize) -> Result<u64> {
        if sketch.len() != self.nbits {
            return Err(CoreError::SketchLengthMismatch {
                left: sketch.len(),
                right: self.nbits,
            });
        }
        let range = &self.block_ranges[b];
        Ok(extract_bits(sketch.words(), range.start, range.len()))
    }

    /// The entry indices whose block `b` equals `key`, if any.
    pub fn bucket(&self, b: usize, key: u64) -> Option<&[u32]> {
        self.tables[b].get(&key).map(Vec::as_slice)
    }

    /// Number of distinct buckets in block `b`'s table.
    pub fn buckets_in_block(&self, b: usize) -> usize {
        self.tables[b].len()
    }

    /// Resolves an entry index to its object and sketch; `None` if the
    /// entry was removed (tombstoned).
    pub fn entry(&self, idx: u32) -> Option<(ObjectId, &BitVec)> {
        let i = idx as usize;
        if self.dead[i] {
            return None;
        }
        let e = &self.entries[i];
        Some((e.object, &e.sketch))
    }

    /// True if `id` is live in this shard.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.by_object.contains_key(&id)
    }

    /// Live objects.
    pub fn len(&self) -> usize {
        self.live_objects
    }

    /// True if no live objects remain.
    pub fn is_empty(&self) -> bool {
        self.live_objects == 0
    }

    /// Live segments.
    pub fn live_segments(&self) -> usize {
        self.live_segments
    }

    /// Objects ever inserted, including removed ones (monotone).
    pub fn inserted_objects(&self) -> usize {
        self.inserted_objects
    }

    /// Indexes every segment sketch of `so` under `id`.
    pub fn insert(&mut self, id: ObjectId, so: &SketchedObject) -> Result<()> {
        if self.by_object.contains_key(&id) {
            return Err(CoreError::DuplicateObject(id.0));
        }
        for sketch in &so.sketches {
            if sketch.len() != self.nbits {
                return Err(CoreError::SketchLengthMismatch {
                    left: sketch.len(),
                    right: self.nbits,
                });
            }
        }
        let start = self.entries.len() as u32;
        for sketch in &so.sketches {
            let idx = self.entries.len() as u32;
            for (b, range) in self.block_ranges.iter().enumerate() {
                let key = extract_bits(sketch.words(), range.start, range.len());
                self.tables[b].entry(key).or_default().push(idx);
            }
            self.entries.push(IndexEntry {
                object: id,
                sketch: sketch.clone(),
            });
            self.dead.push(false);
        }
        self.by_object.insert(id, start..self.entries.len() as u32);
        self.inserted_objects += 1;
        self.live_objects += 1;
        self.live_segments += so.sketches.len();
        Ok(())
    }

    /// Tombstones every entry of `id`; returns `true` if it was present.
    pub fn remove(&mut self, id: ObjectId) -> bool {
        let Some(range) = self.by_object.remove(&id) else {
            return false;
        };
        for i in range.start..range.end {
            self.dead[i as usize] = true;
        }
        self.live_objects -= 1;
        self.live_segments -= (range.end - range.start) as usize;
        true
    }

    /// Approximate resident size in bytes: entry sketches, posting lists,
    /// and table overhead. Tombstoned entries still count — they occupy
    /// memory until a rebuild.
    pub fn memory_bytes(&self) -> usize {
        let sketch_bytes = 8 * self.nbits.div_ceil(64) + std::mem::size_of::<BitVec>();
        let entry_bytes = sketch_bytes + std::mem::size_of::<IndexEntry>();
        let mut total = self.entries.len() * entry_bytes + self.dead.len();
        for table in &self.tables {
            // Per bucket: key + Vec header + hash-map slot overhead.
            total += table.len() * (8 + std::mem::size_of::<Vec<u32>>() + 8);
            total += table.values().map(|v| v.capacity() * 4).sum::<usize>();
        }
        total += self.by_object.len() * (std::mem::size_of::<(ObjectId, Range<u32>)>() + 8);
        total
    }
}

/// Extracts `len` bits (`1..=64`) starting at bit `start` from packed
/// little-endian words.
fn extract_bits(words: &[u64], start: usize, len: usize) -> u64 {
    debug_assert!((1..=64).contains(&len));
    let w = start / 64;
    let off = start % 64;
    let lo = words[w] >> off;
    let got = 64 - off;
    let val = if got >= len {
        lo
    } else {
        lo | (words[w + 1] << got)
    };
    if len == 64 {
        val
    } else {
        val & ((1u64 << len) - 1)
    }
}

/// Default number of objects per shard of a [`ShardedSketchIndex`].
pub const DEFAULT_SHARD_OBJECTS: usize = 4096;

/// A sharded multi-index: fixed-capacity [`SketchIndex`] shards filled in
/// insertion order, so probes parallelize per shard exactly like the
/// sharded filtering scan, with per-shard statistics (and therefore merged
/// results) independent of the thread count.
#[derive(Debug, Clone)]
pub struct ShardedSketchIndex {
    nbits: usize,
    blocks: usize,
    shard_objects: usize,
    shards: Vec<SketchIndex>,
}

impl ShardedSketchIndex {
    /// Creates an empty sharded index for `nbits`-long sketches with
    /// default block count and shard capacity.
    pub fn new(nbits: usize) -> Result<Self> {
        Self::with_options(
            nbits,
            SketchIndex::default_blocks(nbits),
            DEFAULT_SHARD_OBJECTS,
        )
    }

    /// Creates an empty sharded index with explicit block count and
    /// objects-per-shard capacity.
    pub fn with_options(nbits: usize, blocks: usize, shard_objects: usize) -> Result<Self> {
        // Validate the geometry once up front by building a throwaway shard.
        SketchIndex::with_blocks(nbits, blocks)?;
        if shard_objects == 0 {
            return Err(CoreError::InvalidSketchParams(
                "shard capacity must be at least one object".into(),
            ));
        }
        Ok(Self {
            nbits,
            blocks,
            shard_objects,
            shards: Vec::new(),
        })
    }

    /// Sketch length this index accepts, in bits.
    pub fn nbits(&self) -> usize {
        self.nbits
    }

    /// Number of bit-blocks per shard.
    pub fn num_blocks(&self) -> usize {
        self.blocks
    }

    /// The guaranteed exact probe radius, `B − 1`.
    pub fn exact_radius(&self) -> u32 {
        (self.blocks - 1) as u32
    }

    /// The shards, in insertion order.
    pub fn shards(&self) -> &[SketchIndex] {
        &self.shards
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Live objects across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(SketchIndex::len).sum()
    }

    /// True if no live objects remain.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(SketchIndex::is_empty)
    }

    /// Live segments across all shards.
    pub fn live_segments(&self) -> usize {
        self.shards.iter().map(SketchIndex::live_segments).sum()
    }

    /// True if `id` is live in any shard.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.shards.iter().any(|s| s.contains(id))
    }

    /// Indexes `so` under `id`, opening a new shard when the current one
    /// is at capacity.
    pub fn insert(&mut self, id: ObjectId, so: &SketchedObject) -> Result<()> {
        if self.contains(id) {
            return Err(CoreError::DuplicateObject(id.0));
        }
        let needs_shard = self
            .shards
            .last()
            .is_none_or(|s| s.inserted_objects() >= self.shard_objects);
        if needs_shard {
            self.shards
                .push(SketchIndex::with_blocks(self.nbits, self.blocks)?);
        }
        self.shards
            .last_mut()
            .expect("shard just ensured")
            .insert(id, so)
    }

    /// Removes `id` from whichever shard holds it; returns `true` if it
    /// was present.
    pub fn remove(&mut self, id: ObjectId) -> bool {
        self.shards.iter_mut().any(|s| s.remove(id))
    }

    /// Approximate resident size in bytes across all shards.
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(SketchIndex::memory_bytes).sum()
    }
}

/// Returns the distinct live objects within Hamming distance `radius` of
/// `sketch`, by brute force over the index's own entries. Test/diagnostic
/// helper for validating the pigeonhole guarantee.
pub fn brute_force_within(
    index: &ShardedSketchIndex,
    sketch: &BitVec,
    radius: u32,
) -> Result<HashSet<ObjectId>> {
    let mut out = HashSet::new();
    for shard in index.shards() {
        for i in 0..shard.entries.len() as u32 {
            if let Some((id, s)) = shard.entry(i) {
                if sketch.hamming(s)? <= radius {
                    out.insert(id);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn so(sketches: Vec<BitVec>) -> SketchedObject {
        let n = sketches.len();
        SketchedObject {
            weights: vec![1.0 / n as f32; n],
            sketches,
        }
    }

    fn bits(nbits: usize, ones: &[usize]) -> BitVec {
        let mut b = BitVec::zeros(nbits);
        for &i in ones {
            b.set(i, true);
        }
        b
    }

    #[test]
    fn default_blocks_respects_bounds() {
        assert_eq!(SketchIndex::default_blocks(128), 16);
        assert_eq!(SketchIndex::default_blocks(64), 8);
        // Tiny sketches: at least one block.
        assert_eq!(SketchIndex::default_blocks(4), 1);
        // Huge sketches: blocks may not exceed 64 bits each.
        assert!(SketchIndex::default_blocks(100_000) >= 100_000usize.div_ceil(64));
        for nbits in [1usize, 7, 63, 64, 65, 127, 128, 1000] {
            let b = SketchIndex::default_blocks(nbits);
            assert!(SketchIndex::with_blocks(nbits, b).is_ok(), "nbits {nbits}");
        }
    }

    #[test]
    fn block_ranges_tile_the_sketch() {
        let idx = SketchIndex::with_blocks(100, 7).unwrap();
        let mut covered = 0;
        for b in 0..idx.num_blocks() {
            let r = idx.block_range(b);
            assert_eq!(r.start, covered);
            assert!(r.len() <= 64 && !r.is_empty());
            covered = r.end;
        }
        assert_eq!(covered, 100);
    }

    #[test]
    fn geometry_validation() {
        assert!(SketchIndex::with_blocks(0, 1).is_err());
        assert!(SketchIndex::with_blocks(64, 0).is_err());
        assert!(SketchIndex::with_blocks(4, 5).is_err());
        // 130 bits in one block would exceed 64 bits per key.
        assert!(SketchIndex::with_blocks(130, 1).is_err());
        assert!(SketchIndex::with_blocks(130, 3).is_ok());
    }

    #[test]
    fn block_key_extracts_exact_bits() {
        // 100 bits split unevenly; keys must match a manual bit read.
        let idx = SketchIndex::with_blocks(100, 3).unwrap();
        let sketch = bits(100, &[0, 5, 33, 34, 63, 64, 65, 80, 99]);
        for b in 0..idx.num_blocks() {
            let r = idx.block_range(b);
            let mut expect = 0u64;
            for (pos, i) in (r.start..r.end).enumerate() {
                if sketch.get(i) {
                    expect |= 1u64 << pos;
                }
            }
            assert_eq!(idx.block_key(&sketch, b).unwrap(), expect, "block {b}");
        }
        let short = BitVec::zeros(99);
        assert!(idx.block_key(&short, 0).is_err());
    }

    #[test]
    fn every_block_of_an_inserted_sketch_is_findable() {
        let mut idx = SketchIndex::new(64).unwrap();
        let s = bits(64, &[1, 8, 17, 40, 63]);
        idx.insert(ObjectId(7), &so(vec![s.clone()])).unwrap();
        for b in 0..idx.num_blocks() {
            let key = idx.block_key(&s, b).unwrap();
            let bucket = idx.bucket(b, key).expect("bucket exists");
            assert!(bucket.iter().any(|&e| {
                idx.entry(e)
                    .is_some_and(|(id, sk)| id == ObjectId(7) && *sk == s)
            }));
        }
    }

    #[test]
    fn pigeonhole_probe_finds_all_within_radius() {
        // Brute-force check of the exactness guarantee: every sketch
        // within distance B-1 of the query appears in >= 1 probed bucket.
        let nbits = 64;
        let mut idx = ShardedSketchIndex::with_options(nbits, 8, 16).unwrap();
        let query = bits(nbits, &[0, 9, 20, 33, 47, 61]);
        for i in 0..200u64 {
            // Flip i%16 bits of the query, spread across the sketch.
            let flips: Vec<usize> = (0..(i % 16) as usize)
                .map(|j| (j * 13 + i as usize) % nbits)
                .collect();
            let mut s = query.clone();
            for &f in &flips {
                s.set(f, !s.get(f));
            }
            idx.insert(ObjectId(i), &so(vec![s])).unwrap();
        }
        let within = brute_force_within(&idx, &query, idx.exact_radius()).unwrap();
        // Union of probed buckets across all shards.
        let mut probed = HashSet::new();
        for shard in idx.shards() {
            for b in 0..shard.num_blocks() {
                let key = shard.block_key(&query, b).unwrap();
                for &e in shard.bucket(b, key).unwrap_or(&[]) {
                    if let Some((id, _)) = shard.entry(e) {
                        probed.insert(id);
                    }
                }
            }
        }
        assert!(!within.is_empty(), "test corpus must have near matches");
        for id in &within {
            assert!(probed.contains(id), "{id:?} within radius but not probed");
        }
    }

    #[test]
    fn insert_remove_reinsert_lifecycle() {
        let mut idx = SketchIndex::new(64).unwrap();
        let a = bits(64, &[1, 2, 3]);
        let b = bits(64, &[60, 61]);
        idx.insert(ObjectId(1), &so(vec![a.clone(), b.clone()]))
            .unwrap();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.live_segments(), 2);
        assert!(matches!(
            idx.insert(ObjectId(1), &so(vec![a.clone()])),
            Err(CoreError::DuplicateObject(1))
        ));
        assert!(idx.remove(ObjectId(1)));
        assert!(!idx.remove(ObjectId(1)));
        assert!(idx.is_empty());
        assert_eq!(idx.live_segments(), 0);
        // Tombstoned entries resolve to None.
        assert!(idx.entry(0).is_none());
        // Re-insert after removal: new live entries, old ones stay dead.
        idx.insert(ObjectId(1), &so(vec![a.clone()])).unwrap();
        assert_eq!(idx.len(), 1);
        let key = idx.block_key(&a, 0).unwrap();
        let live: Vec<_> = idx
            .bucket(0, key)
            .unwrap()
            .iter()
            .filter_map(|&e| idx.entry(e))
            .collect();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].0, ObjectId(1));
    }

    #[test]
    fn length_mismatch_rejected_on_insert() {
        let mut idx = SketchIndex::new(64).unwrap();
        assert!(idx
            .insert(ObjectId(1), &so(vec![BitVec::zeros(65)]))
            .is_err());
        assert!(idx.is_empty());
    }

    #[test]
    fn sharding_rolls_over_at_capacity() {
        let mut idx = ShardedSketchIndex::with_options(64, 8, 2).unwrap();
        for i in 0..5u64 {
            idx.insert(ObjectId(i), &so(vec![bits(64, &[i as usize])]))
                .unwrap();
        }
        assert_eq!(idx.num_shards(), 3);
        assert_eq!(idx.len(), 5);
        assert!(idx.contains(ObjectId(4)));
        assert!(idx.remove(ObjectId(0)));
        assert_eq!(idx.len(), 4);
        // Rollover counts insertions, not live objects: removing from a
        // full shard does not reopen it.
        idx.insert(ObjectId(9), &so(vec![bits(64, &[9])])).unwrap();
        assert_eq!(idx.num_shards(), 3);
        assert!(matches!(
            idx.insert(ObjectId(9), &so(vec![bits(64, &[9])])),
            Err(CoreError::DuplicateObject(9))
        ));
        assert!(idx.memory_bytes() > 0);
    }

    #[test]
    fn extract_bits_handles_word_straddles() {
        let mut v = BitVec::zeros(128);
        v.set(62, true);
        v.set(63, true);
        v.set(64, true);
        v.set(66, true);
        // 8 bits starting at 60: bits 60..68 -> 0b0101_1100 read LSB-first.
        assert_eq!(extract_bits(v.words(), 60, 8), 0b0101_1100);
        // Full first word.
        assert_eq!(extract_bits(v.words(), 0, 64), v.words()[0]);
        // 64 bits straddling both words.
        let expect = (v.words()[0] >> 32) | (v.words()[1] << 32);
        assert_eq!(extract_bits(v.words(), 32, 64), expect);
    }
}
