//! Out-of-core sketch database.
//!
//! The paper's future work calls for "more efficient out-of-core indexing
//! data structures for similarity search to further improve support for
//! very large data sets" (§8). This module implements the natural first
//! step: a flat, append-only sketch file that the filtering unit streams
//! block-by-block, so filtering works on datasets whose sketches do not
//! fit in memory.
//!
//! File layout (little-endian):
//!
//! ```text
//! magic "FSKD"  version: u32  nbits: u32
//! record*: id: u64, k: u32, then per segment: weight: f32, sketch words
//!          (ceil(nbits / 64) × u64)
//! ```

use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ferret_store::vfs::{StdVfs, Vfs, VfsFile};

use crate::error::{CoreError, Result};
use crate::filter::{FilterParams, FilterScan, FilterStats};
use crate::object::ObjectId;
use crate::sketch::{BitVec, SketchedObject};

const MAGIC: u32 = u32::from_le_bytes(*b"FSKD");
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 12;

/// Upper bound on segments per record, guarding recovery from corrupt
/// counts.
const MAX_SEGMENTS: u32 = 1 << 20;

/// Records per chunk in the sharded scan's offset index. Small enough to
/// balance shards on modest files, large enough that the index stays
/// tiny relative to the data.
const CHUNK_RECORDS: usize = 256;

fn io_err(context: &str, e: std::io::Error) -> CoreError {
    CoreError::Io(format!("{context}: {e}"))
}

/// Appends sketched objects to a sketch file.
pub struct SketchFileWriter {
    writer: BufWriter<Box<dyn VfsFile>>,
    path: PathBuf,
    nbits: usize,
    records: u64,
}

impl SketchFileWriter {
    /// Creates (truncating) a sketch file for `nbits`-bit sketches.
    pub fn create(path: &Path, nbits: usize) -> Result<Self> {
        Self::create_with_vfs(&StdVfs, path, nbits)
    }

    /// [`SketchFileWriter::create`] over an explicit [`Vfs`] — the seam
    /// fault-injection tests use to tear or fail individual writes.
    pub fn create_with_vfs(vfs: &dyn Vfs, path: &Path, nbits: usize) -> Result<Self> {
        if nbits == 0 {
            return Err(CoreError::InvalidSketchParams("nbits must be > 0".into()));
        }
        let file = vfs
            .create(path)
            .map_err(|e| io_err("create sketch file", e))?;
        let mut writer = BufWriter::new(file);
        writer
            .write_all(&MAGIC.to_le_bytes())
            .and_then(|()| writer.write_all(&VERSION.to_le_bytes()))
            .and_then(|()| writer.write_all(&(nbits as u32).to_le_bytes()))
            .map_err(|e| io_err("write header", e))?;
        Ok(Self {
            writer,
            path: path.to_path_buf(),
            nbits,
            records: 0,
        })
    }

    /// Sketch length this file stores.
    pub fn nbits(&self) -> usize {
        self.nbits
    }

    /// Records appended so far.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// True if no records were appended.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Appends one object's sketches.
    pub fn append(&mut self, id: ObjectId, so: &SketchedObject) -> Result<()> {
        if so.num_segments() == 0 {
            return Err(CoreError::EmptyObject);
        }
        for s in &so.sketches {
            if s.len() != self.nbits {
                return Err(CoreError::SketchLengthMismatch {
                    left: s.len(),
                    right: self.nbits,
                });
            }
        }
        let w = &mut self.writer;
        w.write_all(&id.0.to_le_bytes())
            .and_then(|()| w.write_all(&(so.num_segments() as u32).to_le_bytes()))
            .map_err(|e| io_err("write record header", e))?;
        for (weight, sketch) in so.weights.iter().zip(so.sketches.iter()) {
            w.write_all(&weight.to_le_bytes())
                .map_err(|e| io_err("write weight", e))?;
            for word in sketch.words() {
                w.write_all(&word.to_le_bytes())
                    .map_err(|e| io_err("write sketch", e))?;
            }
        }
        self.records += 1;
        Ok(())
    }

    /// Flushes and fsyncs the file.
    pub fn finish(mut self) -> Result<PathBuf> {
        self.writer.flush().map_err(|e| io_err("flush", e))?;
        self.writer
            .get_mut()
            .sync_all()
            .map_err(|e| io_err("sync", e))?;
        Ok(self.path)
    }
}

/// Streams records back out of a sketch file.
pub struct SketchFileReader {
    reader: BufReader<Box<dyn VfsFile>>,
    nbits: usize,
}

/// Reads and validates the file header, returning `nbits`.
fn read_header<R: Read>(reader: &mut R) -> Result<usize> {
    let mut header = [0u8; HEADER_LEN as usize];
    reader
        .read_exact(&mut header)
        .map_err(|e| io_err("read header", e))?;
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("len"));
    if magic != MAGIC {
        return Err(CoreError::Io("bad sketch file magic".into()));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("len"));
    if version != VERSION {
        return Err(CoreError::Io(format!("unsupported version {version}")));
    }
    let nbits = u32::from_le_bytes(header[8..12].try_into().expect("len")) as usize;
    if nbits == 0 {
        return Err(CoreError::Io("zero sketch length".into()));
    }
    Ok(nbits)
}

impl SketchFileReader {
    /// Opens a sketch file and validates its header.
    pub fn open(path: &Path) -> Result<Self> {
        Self::open_with_vfs(&StdVfs, path)
    }

    /// [`SketchFileReader::open`] over an explicit [`Vfs`].
    pub fn open_with_vfs(vfs: &dyn Vfs, path: &Path) -> Result<Self> {
        let file = vfs
            .open_read(path)
            .map_err(|e| io_err("open sketch file", e))?;
        let mut reader = BufReader::new(file);
        let nbits = read_header(&mut reader)?;
        Ok(Self { reader, nbits })
    }

    /// Repositions the reader at an absolute byte offset (at or past the
    /// header), as recorded by a chunk offset index. Sharded scans use
    /// this so every worker thread reads its own file region through its
    /// own handle.
    pub fn seek_to(&mut self, offset: u64) -> Result<()> {
        if offset < HEADER_LEN {
            return Err(CoreError::Io(format!(
                "offset {offset} inside sketch file header"
            )));
        }
        self.reader
            .seek(SeekFrom::Start(offset))
            .map_err(|e| io_err("seek sketch file", e))?;
        Ok(())
    }

    /// Sketch length this file stores.
    pub fn nbits(&self) -> usize {
        self.nbits
    }

    /// Reads the next record into `buffer` (reused across calls to avoid
    /// allocation); `Ok(None)` at a clean end of file.
    pub fn read_into(&mut self, buffer: &mut SketchedObject) -> Result<Option<ObjectId>> {
        let mut id_bytes = [0u8; 8];
        match self.reader.read_exact(&mut id_bytes) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(io_err("read record id", e)),
        }
        let id = ObjectId(u64::from_le_bytes(id_bytes));
        let mut k_bytes = [0u8; 4];
        self.reader
            .read_exact(&mut k_bytes)
            .map_err(|e| io_err("read segment count", e))?;
        let k = u32::from_le_bytes(k_bytes);
        if k == 0 || k > MAX_SEGMENTS {
            return Err(CoreError::Io(format!("implausible segment count {k}")));
        }
        let k = k as usize;
        let words = self.nbits.div_ceil(64);
        buffer.weights.clear();
        buffer.sketches.clear();
        let mut word_buf = vec![0u8; words * 8];
        for _ in 0..k {
            let mut wbytes = [0u8; 4];
            self.reader
                .read_exact(&mut wbytes)
                .map_err(|e| io_err("read weight", e))?;
            buffer.weights.push(f32::from_le_bytes(wbytes));
            self.reader
                .read_exact(&mut word_buf)
                .map_err(|e| io_err("read sketch", e))?;
            // Reconstruct the bit vector from the raw words.
            let mut bytes = Vec::with_capacity(8 + word_buf.len());
            bytes.extend_from_slice(&(self.nbits as u64).to_le_bytes());
            bytes.extend_from_slice(&word_buf);
            buffer.sketches.push(BitVec::from_bytes(&bytes)?);
        }
        Ok(Some(id))
    }

    /// Visits every record in file order.
    pub fn for_each<F>(&mut self, mut visit: F) -> Result<usize>
    where
        F: FnMut(ObjectId, &SketchedObject) -> Result<()>,
    {
        let mut buffer = SketchedObject {
            weights: Vec::new(),
            sketches: Vec::new(),
        };
        let mut count = 0usize;
        while let Some(id) = self.read_into(&mut buffer)? {
            visit(id, &buffer)?;
            count += 1;
        }
        Ok(count)
    }
}

/// Runs the filtering step against an on-disk sketch database without
/// loading it into memory.
pub fn filter_candidates_on_disk(
    path: &Path,
    query: &SketchedObject,
    params: &FilterParams,
) -> Result<(std::collections::HashSet<ObjectId>, FilterStats)> {
    filter_candidates_on_disk_with_vfs(&StdVfs, path, query, params)
}

/// [`filter_candidates_on_disk`] over an explicit [`Vfs`].
pub fn filter_candidates_on_disk_with_vfs(
    vfs: &dyn Vfs,
    path: &Path,
    query: &SketchedObject,
    params: &FilterParams,
) -> Result<(std::collections::HashSet<ObjectId>, FilterStats)> {
    let mut reader = SketchFileReader::open_with_vfs(vfs, path)?;
    check_query_len(query, reader.nbits())?;
    let mut scan = FilterScan::new(query, params)?;
    reader.for_each(|id, so| scan.observe(id, so))?;
    Ok(scan.finish())
}

fn check_query_len(query: &SketchedObject, nbits: usize) -> Result<()> {
    for s in &query.sketches {
        if s.len() != nbits {
            return Err(CoreError::SketchLengthMismatch {
                left: s.len(),
                right: nbits,
            });
        }
    }
    Ok(())
}

/// One entry of the offset index: where a run of records starts and how
/// many records it holds.
#[derive(Debug, Clone, Copy)]
struct Chunk {
    offset: u64,
    records: usize,
}

/// Indexes the file into runs of at most `chunk_records` records by
/// seek-skipping record payloads (no sketch decoding). Returns `nbits`
/// and the chunk list.
fn chunk_offsets(vfs: &dyn Vfs, path: &Path, chunk_records: usize) -> Result<(usize, Vec<Chunk>)> {
    let file = vfs
        .open_read(path)
        .map_err(|e| io_err("open sketch file", e))?;
    let mut reader = BufReader::new(file);
    let nbits = read_header(&mut reader)?;
    let words = nbits.div_ceil(64) as u64;
    let mut chunks = Vec::new();
    let mut pos = HEADER_LEN;
    let mut chunk_start = pos;
    let mut in_chunk = 0usize;
    loop {
        let mut record_header = [0u8; 12];
        match reader.read_exact(&mut record_header) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(io_err("read record header", e)),
        }
        let k = u32::from_le_bytes(record_header[8..12].try_into().expect("len"));
        if k == 0 || k > MAX_SEGMENTS {
            return Err(CoreError::Io(format!("implausible segment count {k}")));
        }
        let payload = u64::from(k) * (4 + words * 8);
        reader
            .seek_relative(payload as i64)
            .map_err(|e| io_err("skip record payload", e))?;
        pos += 12 + payload;
        in_chunk += 1;
        if in_chunk == chunk_records {
            chunks.push(Chunk {
                offset: chunk_start,
                records: in_chunk,
            });
            chunk_start = pos;
            in_chunk = 0;
        }
    }
    if in_chunk > 0 {
        chunks.push(Chunk {
            offset: chunk_start,
            records: in_chunk,
        });
    }
    Ok((nbits, chunks))
}

/// Sharded out-of-core filtering: indexes the file into record chunks,
/// assigns contiguous chunk runs to `threads` scoped workers — each with
/// its own file handle seeked to its run's start — and merges the
/// per-shard scans.
///
/// Candidates and statistics are bit-identical to
/// [`filter_candidates_on_disk`] for every thread count, because heap
/// admission in [`FilterScan`] is scan-order independent.
pub fn filter_candidates_on_disk_sharded(
    path: &Path,
    query: &SketchedObject,
    params: &FilterParams,
    threads: usize,
) -> Result<(std::collections::HashSet<ObjectId>, FilterStats)> {
    filter_candidates_on_disk_sharded_with_vfs(&StdVfs, path, query, params, threads)
}

/// [`filter_candidates_on_disk_sharded`] over an explicit [`Vfs`]. Every
/// worker opens its own handle through the shared `vfs`.
pub fn filter_candidates_on_disk_sharded_with_vfs(
    vfs: &dyn Vfs,
    path: &Path,
    query: &SketchedObject,
    params: &FilterParams,
    threads: usize,
) -> Result<(std::collections::HashSet<ObjectId>, FilterStats)> {
    if threads <= 1 {
        return filter_candidates_on_disk_with_vfs(vfs, path, query, params);
    }
    let (nbits, chunks) = chunk_offsets(vfs, path, CHUNK_RECORDS)?;
    check_query_len(query, nbits)?;
    if chunks.len() <= 1 {
        return filter_candidates_on_disk_with_vfs(vfs, path, query, params);
    }
    let shard_scans = crate::parallel::map_shards(threads, chunks.len(), |_, range| {
        let run = &chunks[range];
        let mut scan = FilterScan::new(query, params)?;
        let mut reader = SketchFileReader::open_with_vfs(vfs, path)?;
        reader.seek_to(run[0].offset)?;
        let records: usize = run.iter().map(|c| c.records).sum();
        let mut buffer = SketchedObject {
            weights: Vec::new(),
            sketches: Vec::new(),
        };
        for _ in 0..records {
            match reader.read_into(&mut buffer)? {
                Some(id) => scan.observe(id, &buffer)?,
                None => {
                    return Err(CoreError::Io(
                        "sketch file shrank during sharded scan".into(),
                    ))
                }
            }
        }
        Ok(scan)
    });
    let mut merged: Option<FilterScan> = None;
    for scan in shard_scans {
        let scan = scan?;
        match &mut merged {
            None => merged = Some(scan),
            Some(m) => m.merge(scan),
        }
    }
    let scan = merged.expect("chunk list non-empty");
    Ok(scan.finish())
}

#[cfg(test)]
// Tests write fixture files directly; the Vfs seam is for production durability.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use crate::filter::filter_candidates;
    use crate::sketch::{SketchBuilder, SketchParams};
    use crate::vector::FeatureVector;

    fn tmpfile(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ferret-diskdb-{name}-{}.fskd", std::process::id()))
    }

    fn sketched_objects(n: usize, nbits: usize) -> Vec<(ObjectId, SketchedObject)> {
        let params = SketchParams::new(nbits, vec![0.0; 4], vec![1.0; 4]).unwrap();
        let builder = SketchBuilder::new(params, 7);
        (0..n)
            .map(|i| {
                let x = (i as f32 + 0.5) / n as f32;
                let obj = crate::object::DataObject::new(vec![
                    (FeatureVector::from_components(vec![x, 1.0 - x, x, x]), 0.6),
                    (
                        FeatureVector::from_components(vec![1.0 - x, x, 0.5, x]),
                        0.4,
                    ),
                ])
                .unwrap();
                (ObjectId(i as u64), builder.sketch_object(&obj).unwrap())
            })
            .collect()
    }

    #[test]
    fn write_read_roundtrip() {
        let path = tmpfile("roundtrip");
        let objects = sketched_objects(10, 96);
        let mut writer = SketchFileWriter::create(&path, 96).unwrap();
        assert!(writer.is_empty());
        for (id, so) in &objects {
            writer.append(*id, so).unwrap();
        }
        assert_eq!(writer.len(), 10);
        writer.finish().unwrap();

        let mut reader = SketchFileReader::open(&path).unwrap();
        assert_eq!(reader.nbits(), 96);
        let mut seen = Vec::new();
        reader
            .for_each(|id, so| {
                seen.push((id, so.clone()));
                Ok(())
            })
            .unwrap();
        assert_eq!(seen.len(), 10);
        for ((id_a, so_a), (id_b, so_b)) in objects.iter().zip(seen.iter()) {
            assert_eq!(id_a, id_b);
            assert_eq!(so_a, so_b);
        }
        std::fs::remove_file(&path).ok();
    }

    /// Out-of-core filtering must produce exactly the same candidates and
    /// statistics as the in-memory scan.
    #[test]
    fn disk_filter_matches_memory_filter() {
        let path = tmpfile("parity");
        let objects = sketched_objects(200, 128);
        let mut writer = SketchFileWriter::create(&path, 128).unwrap();
        for (id, so) in &objects {
            writer.append(*id, so).unwrap();
        }
        writer.finish().unwrap();

        let query = objects[3].1.clone();
        let params = FilterParams {
            query_segments: 2,
            candidates_per_segment: 15,
            ..FilterParams::default()
        };
        let (mem_cands, mem_stats) =
            filter_candidates(&query, objects.iter().map(|(id, so)| (*id, so)), &params).unwrap();
        let (disk_cands, disk_stats) = filter_candidates_on_disk(&path, &query, &params).unwrap();
        assert_eq!(mem_cands, disk_cands);
        assert_eq!(mem_stats, disk_stats);
        assert!(mem_cands.contains(&ObjectId(3)));
        std::fs::remove_file(&path).ok();
    }

    /// The sharded disk scan must be bit-identical to the serial disk
    /// scan (and hence to the in-memory scan) for every thread count,
    /// including counts that do not divide the chunk count evenly.
    #[test]
    fn sharded_disk_filter_matches_serial() {
        let path = tmpfile("sharded");
        // More than two CHUNK_RECORDS chunks so sharding really splits.
        let objects = sketched_objects(900, 128);
        let mut writer = SketchFileWriter::create(&path, 128).unwrap();
        for (id, so) in &objects {
            writer.append(*id, so).unwrap();
        }
        writer.finish().unwrap();

        let query = objects[11].1.clone();
        let params = FilterParams {
            query_segments: 2,
            candidates_per_segment: 25,
            ..FilterParams::default()
        };
        let (serial_cands, serial_stats) =
            filter_candidates_on_disk(&path, &query, &params).unwrap();
        for threads in [1usize, 2, 3, 7, 16] {
            let (cands, stats) =
                filter_candidates_on_disk_sharded(&path, &query, &params, threads).unwrap();
            assert_eq!(serial_cands, cands, "threads {threads}");
            assert_eq!(serial_stats, stats, "threads {threads}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_disk_filter_rejects_bad_query_and_torn_files() {
        let path = tmpfile("sharded-bad");
        let objects = sketched_objects(600, 64);
        let mut writer = SketchFileWriter::create(&path, 64).unwrap();
        for (id, so) in &objects {
            writer.append(*id, so).unwrap();
        }
        writer.finish().unwrap();
        let bad_query = SketchedObject {
            weights: vec![1.0],
            sketches: vec![BitVec::zeros(128)],
        };
        assert!(matches!(
            filter_candidates_on_disk_sharded(&path, &bad_query, &FilterParams::default(), 4),
            Err(CoreError::SketchLengthMismatch { .. })
        ));
        // Torn tail record must surface as an error from some shard.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let query = objects[0].1.clone();
        assert!(
            filter_candidates_on_disk_sharded(&path, &query, &FilterParams::default(), 4).is_err()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_validates_input() {
        let path = tmpfile("validate");
        assert!(SketchFileWriter::create(&path, 0).is_err());
        let mut writer = SketchFileWriter::create(&path, 64).unwrap();
        // Wrong sketch length.
        let bad = SketchedObject {
            weights: vec![1.0],
            sketches: vec![BitVec::zeros(32)],
        };
        assert!(matches!(
            writer.append(ObjectId(1), &bad),
            Err(CoreError::SketchLengthMismatch { .. })
        ));
        // Empty object.
        let empty = SketchedObject {
            weights: vec![],
            sketches: vec![],
        };
        assert!(writer.append(ObjectId(1), &empty).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reader_rejects_garbage() {
        let path = tmpfile("garbage");
        std::fs::write(&path, b"not a sketch file").unwrap();
        assert!(SketchFileReader::open(&path).is_err());
        std::fs::write(&path, b"xy").unwrap();
        assert!(SketchFileReader::open(&path).is_err());
        assert!(SketchFileReader::open(Path::new("/no/such/file")).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_record_is_an_error() {
        let path = tmpfile("truncated");
        let objects = sketched_objects(3, 64);
        let mut writer = SketchFileWriter::create(&path, 64).unwrap();
        for (id, so) in &objects {
            writer.append(*id, so).unwrap();
        }
        writer.finish().unwrap();
        // Chop mid-record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let mut reader = SketchFileReader::open(&path).unwrap();
        let result = reader.for_each(|_, _| Ok(()));
        assert!(result.is_err(), "torn record must surface as an error");
        std::fs::remove_file(&path).ok();
    }

    /// ENOSPC mid-stream through the VFS seam: the writer surfaces the
    /// injected error, only a byte prefix lands on disk, and reading the
    /// torn file back errors instead of fabricating records.
    #[test]
    fn byte_budget_tears_sketch_file_and_reader_detects_it() {
        use ferret_store::vfs::{FaultPlan, FaultVfs};
        use std::sync::Arc;

        let path = tmpfile("enospc");
        let objects = sketched_objects(50, 64);
        // Enough budget for the header and a few records, then ENOSPC.
        let fault = FaultVfs::new(Arc::new(StdVfs), FaultPlan::with_byte_budget(400));
        let mut writer = SketchFileWriter::create_with_vfs(&fault, &path, 64).unwrap();
        let mut failed = None;
        for (id, so) in &objects {
            if let Err(e) = writer.append(*id, so) {
                failed = Some(e);
                break;
            }
        }
        // The BufWriter may defer the failure to finish(); either way the
        // injected error must surface, never be swallowed.
        let err = match failed {
            Some(e) => e,
            None => writer.finish().expect_err("budget never hit"),
        };
        match err {
            CoreError::Io(msg) => assert!(msg.contains("injected fault"), "{msg}"),
            other => panic!("unexpected error {other:?}"),
        }
        // A byte prefix landed; the reader must reject the torn record.
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.len() <= 400, "budget exceeded: {} bytes", bytes.len());
        if let Ok(mut reader) = SketchFileReader::open(&path) {
            assert!(reader.for_each(|_, _| Ok(())).is_err());
        }
        std::fs::remove_file(&path).ok();
    }

    /// A simulated crash while writing the sketch file: after the crash
    /// model runs, the surviving prefix parses only up to the tear — the
    /// sharded and serial scans both refuse to return partial results.
    #[test]
    fn crash_during_sketch_write_leaves_detectable_torn_tail() {
        use ferret_store::vfs::{FaultPlan, FaultVfs};
        use std::sync::Arc;

        let path = tmpfile("crash");
        let objects = sketched_objects(300, 64);
        // Event 0 is the create; the BufWriter's first ~8 KiB flush is
        // event 1 — crash there, mid-file, with a seeded torn write.
        let fault = FaultVfs::new(Arc::new(StdVfs), FaultPlan::crash_at(1, 11));
        let mut writer = SketchFileWriter::create_with_vfs(&fault, &path, 64).unwrap();
        let mut saw_error = false;
        for (id, so) in &objects {
            if writer.append(*id, so).is_err() {
                saw_error = true;
                break;
            }
        }
        if !saw_error {
            saw_error = writer.finish().is_err();
        }
        assert!(saw_error, "crash never surfaced");
        fault.crash().unwrap();
        // Whatever survived is a prefix; scanning it must either succeed
        // on whole records or error at the tear — never panic or loop.
        let query = objects[0].1.clone();
        let params = FilterParams::default();
        let serial = filter_candidates_on_disk(&path, &query, &params);
        let sharded = filter_candidates_on_disk_sharded(&path, &query, &params, 4);
        match (&serial, &sharded) {
            (Ok((a, _)), Ok((b, _))) => assert_eq!(a, b),
            (Err(_), _) | (_, Err(_)) => {}
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn query_sketch_length_checked() {
        let path = tmpfile("qlen");
        let objects = sketched_objects(3, 64);
        let mut writer = SketchFileWriter::create(&path, 64).unwrap();
        for (id, so) in &objects {
            writer.append(*id, so).unwrap();
        }
        writer.finish().unwrap();
        let bad_query = SketchedObject {
            weights: vec![1.0],
            sketches: vec![BitVec::zeros(128)],
        };
        assert!(matches!(
            filter_candidates_on_disk(&path, &bad_query, &FilterParams::default()),
            Err(CoreError::SketchLengthMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
