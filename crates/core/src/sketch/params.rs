//! Sketch construction parameters.
//!
//! To initialize the sketch construction unit one specifies (paper §4.1.1):
//! `N` (sketch size in bits), per-dimension `min`/`max` value ranges, an
//! optional per-dimension weight vector `w`, and the optional threshold
//! control `K` (default 1).

use crate::error::{CoreError, Result};
use crate::vector::FeatureVector;

/// Parameters of the sketch construction unit.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchParams {
    /// `N`: sketch size in bits.
    pub nbits: usize,
    /// `K`: number of raw bits XOR-folded into each sketch bit (threshold
    /// control; values above 1 dampen large distances).
    pub xor_folds: usize,
    /// `min[D]`: minimum value of each dimension.
    pub mins: Vec<f32>,
    /// `max[D]`: maximum value of each dimension.
    pub maxs: Vec<f32>,
    /// `w[D]`: relative importance of each dimension (uniform when `None`).
    pub dim_weights: Option<Vec<f32>>,
}

impl SketchParams {
    /// Creates parameters with uniform dimension weights and `K = 1`.
    pub fn new(nbits: usize, mins: Vec<f32>, maxs: Vec<f32>) -> Result<Self> {
        Self::with_options(nbits, 1, mins, maxs, None)
    }

    /// Creates fully specified parameters, validating every field.
    pub fn with_options(
        nbits: usize,
        xor_folds: usize,
        mins: Vec<f32>,
        maxs: Vec<f32>,
        dim_weights: Option<Vec<f32>>,
    ) -> Result<Self> {
        if nbits == 0 {
            return Err(CoreError::InvalidSketchParams("N must be > 0".into()));
        }
        if xor_folds == 0 {
            return Err(CoreError::InvalidSketchParams("K must be > 0".into()));
        }
        if mins.is_empty() || mins.len() != maxs.len() {
            return Err(CoreError::InvalidSketchParams(format!(
                "min/max length mismatch: {} vs {}",
                mins.len(),
                maxs.len()
            )));
        }
        let mut any_positive_range = false;
        for (i, (lo, hi)) in mins.iter().zip(maxs.iter()).enumerate() {
            if !lo.is_finite() || !hi.is_finite() || lo > hi {
                return Err(CoreError::InvalidSketchParams(format!(
                    "dimension {i} has invalid range [{lo}, {hi}]"
                )));
            }
            if hi > lo {
                any_positive_range = true;
            }
        }
        if !any_positive_range {
            return Err(CoreError::InvalidSketchParams(
                "all dimensions have zero range".into(),
            ));
        }
        if let Some(w) = &dim_weights {
            if w.len() != mins.len() {
                return Err(CoreError::InvalidSketchParams(format!(
                    "weight length {} does not match dimensionality {}",
                    w.len(),
                    mins.len()
                )));
            }
            if w.iter().any(|x| !x.is_finite() || *x < 0.0) {
                return Err(CoreError::InvalidSketchParams(
                    "dimension weights must be finite and non-negative".into(),
                ));
            }
            let sum: f64 = w.iter().map(|&x| f64::from(x)).sum();
            if sum <= 0.0 {
                return Err(CoreError::InvalidSketchParams(
                    "dimension weights sum to zero".into(),
                ));
            }
        }
        Ok(Self {
            nbits,
            xor_folds,
            mins,
            maxs,
            dim_weights,
        })
    }

    /// Derives parameters from a sample of feature vectors: per-dimension
    /// min/max are taken from the data (with a small margin so that values
    /// at the boundary still split).
    pub fn from_samples<'a, I>(nbits: usize, xor_folds: usize, samples: I) -> Result<Self>
    where
        I: IntoIterator<Item = &'a FeatureVector>,
    {
        let mut iter = samples.into_iter();
        let first = iter
            .next()
            .ok_or_else(|| CoreError::InvalidSketchParams("no sample vectors".into()))?;
        let mut mins: Vec<f32> = first.components().to_vec();
        let mut maxs: Vec<f32> = first.components().to_vec();
        for v in iter {
            if v.dim() != mins.len() {
                return Err(CoreError::DimensionMismatch {
                    expected: mins.len(),
                    actual: v.dim(),
                });
            }
            for (i, &c) in v.components().iter().enumerate() {
                mins[i] = mins[i].min(c);
                maxs[i] = maxs[i].max(c);
            }
        }
        // Widen degenerate dimensions slightly so thresholds remain valid.
        for (lo, hi) in mins.iter_mut().zip(maxs.iter_mut()) {
            if (*hi - *lo).abs() < f32::EPSILON {
                *lo -= 0.5;
                *hi += 0.5;
            }
        }
        Self::with_options(nbits, xor_folds, mins, maxs, None)
    }

    /// The dimensionality `D` these parameters describe.
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// The sampling probability of each dimension:
    /// `p_i ∝ w_i · (max_i − min_i)`, normalized to sum to 1 (Algorithm 1).
    pub fn dimension_probabilities(&self) -> Vec<f64> {
        let d = self.dim();
        let mut p = vec![0.0f64; d];
        for i in 0..d {
            let w = self.dim_weights.as_ref().map_or(1.0, |w| f64::from(w[i]));
            p[i] = w * f64::from(self.maxs[i] - self.mins[i]);
        }
        let sum: f64 = p.iter().sum();
        debug_assert!(sum > 0.0);
        for x in p.iter_mut() {
            *x /= sum;
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates() {
        assert!(SketchParams::new(0, vec![0.0], vec![1.0]).is_err());
        assert!(SketchParams::new(8, vec![], vec![]).is_err());
        assert!(SketchParams::new(8, vec![0.0], vec![1.0, 2.0]).is_err());
        assert!(SketchParams::new(8, vec![2.0], vec![1.0]).is_err());
        assert!(SketchParams::new(8, vec![0.0], vec![f32::NAN]).is_err());
        assert!(SketchParams::new(8, vec![1.0], vec![1.0]).is_err());
        assert!(SketchParams::new(8, vec![0.0], vec![1.0]).is_ok());
    }

    #[test]
    fn with_options_validates_k_and_weights() {
        let mk = |k, w: Option<Vec<f32>>| {
            SketchParams::with_options(8, k, vec![0.0, 0.0], vec![1.0, 2.0], w)
        };
        assert!(mk(0, None).is_err());
        assert!(mk(2, Some(vec![1.0])).is_err());
        assert!(mk(2, Some(vec![1.0, -1.0])).is_err());
        assert!(mk(2, Some(vec![0.0, 0.0])).is_err());
        assert!(mk(2, Some(vec![0.5, 0.5])).is_ok());
    }

    #[test]
    fn dimension_probabilities_follow_range_and_weight() {
        let p = SketchParams::new(8, vec![0.0, 0.0], vec![1.0, 3.0])
            .unwrap()
            .dimension_probabilities();
        assert!((p[0] - 0.25).abs() < 1e-12);
        assert!((p[1] - 0.75).abs() < 1e-12);

        let p =
            SketchParams::with_options(8, 1, vec![0.0, 0.0], vec![1.0, 1.0], Some(vec![3.0, 1.0]))
                .unwrap()
                .dimension_probabilities();
        assert!((p[0] - 0.75).abs() < 1e-12);
        assert!((p[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_range_dimension_gets_zero_probability() {
        let p = SketchParams::new(8, vec![0.0, 5.0], vec![1.0, 5.0])
            .unwrap()
            .dimension_probabilities();
        assert_eq!(p[1], 0.0);
        assert!((p[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_samples_computes_ranges() {
        let vs = [
            FeatureVector::new(vec![1.0, -2.0]).unwrap(),
            FeatureVector::new(vec![3.0, 4.0]).unwrap(),
            FeatureVector::new(vec![2.0, 0.0]).unwrap(),
        ];
        let p = SketchParams::from_samples(16, 1, vs.iter()).unwrap();
        assert_eq!(p.mins, vec![1.0, -2.0]);
        assert_eq!(p.maxs, vec![3.0, 4.0]);
    }

    #[test]
    fn from_samples_widens_constant_dimensions() {
        let vs = [
            FeatureVector::new(vec![5.0, 1.0]).unwrap(),
            FeatureVector::new(vec![5.0, 2.0]).unwrap(),
        ];
        let p = SketchParams::from_samples(16, 1, vs.iter()).unwrap();
        assert!(p.maxs[0] > p.mins[0]);
    }

    #[test]
    fn from_samples_rejects_empty_or_mismatched() {
        let empty: Vec<FeatureVector> = vec![];
        assert!(SketchParams::from_samples(16, 1, empty.iter()).is_err());
        let vs = [
            FeatureVector::new(vec![1.0]).unwrap(),
            FeatureVector::new(vec![1.0, 2.0]).unwrap(),
        ];
        assert!(SketchParams::from_samples(16, 1, vs.iter()).is_err());
    }
}
