//! Packed bit vectors with word-level Hamming distance.
//!
//! Sketches are `N`-bit vectors compared by Hamming distance "via XOR
//! operations" (paper §4.1.1). Bits are packed into `u64` words so the
//! Hamming distance of two sketches is a handful of `XOR` + `popcount`
//! instructions.

use crate::error::{CoreError, Result};

/// A fixed-length bit vector packed into 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Box<[u64]>,
    len: usize,
}

impl BitVec {
    /// Creates an all-zero bit vector with `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(64)].into_boxed_slice(),
            len,
        }
    }

    /// Creates a bit vector directly from packed words (little-endian bit
    /// order within each word). Bits at positions `>= len` must be zero;
    /// this is only debug-asserted, so the constructor stays crate-local.
    pub(crate) fn from_words(words: Box<[u64]>, len: usize) -> Self {
        debug_assert_eq!(words.len(), len.div_ceil(64));
        debug_assert!(
            len.is_multiple_of(64) || words.last().is_none_or(|w| w >> (len % 64) == 0),
            "bits beyond len must be zero"
        );
        Self { words, len }
    }

    /// Creates a bit vector from a boolean slice.
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut bv = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                bv.set(i, true);
            }
        }
        bv
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Hamming distance to another bit vector of the same length.
    ///
    /// This is the hot loop of both `BruteForceSketch` ranking and the
    /// filtering scan; it compiles to XOR + popcount per word.
    #[inline]
    pub fn hamming(&self, other: &Self) -> Result<u32> {
        if self.len != other.len {
            return Err(CoreError::SketchLengthMismatch {
                left: self.len,
                right: other.len,
            });
        }
        Ok(self.hamming_unchecked(other))
    }

    /// Hamming distance without the length check.
    ///
    /// Lengths must match; only `debug_assert`ed.
    #[inline]
    pub fn hamming_unchecked(&self, other: &Self) -> u32 {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Hamming distance if it does not exceed `limit`, else `None`.
    ///
    /// Word-level popcount that exits as soon as the running count
    /// passes `limit`; the filtering scan uses it so dataset segments
    /// that cannot enter a full k-NN heap (or are past the weight
    /// threshold) stop being counted early. The limit check runs once
    /// per four-word chunk rather than per word: XOR + popcount of a
    /// chunk is cheaper than four conditional branches, and the exit
    /// is at most three words late.
    #[inline]
    pub fn hamming_within(&self, other: &Self, limit: u32) -> Result<Option<u32>> {
        if self.len != other.len {
            return Err(CoreError::SketchLengthMismatch {
                left: self.len,
                right: other.len,
            });
        }
        let a = &self.words;
        let b = &other.words;
        let mut acc = 0u32;
        let mut i = 0;
        while i + 4 <= a.len() {
            acc += (a[i] ^ b[i]).count_ones()
                + (a[i + 1] ^ b[i + 1]).count_ones()
                + (a[i + 2] ^ b[i + 2]).count_ones()
                + (a[i + 3] ^ b[i + 3]).count_ones();
            if acc > limit {
                return Ok(None);
            }
            i += 4;
        }
        while i < a.len() {
            acc += (a[i] ^ b[i]).count_ones();
            i += 1;
        }
        if acc > limit {
            return Ok(None);
        }
        Ok(Some(acc))
    }

    /// Hamming distance over the first `k` bits only.
    ///
    /// The multi-index probe uses this to prescreen bucket survivors: a
    /// survivor matched the query exactly inside one bit-block, so the
    /// distance over the bits *before* that block already lower-bounds
    /// the full distance and can reject without a full popcount.
    #[inline]
    pub fn hamming_prefix(&self, other: &Self, k: usize) -> Result<u32> {
        if self.len != other.len {
            return Err(CoreError::SketchLengthMismatch {
                left: self.len,
                right: other.len,
            });
        }
        if k > self.len {
            return Err(CoreError::InvalidSketchParams(format!(
                "prefix length {k} exceeds sketch length {}",
                self.len
            )));
        }
        let full = k / 64;
        let mut acc: u32 = self.words[..full]
            .iter()
            .zip(other.words[..full].iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        let rem = k % 64;
        if rem != 0 {
            let mask = (1u64 << rem) - 1;
            acc += ((self.words[full] ^ other.words[full]) & mask).count_ones();
        }
        Ok(acc)
    }

    /// The underlying words (trailing bits beyond `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Serializes to little-endian bytes: `len` as u64 then the words.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.words.len() * 8);
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        for w in self.words.iter() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserializes from the [`BitVec::to_bytes`] format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 8 {
            return Err(CoreError::InvalidSketchParams(
                "bitvec bytes too short".into(),
            ));
        }
        let len = u64::from_le_bytes(bytes[..8].try_into().expect("checked len")) as usize;
        let nwords = len.div_ceil(64);
        if bytes.len() != 8 + nwords * 8 {
            return Err(CoreError::InvalidSketchParams(format!(
                "bitvec byte length {} does not match bit length {len}",
                bytes.len()
            )));
        }
        let mut words = vec![0u64; nwords];
        for (i, w) in words.iter_mut().enumerate() {
            let start = 8 + i * 8;
            *w = u64::from_le_bytes(bytes[start..start + 8].try_into().expect("checked len"));
        }
        // Reject junk in trailing bits so equality and hashing stay sound.
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last() {
                if *last >> (len % 64) != 0 {
                    return Err(CoreError::InvalidSketchParams(
                        "bitvec trailing bits not zero".into(),
                    ));
                }
            }
        }
        Ok(Self {
            words: words.into_boxed_slice(),
            len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut bv = BitVec::zeros(130);
        assert_eq!(bv.len(), 130);
        assert!(!bv.get(0));
        bv.set(0, true);
        bv.set(64, true);
        bv.set(129, true);
        assert!(bv.get(0) && bv.get(64) && bv.get(129));
        assert!(!bv.get(1) && !bv.get(65));
        assert_eq!(bv.count_ones(), 3);
        bv.set(64, false);
        assert_eq!(bv.count_ones(), 2);
    }

    #[test]
    fn from_bits_roundtrip() {
        let bits: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let bv = BitVec::from_bits(&bits);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(bv.get(i), b, "bit {i}");
        }
    }

    #[test]
    fn hamming_counts_differing_bits() {
        let a = BitVec::from_bits(&[true, false, true, false, true]);
        let b = BitVec::from_bits(&[true, true, false, false, true]);
        assert_eq!(a.hamming(&b).unwrap(), 2);
        assert_eq!(a.hamming(&a).unwrap(), 0);
    }

    #[test]
    fn hamming_across_word_boundaries() {
        let mut a = BitVec::zeros(200);
        let mut b = BitVec::zeros(200);
        for i in [0, 63, 64, 127, 128, 199] {
            a.set(i, true);
        }
        for i in [0, 63, 65, 127, 129, 199] {
            b.set(i, true);
        }
        assert_eq!(a.hamming(&b).unwrap(), 4);
    }

    #[test]
    fn hamming_within_matches_hamming_up_to_limit() {
        let mut a = BitVec::zeros(200);
        let mut b = BitVec::zeros(200);
        for i in (0..200).step_by(3) {
            a.set(i, true);
        }
        for i in (0..200).step_by(5) {
            b.set(i, true);
        }
        let full = a.hamming(&b).unwrap();
        for limit in [0, 1, full.saturating_sub(1), full, full + 1, u32::MAX] {
            let within = a.hamming_within(&b, limit).unwrap();
            if limit >= full {
                assert_eq!(within, Some(full), "limit {limit}");
            } else {
                assert_eq!(within, None, "limit {limit}");
            }
        }
    }

    #[test]
    fn hamming_within_exits_late_but_never_wrong() {
        // 600 bits = 9 words + remainder: exercises both the 4-word
        // chunks and the tail of the chunked early-exit loop.
        let mut a = BitVec::zeros(600);
        let mut b = BitVec::zeros(600);
        for i in (0..600).step_by(2) {
            a.set(i, true);
        }
        for i in (0..600).step_by(7) {
            b.set(i, true);
        }
        let full = a.hamming(&b).unwrap();
        for limit in 0..full + 5 {
            let within = a.hamming_within(&b, limit).unwrap();
            if limit >= full {
                assert_eq!(within, Some(full), "limit {limit}");
            } else {
                assert_eq!(within, None, "limit {limit}");
            }
        }
    }

    #[test]
    fn hamming_prefix_counts_only_first_k_bits() {
        let mut a = BitVec::zeros(200);
        let b = BitVec::zeros(200);
        // Differences at known positions.
        for i in [0, 5, 63, 64, 100, 127, 128, 150, 199] {
            a.set(i, true);
        }
        for k in [0usize, 1, 5, 6, 63, 64, 65, 100, 101, 128, 151, 199, 200] {
            let expect = [0, 5, 63, 64, 100, 127, 128, 150, 199]
                .iter()
                .filter(|&&i| i < k)
                .count() as u32;
            assert_eq!(a.hamming_prefix(&b, k).unwrap(), expect, "k {k}");
        }
        // Full prefix equals the plain Hamming distance.
        assert_eq!(a.hamming_prefix(&b, 200).unwrap(), a.hamming(&b).unwrap());
    }

    #[test]
    fn hamming_prefix_ignores_bits_at_and_after_k() {
        // k = 70 is non-word-aligned: bit 69 is in, bit 70 is out.
        let mut a = BitVec::zeros(128);
        let b = BitVec::zeros(128);
        a.set(69, true);
        a.set(70, true);
        assert_eq!(a.hamming_prefix(&b, 70).unwrap(), 1);
        assert_eq!(a.hamming_prefix(&b, 71).unwrap(), 2);
    }

    #[test]
    fn hamming_prefix_rejects_bad_arguments() {
        let a = BitVec::zeros(64);
        let b = BitVec::zeros(65);
        assert!(a.hamming_prefix(&b, 10).is_err());
        let c = BitVec::zeros(64);
        assert!(a.hamming_prefix(&c, 65).is_err());
        assert_eq!(a.hamming_prefix(&c, 64).unwrap(), 0);
    }

    #[test]
    fn hamming_within_rejects_length_mismatch() {
        let a = BitVec::zeros(64);
        let b = BitVec::zeros(65);
        assert!(a.hamming_within(&b, 10).is_err());
    }

    #[test]
    fn hamming_rejects_length_mismatch() {
        let a = BitVec::zeros(64);
        let b = BitVec::zeros(65);
        assert!(matches!(
            a.hamming(&b),
            Err(CoreError::SketchLengthMismatch {
                left: 64,
                right: 65
            })
        ));
    }

    #[test]
    fn bytes_roundtrip() {
        for len in [0usize, 1, 63, 64, 65, 96, 600, 800] {
            let mut bv = BitVec::zeros(len);
            for i in (0..len).step_by(7) {
                bv.set(i, true);
            }
            let bytes = bv.to_bytes();
            let back = BitVec::from_bytes(&bytes).unwrap();
            assert_eq!(bv, back, "len {len}");
        }
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(BitVec::from_bytes(&[1, 2, 3]).is_err());
        // Length says 8 bits but provides two words.
        let mut bytes = 8u64.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        assert!(BitVec::from_bytes(&bytes).is_err());
        // Trailing junk bits beyond the declared length.
        let mut bytes = 8u64.to_le_bytes().to_vec();
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(BitVec::from_bytes(&bytes).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let bv = BitVec::zeros(10);
        let _ = bv.get(10);
    }
}
