//! Sketch construction and compact bit-vector sketches.
//!
//! Sketches are "tiny data structures that can be used to estimate
//! properties of the original data" (paper §1). The construction here turns
//! each high-dimensional feature vector into an `N`-bit vector whose pairwise
//! Hamming distances approximate (a thresholded transform of) the weighted
//! ℓ₁ distances between the original vectors, typically shrinking metadata by
//! an order of magnitude.

pub mod bitvec;
pub mod builder;
pub mod diskdb;
pub mod hamming_index;
pub mod onepass;
pub mod params;

pub use bitvec::BitVec;
pub use builder::{SketchBuilder, SketchedObject};
pub use diskdb::{
    filter_candidates_on_disk, filter_candidates_on_disk_sharded, SketchFileReader,
    SketchFileWriter,
};
pub use hamming_index::{ShardedSketchIndex, SketchIndex, DEFAULT_SHARD_OBJECTS};
pub use onepass::{OnePassPlan, SketchStrategy};
pub use params::SketchParams;
