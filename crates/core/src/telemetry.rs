//! Runtime observability: a thread-safe metrics registry and per-query
//! stage traces.
//!
//! The ROADMAP's target is a long-running service, but the paper's own
//! evaluation (§6.3.3) already frames query cost as a pipeline — sketch
//! the query, *filter* the dataset down to a candidate set, *rank* the
//! candidates — whose stages have very different costs. This module makes
//! those stages observable at runtime without any external dependency:
//!
//! * [`MetricsRegistry`] — named families of atomic [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket [`Histogram`]s (exact count and sum,
//!   lock-free on the hot path once a handle is held), rendered in
//!   Prometheus text exposition format by
//!   [`MetricsRegistry::render_prometheus`].
//! * [`QueryTrace`] — one record per query with wall time, candidate
//!   counts, and per-shard scan statistics for each pipeline stage.
//!
//! Collection never perturbs results: instrumented code paths compute the
//! same bytes with telemetry enabled or disabled (enforced by the
//! determinism regression tests in `tests/parallel_determinism.rs`).
//!
//! Histograms observe **integers** (`u64`), not floats, so concurrent
//! `fetch_add` updates make count and sum exactly equal to a serial
//! replay — there is no float rounding that depends on thread
//! interleaving. Latency histograms store nanoseconds internally and are
//! rendered in seconds (the Prometheus base unit) at exposition time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        // ordering: Relaxed; counters are independent monotone tallies, no other data is published via them
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ordering: Relaxed; scrape reads tolerate racing increments
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomic gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        // ordering: Relaxed; gauges carry no happens-before obligations
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        // ordering: Relaxed; gauges carry no happens-before obligations
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` exceeds the current value (a
    /// high-watermark update, e.g. peak concurrent queries).
    pub fn fetch_max(&self, v: i64) {
        // ordering: Relaxed; high-watermark race only loses a transiently lower peak
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        // ordering: Relaxed; scrape reads tolerate racing updates
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations with exact count and
/// sum.
///
/// Buckets are defined by strictly increasing upper bounds; one implicit
/// `+Inf` bucket catches everything above the last bound. Observation is
/// three relaxed `fetch_add`s after a binary search — cheap enough for
/// the query hot path.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) counts; `bounds.len() + 1` entries,
    /// the last being the `+Inf` bucket.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A point-in-time copy of a histogram, for tests and reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Upper bounds of the finite buckets.
    pub bounds: Vec<u64>,
    /// **Cumulative** bucket counts, one per finite bound plus a final
    /// `+Inf` entry; the last entry always equals `count`.
    pub cumulative: Vec<u64>,
    /// Exact sum of all observations.
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
}

impl Histogram {
    /// Creates a histogram with the given strictly increasing upper
    /// bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        // ordering: Relaxed; buckets/sum/count may be mutually torn, snapshot() documents approximation
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed; see above
        self.sum.fetch_add(value, Ordering::Relaxed);
        // ordering: Relaxed; see above
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        // ordering: Relaxed; monitoring read
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> u64 {
        // ordering: Relaxed; monitoring read
        self.sum.load(Ordering::Relaxed)
    }

    /// A consistent-enough snapshot (buckets are read one by one; exact
    /// under quiescence, approximate under concurrent writes).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = Vec::with_capacity(self.buckets.len());
        let mut running = 0u64;
        for b in &self.buckets {
            // ordering: Relaxed; approximate under concurrent writes by contract
            running += b.load(Ordering::Relaxed);
            cumulative.push(running);
        }
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            cumulative,
            sum: self.sum(),
            count: self.count(),
        }
    }
}

/// Default latency bucket upper bounds, in nanoseconds: roughly
/// exponential from 10µs to 5s, chosen so interactive queries (sub-ms
/// sketch scans, multi-ms EMD ranking) land mid-range.
pub const LATENCY_BUCKETS_NS: [u64; 16] = [
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    250_000_000,
    1_000_000_000,
    5_000_000_000,
];

/// Default size bucket upper bounds (batch sizes, candidate counts).
pub const SIZE_BUCKETS: [u64; 13] = [
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000,
];

/// How a histogram's integer observations are rendered at exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Render the raw integer value.
    Raw,
    /// Observations are nanoseconds; render as seconds.
    Nanoseconds,
}

impl Unit {
    fn render(self, v: u64) -> String {
        match self {
            Unit::Raw => v.to_string(),
            Unit::Nanoseconds => format_f64(v as f64 / 1e9),
        }
    }
}

/// Formats a float the way Prometheus expects (shortest round-trip).
fn format_f64(v: f64) -> String {
    format!("{v}")
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

type LabelSet = Vec<(String, String)>;

struct Family {
    help: String,
    kind: Kind,
    unit: Unit,
    series: BTreeMap<LabelSet, Metric>,
}

/// A thread-safe registry of named metric families.
///
/// Families are keyed by metric name; each family holds one series per
/// label set. `counter`/`gauge`/`histogram` get-or-create a series and
/// return a shared handle that callers may cache — updates through the
/// handle are lock-free. Re-registering an existing name with a
/// different metric kind panics (a programming error, not a runtime
/// condition).
#[derive(Default)]
pub struct MetricsRegistry {
    families: RwLock<BTreeMap<String, Family>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn normalize(labels: &[(&str, &str)]) -> LabelSet {
        let mut set: LabelSet = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        set.sort();
        set
    }

    #[allow(clippy::too_many_arguments)]
    fn get_or_create<T, FGet, FNew>(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        unit: Unit,
        labels: &[(&str, &str)],
        get: FGet,
        new: FNew,
    ) -> Arc<T>
    where
        FGet: Fn(&Metric) -> Option<Arc<T>>,
        FNew: Fn() -> Metric,
    {
        let key = Self::normalize(labels);
        {
            let families = self.families.read();
            if let Some(family) = families.get(name) {
                assert!(
                    family.kind == kind,
                    "metric {name} already registered as {}",
                    family.kind.as_str()
                );
                if let Some(metric) = family.series.get(&key) {
                    return get(metric).expect("kind checked above");
                }
            }
        }
        let mut families = self.families.write();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            unit,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} already registered as {}",
            family.kind.as_str()
        );
        let metric = family.series.entry(key).or_insert_with(new);
        get(metric).expect("kind checked above")
    }

    /// Gets or creates a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.get_or_create(
            name,
            help,
            Kind::Counter,
            Unit::Raw,
            labels,
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || Metric::Counter(Arc::new(Counter::new())),
        )
    }

    /// Gets or creates a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.get_or_create(
            name,
            help,
            Kind::Gauge,
            Unit::Raw,
            labels,
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || Metric::Gauge(Arc::new(Gauge::new())),
        )
    }

    /// Gets or creates a histogram series with the given bucket bounds
    /// and display unit. The bounds of the *first* registration of a
    /// family win; later calls reuse the existing series.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
        unit: Unit,
    ) -> Arc<Histogram> {
        self.get_or_create(
            name,
            help,
            Kind::Histogram,
            unit,
            labels,
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || Metric::Histogram(Arc::new(Histogram::new(bounds))),
        )
    }

    /// Eagerly creates an (empty) family for every series in the
    /// [`crate::series`] catalog, so `# HELP`/`# TYPE` headers for the
    /// whole documented `/metrics` surface are visible from the first
    /// scrape. Families created here have no label sets yet; call sites
    /// add series as usual, and their kind must match the catalog (the
    /// registry's kind assertion makes drift fail fast).
    pub fn register_catalog(&self) {
        use crate::series::{SeriesKind, SERIES};
        let mut families = self.families.write();
        for def in SERIES {
            let (kind, unit) = match def.kind {
                SeriesKind::Counter => (Kind::Counter, Unit::Raw),
                SeriesKind::Gauge => (Kind::Gauge, Unit::Raw),
                SeriesKind::Histogram { nanos: true } => (Kind::Histogram, Unit::Nanoseconds),
                SeriesKind::Histogram { nanos: false } => (Kind::Histogram, Unit::Raw),
            };
            families
                .entry(def.name.to_string())
                .or_insert_with(|| Family {
                    help: def.help.to_string(),
                    kind,
                    unit,
                    series: BTreeMap::new(),
                });
        }
    }

    /// One-shot counter increment (get-or-create plus `add`).
    pub fn inc_counter(&self, name: &str, help: &str, labels: &[(&str, &str)], n: u64) {
        self.counter(name, help, labels).add(n);
    }

    /// One-shot latency observation in a nanosecond histogram rendered
    /// as seconds, using [`LATENCY_BUCKETS_NS`].
    pub fn observe_latency(&self, name: &str, help: &str, labels: &[(&str, &str)], d: Duration) {
        self.histogram(name, help, labels, &LATENCY_BUCKETS_NS, Unit::Nanoseconds)
            .observe_duration(d);
    }

    /// Current value of a counter series, if registered.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = Self::normalize(labels);
        let families = self.families.read();
        match families.get(name)?.series.get(&key)? {
            Metric::Counter(c) => Some(c.get()),
            _ => None,
        }
    }

    /// Snapshot of a histogram series, if registered.
    pub fn histogram_snapshot(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<HistogramSnapshot> {
        let key = Self::normalize(labels);
        let families = self.families.read();
        match families.get(name)?.series.get(&key)? {
            Metric::Histogram(h) => Some(h.snapshot()),
            _ => None,
        }
    }

    /// Renders every family in Prometheus text exposition format
    /// (`text/plain; version=0.0.4`): `# HELP` and `# TYPE` per family,
    /// then one line per series sample, with histogram buckets emitted
    /// cumulatively including the `+Inf` bucket, `_sum`, and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let families = self.families.read();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&family.help)));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.as_str()));
            for (labels, metric) in &family.series {
                match metric {
                    Metric::Counter(c) => {
                        out.push_str(&format!("{name}{} {}\n", render_labels(labels), c.get()));
                    }
                    Metric::Gauge(g) => {
                        out.push_str(&format!("{name}{} {}\n", render_labels(labels), g.get()));
                    }
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        for (i, &bound) in snap.bounds.iter().enumerate() {
                            let le = family.unit.render(bound);
                            out.push_str(&format!(
                                "{name}_bucket{} {}\n",
                                render_labels_with(labels, "le", &le),
                                snap.cumulative[i]
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_bucket{} {}\n",
                            render_labels_with(labels, "le", "+Inf"),
                            snap.count
                        ));
                        let sum = match family.unit {
                            Unit::Raw => snap.sum.to_string(),
                            Unit::Nanoseconds => format_f64(snap.sum as f64 / 1e9),
                        };
                        out.push_str(&format!("{name}_sum{} {sum}\n", render_labels(labels)));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            render_labels(labels),
                            snap.count
                        ));
                    }
                }
            }
        }
        out
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &LabelSet) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn render_labels_with(labels: &LabelSet, extra_key: &str, extra_value: &str) -> String {
    let mut all = labels.clone();
    all.push((extra_key.to_string(), extra_value.to_string()));
    // Series labels are stored sorted by key; keep the exposition sorted
    // too so the added key lands in deterministic position.
    all.sort_by(|a, b| a.0.cmp(&b.0));
    render_labels(&all)
}

/// Timing and scan statistics for one stage of a traced query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTrace {
    /// Wall-clock time spent in the stage.
    pub duration: Duration,
    /// Worker threads the stage ran on (1 = on the calling thread).
    pub threads: usize,
}

/// Per-shard scan statistics from a sharded filter pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardTrace {
    /// Objects the shard streamed.
    pub objects_scanned: usize,
    /// Segment sketches the shard compared.
    pub segments_scanned: usize,
}

/// A per-query record of the pipeline's stage breakdown (paper §4.1.1:
/// sketch → filter → rank).
///
/// Produced by the engine when telemetry is enabled and carried on
/// [`QueryResponse`](crate::engine::QueryResponse); the service keeps a
/// short ring of recent traces for the `/trace` endpoint.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryTrace {
    /// Query mode, as displayed by
    /// [`QueryMode`](crate::engine::QueryMode).
    pub mode: String,
    /// Total query wall time.
    pub total: Duration,
    /// Sketching the query object (absent for sketch-seeded queries).
    pub sketch: Option<StageTrace>,
    /// Which sketch construction strategy built the query sketch:
    /// `"classic"` or `"one-pass"` (absent when no sketch stage ran).
    pub sketch_strategy: Option<String>,
    /// The filtering scan (filter mode only).
    pub filter: Option<StageTrace>,
    /// Which filtering path ran: `"scan"`, `"indexed"`, or
    /// `"indexed-fallback"` (filter mode only).
    pub filter_strategy: Option<String>,
    /// Ranking the candidates.
    pub rank: Option<StageTrace>,
    /// Objects visited during scanning.
    pub objects_scanned: usize,
    /// Segment sketches compared during filtering.
    pub segments_scanned: usize,
    /// Candidate-set size entering the ranking stage.
    pub candidates: usize,
    /// Object-distance evaluations in the ranking stage.
    pub distance_evals: usize,
    /// Results returned.
    pub results: usize,
    /// Per-shard scan statistics of the filter stage (empty when the
    /// scan ran unsharded).
    pub shards: Vec<ShardTrace>,
}

impl QueryTrace {
    /// Renders the trace as a JSON object (dependency-free, stable key
    /// order) for the web interface's `/trace` endpoint.
    pub fn to_json(&self) -> String {
        let stage = |s: &Option<StageTrace>| match s {
            Some(st) => format!(
                "{{\"seconds\":{},\"threads\":{}}}",
                format_f64(st.duration.as_secs_f64()),
                st.threads
            ),
            None => "null".to_string(),
        };
        let shards: Vec<String> = self
            .shards
            .iter()
            .map(|s| {
                format!(
                    "{{\"objects_scanned\":{},\"segments_scanned\":{}}}",
                    s.objects_scanned, s.segments_scanned
                )
            })
            .collect();
        let opt_str = |s: &Option<String>| match s {
            Some(s) => format!("\"{}\"", escape_label_value(s)),
            None => "null".to_string(),
        };
        format!(
            "{{\"mode\":\"{}\",\"total_seconds\":{},\"sketch\":{},\"sketch_strategy\":{},\"filter\":{},\"filter_strategy\":{},\"rank\":{},\"objects_scanned\":{},\"segments_scanned\":{},\"candidates\":{},\"distance_evals\":{},\"results\":{},\"shards\":[{}]}}",
            escape_label_value(&self.mode),
            format_f64(self.total.as_secs_f64()),
            stage(&self.sketch),
            opt_str(&self.sketch_strategy),
            stage(&self.filter),
            opt_str(&self.filter_strategy),
            stage(&self.rank),
            self.objects_scanned,
            self.segments_scanned,
            self.candidates,
            self.distance_evals,
            self.results,
            shards.join(",")
        )
    }
}

/// A stopwatch that is free when disabled: `None` takes no timestamps at
/// all, so a telemetry-off query executes exactly the code it did before
/// instrumentation existed.
#[derive(Debug, Clone, Copy)]
pub struct StageClock {
    start: Option<Instant>,
}

impl StageClock {
    /// Starts a clock; `enabled = false` never reads the system clock.
    pub fn start(enabled: bool) -> Self {
        Self {
            start: enabled.then(Instant::now),
        }
    }

    /// Elapsed time since start, if enabled.
    pub fn elapsed(&self) -> Option<Duration> {
        self.start.map(|s| s.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1 + 10 + 11 + 100 + 5000);
        // le=10 → 2, le=100 → 4, le=1000 → 4, +Inf → 5.
        assert_eq!(snap.cumulative, vec![2, 4, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[10, 10]);
    }

    #[test]
    fn registry_get_or_create_returns_same_series() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("requests_total", "Requests.", &[("endpoint", "/search")]);
        let b = reg.counter("requests_total", "Requests.", &[("endpoint", "/search")]);
        a.inc();
        b.add(2);
        assert_eq!(
            reg.counter_value("requests_total", &[("endpoint", "/search")]),
            Some(3)
        );
        // A different label set is a different series.
        assert_eq!(
            reg.counter_value("requests_total", &[("endpoint", "/attr")]),
            None
        );
        // Label order does not matter.
        let c = reg.counter("multi", "m", &[("b", "2"), ("a", "1")]);
        c.inc();
        assert_eq!(
            reg.counter_value("multi", &[("a", "1"), ("b", "2")]),
            Some(1)
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_mismatch() {
        let reg = MetricsRegistry::new();
        reg.counter("thing", "a thing", &[]);
        reg.gauge("thing", "a thing", &[]);
    }

    #[test]
    fn exposition_format() {
        let reg = MetricsRegistry::new();
        reg.counter(
            "ferret_commands_total",
            "Commands executed.",
            &[("command", "query")],
        )
        .add(3);
        reg.gauge("ferret_objects", "Objects stored.", &[]).set(42);
        let h = reg.histogram(
            "ferret_stage_seconds",
            "Stage latency.",
            &[("stage", "filter")],
            &[1_000_000, 1_000_000_000],
            Unit::Nanoseconds,
        );
        h.observe(500_000); // 0.5 ms
        h.observe(2_000_000_000); // 2 s
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP ferret_commands_total Commands executed.\n"));
        assert!(text.contains("# TYPE ferret_commands_total counter\n"));
        assert!(text.contains("ferret_commands_total{command=\"query\"} 3\n"));
        assert!(text.contains("# TYPE ferret_objects gauge\n"));
        assert!(text.contains("ferret_objects 42\n"));
        assert!(text.contains("# TYPE ferret_stage_seconds histogram\n"));
        assert!(text.contains("ferret_stage_seconds_bucket{le=\"0.001\",stage=\"filter\"} 1\n"));
        assert!(text.contains("ferret_stage_seconds_bucket{le=\"1\",stage=\"filter\"} 1\n"));
        assert!(text.contains("ferret_stage_seconds_bucket{le=\"+Inf\",stage=\"filter\"} 2\n"));
        assert!(text.contains("ferret_stage_seconds_count{stage=\"filter\"} 2\n"));
        // Sum: 2.0005 seconds.
        assert!(text.contains("ferret_stage_seconds_sum{stage=\"filter\"} 2.0005\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("c", "h", &[("q", "a\"b\\c\nd")]).inc();
        let text = reg.render_prometheus();
        assert!(text.contains("c{q=\"a\\\"b\\\\c\\nd\"} 1\n"), "{text}");
    }

    #[test]
    fn trace_renders_json() {
        let trace = QueryTrace {
            mode: "filtering".into(),
            total: Duration::from_millis(5),
            sketch: Some(StageTrace {
                duration: Duration::from_micros(100),
                threads: 1,
            }),
            sketch_strategy: Some("one-pass".into()),
            filter: Some(StageTrace {
                duration: Duration::from_millis(3),
                threads: 4,
            }),
            filter_strategy: Some("indexed".into()),
            rank: Some(StageTrace {
                duration: Duration::from_millis(2),
                threads: 2,
            }),
            objects_scanned: 100,
            segments_scanned: 250,
            candidates: 12,
            distance_evals: 12,
            results: 10,
            shards: vec![
                ShardTrace {
                    objects_scanned: 50,
                    segments_scanned: 125,
                },
                ShardTrace {
                    objects_scanned: 50,
                    segments_scanned: 125,
                },
            ],
        };
        let json = trace.to_json();
        assert!(json.contains("\"mode\":\"filtering\""), "{json}");
        assert!(json.contains("\"sketch_strategy\":\"one-pass\""), "{json}");
        assert!(json.contains("\"candidates\":12"), "{json}");
        assert!(json.contains("\"threads\":4"), "{json}");
        assert!(
            json.contains("\"shards\":[{\"objects_scanned\":50"),
            "{json}"
        );
        assert!(!json.contains("null") || trace.sketch.is_none());
    }

    #[test]
    fn stage_clock_disabled_reads_nothing() {
        let clock = StageClock::start(false);
        assert_eq!(clock.elapsed(), None);
        let clock = StageClock::start(true);
        assert!(clock.elapsed().is_some());
    }
}
