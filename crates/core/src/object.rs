//! The generic multi-feature object representation.
//!
//! A data object is a weighted set of segments, each described by a feature
//! vector: `X = {<X_1, w(X_1)>, ..., <X_k, w(X_k)>}` (paper §2). The number
//! of segments `k` varies from object to object; the weights are normalized
//! so they sum to 1.

use crate::error::{CoreError, Result};
use crate::vector::FeatureVector;

/// Identifier of a data object inside an engine instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj:{}", self.0)
    }
}

/// One segment of a data object: a feature vector plus its importance weight.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// The extracted feature vector for this segment.
    pub vector: FeatureVector,
    /// The normalized importance weight of this segment within its object.
    pub weight: f32,
}

/// A feature-rich data object: a weighted set of segments.
///
/// This is the Rust counterpart of the paper's `ObjectT` plug-in structure.
/// Invariants enforced at construction:
///
/// * at least one segment,
/// * all segments share one dimensionality,
/// * all weights are finite and non-negative with a positive sum,
/// * weights are re-normalized to sum to 1.
#[derive(Debug, Clone, PartialEq)]
pub struct DataObject {
    segments: Vec<Segment>,
    dim: usize,
}

impl DataObject {
    /// Builds an object from `(vector, weight)` pairs, normalizing weights.
    pub fn new(parts: Vec<(FeatureVector, f32)>) -> Result<Self> {
        if parts.is_empty() {
            return Err(CoreError::EmptyObject);
        }
        let dim = parts[0].0.dim();
        let mut sum = 0.0f64;
        for (i, (v, w)) in parts.iter().enumerate() {
            if v.dim() != dim {
                return Err(CoreError::DimensionMismatch {
                    expected: dim,
                    actual: v.dim(),
                });
            }
            if !w.is_finite() || *w < 0.0 {
                return Err(CoreError::InvalidWeights(format!(
                    "segment {i} has weight {w}"
                )));
            }
            sum += f64::from(*w);
        }
        if sum <= 0.0 {
            return Err(CoreError::InvalidWeights("weights sum to zero".to_string()));
        }
        let segments = parts
            .into_iter()
            .map(|(vector, weight)| Segment {
                vector,
                weight: (f64::from(weight) / sum) as f32,
            })
            .collect();
        Ok(Self { segments, dim })
    }

    /// Builds a single-segment object with weight 1.
    ///
    /// Convenience for data types where the whole object is one feature
    /// vector (3D shape descriptors, microarray gene rows).
    pub fn single(vector: FeatureVector) -> Self {
        let dim = vector.dim();
        Self {
            segments: vec![Segment {
                vector,
                weight: 1.0,
            }],
            dim,
        }
    }

    /// Number of segments `k`.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Shared dimensionality of all segment feature vectors.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// All segments, in extraction order.
    #[inline]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Segment `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_segments()`.
    #[inline]
    pub fn segment(&self, i: usize) -> &Segment {
        &self.segments[i]
    }

    /// Indices of segments ordered by decreasing weight.
    ///
    /// Used by the filtering unit to pick the `r` highest-weight query
    /// segments. Ties broken by segment index for determinism.
    pub fn segments_by_weight(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.segments.len()).collect();
        idx.sort_by(|&a, &b| {
            self.segments[b]
                .weight
                .partial_cmp(&self.segments[a].weight)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx
    }

    /// Sum of weights; 1 up to floating-point rounding.
    pub fn total_weight(&self) -> f32 {
        self.segments.iter().map(|s| s.weight).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(c: &[f32]) -> FeatureVector {
        FeatureVector::new(c.to_vec()).unwrap()
    }

    #[test]
    fn new_normalizes_weights() {
        let obj = DataObject::new(vec![(fv(&[1.0]), 2.0), (fv(&[2.0]), 6.0)]).unwrap();
        assert_eq!(obj.num_segments(), 2);
        assert!((obj.segment(0).weight - 0.25).abs() < 1e-6);
        assert!((obj.segment(1).weight - 0.75).abs() < 1e-6);
        assert!((obj.total_weight() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn new_rejects_empty_and_bad_weights() {
        assert!(matches!(
            DataObject::new(vec![]),
            Err(CoreError::EmptyObject)
        ));
        assert!(DataObject::new(vec![(fv(&[1.0]), -1.0)]).is_err());
        assert!(DataObject::new(vec![(fv(&[1.0]), f32::NAN)]).is_err());
        assert!(DataObject::new(vec![(fv(&[1.0]), 0.0)]).is_err());
    }

    #[test]
    fn new_rejects_mixed_dimensions() {
        let r = DataObject::new(vec![(fv(&[1.0, 2.0]), 1.0), (fv(&[1.0]), 1.0)]);
        assert!(matches!(r, Err(CoreError::DimensionMismatch { .. })));
    }

    #[test]
    fn single_has_unit_weight() {
        let obj = DataObject::single(fv(&[5.0, 6.0]));
        assert_eq!(obj.num_segments(), 1);
        assert_eq!(obj.dim(), 2);
        assert_eq!(obj.segment(0).weight, 1.0);
    }

    #[test]
    fn segments_by_weight_sorts_descending_with_stable_ties() {
        let obj = DataObject::new(vec![
            (fv(&[0.0]), 1.0),
            (fv(&[1.0]), 3.0),
            (fv(&[2.0]), 3.0),
            (fv(&[3.0]), 2.0),
        ])
        .unwrap();
        assert_eq!(obj.segments_by_weight(), vec![1, 2, 3, 0]);
    }

    #[test]
    fn zero_weight_segments_allowed_if_sum_positive() {
        let obj = DataObject::new(vec![(fv(&[0.0]), 0.0), (fv(&[1.0]), 1.0)]).unwrap();
        assert_eq!(obj.segment(0).weight, 0.0);
        assert_eq!(obj.segment(1).weight, 1.0);
    }

    #[test]
    fn object_id_display() {
        assert_eq!(ObjectId(42).to_string(), "obj:42");
    }
}
