//! A banded sketch index: sub-linear candidate generation.
//!
//! The paper's filtering step scans every sketch (linear in the dataset)
//! and its future work asks for "improved indexing data structures for
//! similarity search" (§8). This module provides the classic
//! locality-sensitive *banding* construction on the sketch bits: each
//! `N`-bit sketch is cut into `bands` groups of `rows` bits; two sketches
//! collide in a band iff those bits match exactly, which happens with
//! probability `(1 − d/N)^rows` for Hamming distance `d`. Objects sharing
//! at least one band with a query segment become candidates — no full scan
//! required.
//!
//! Compared to the filter scan this trades recall (a near sketch can miss
//! all bands) for query time that depends on the number of colliding
//! entries rather than the dataset size. The `banded_index` bench and the
//! recall tests quantify the trade.

use std::collections::HashMap;
use std::collections::HashSet;

use crate::error::{CoreError, Result};
use crate::object::ObjectId;
use crate::sketch::{BitVec, SketchedObject};

/// Parameters of the banded index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandingParams {
    /// Number of bands.
    pub bands: usize,
    /// Bits per band (band values are packed into `u64`, so at most 64).
    pub rows: usize,
}

impl BandingParams {
    /// Validates against a sketch length: `bands × rows <= nbits`.
    pub fn validate(&self, nbits: usize) -> Result<()> {
        if self.bands == 0 || self.rows == 0 {
            return Err(CoreError::InvalidQuery(
                "banding needs at least one band and one row".into(),
            ));
        }
        if self.rows > 64 {
            return Err(CoreError::InvalidQuery(
                "band values are packed into u64; rows must be <= 64".into(),
            ));
        }
        if self.bands * self.rows > nbits {
            return Err(CoreError::InvalidQuery(format!(
                "banding uses {} bits but sketches have {nbits}",
                self.bands * self.rows
            )));
        }
        Ok(())
    }

    /// The probability that two sketches at Hamming distance `d` (out of
    /// `nbits`) collide in at least one band.
    pub fn collision_probability(&self, d: u32, nbits: usize) -> f64 {
        let p_bit = 1.0 - f64::from(d) / nbits as f64;
        let p_band = p_bit.powi(self.rows as i32);
        1.0 - (1.0 - p_band).powi(self.bands as i32)
    }
}

fn band_value(sketch: &BitVec, band: usize, rows: usize) -> u64 {
    let mut v = 0u64;
    let base = band * rows;
    for r in 0..rows {
        if sketch.get(base + r) {
            v |= 1u64 << r;
        }
    }
    v
}

/// An in-memory banded index over segment sketches.
#[derive(Debug)]
pub struct BandedSketchIndex {
    params: BandingParams,
    nbits: usize,
    /// One hash table per band: band value -> owning objects.
    tables: Vec<HashMap<u64, Vec<ObjectId>>>,
    objects: usize,
}

impl BandedSketchIndex {
    /// Creates an empty index for `nbits`-bit sketches.
    pub fn new(nbits: usize, params: BandingParams) -> Result<Self> {
        params.validate(nbits)?;
        Ok(Self {
            params,
            nbits,
            tables: (0..params.bands).map(|_| HashMap::new()).collect(),
            objects: 0,
        })
    }

    /// The banding parameters.
    pub fn params(&self) -> BandingParams {
        self.params
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.objects
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.objects == 0
    }

    /// Indexes every segment sketch of an object.
    pub fn insert(&mut self, id: ObjectId, so: &SketchedObject) -> Result<()> {
        for sketch in &so.sketches {
            if sketch.len() != self.nbits {
                return Err(CoreError::SketchLengthMismatch {
                    left: sketch.len(),
                    right: self.nbits,
                });
            }
        }
        for sketch in &so.sketches {
            for band in 0..self.params.bands {
                let v = band_value(sketch, band, self.params.rows);
                let bucket = self.tables[band].entry(v).or_default();
                // An object may own several colliding segments; store once.
                if bucket.last() != Some(&id) {
                    bucket.push(id);
                }
            }
        }
        self.objects += 1;
        Ok(())
    }

    /// Candidate objects for a query: owners of any segment colliding with
    /// any query segment in any band.
    pub fn candidates(&self, query: &SketchedObject) -> Result<HashSet<ObjectId>> {
        let mut out = HashSet::new();
        for sketch in &query.sketches {
            if sketch.len() != self.nbits {
                return Err(CoreError::SketchLengthMismatch {
                    left: sketch.len(),
                    right: self.nbits,
                });
            }
            for band in 0..self.params.bands {
                let v = band_value(sketch, band, self.params.rows);
                if let Some(bucket) = self.tables[band].get(&v) {
                    out.extend(bucket.iter().copied());
                }
            }
        }
        Ok(out)
    }

    /// Total bucket entries (an index size measure).
    pub fn entries(&self) -> usize {
        self.tables
            .iter()
            .map(|t| t.values().map(Vec::len).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::DataObject;
    use crate::sketch::{SketchBuilder, SketchParams};
    use crate::vector::FeatureVector;

    fn builder(nbits: usize) -> SketchBuilder {
        SketchBuilder::new(
            SketchParams::new(nbits, vec![0.0; 4], vec![1.0; 4]).unwrap(),
            3,
        )
    }

    fn sketch_of(b: &SketchBuilder, components: [f32; 4]) -> SketchedObject {
        b.sketch_object(&DataObject::single(FeatureVector::from_components(
            components.to_vec(),
        )))
        .unwrap()
    }

    #[test]
    fn params_validation() {
        assert!(BandingParams { bands: 0, rows: 4 }.validate(64).is_err());
        assert!(BandingParams { bands: 4, rows: 0 }.validate(64).is_err());
        assert!(BandingParams { bands: 2, rows: 65 }.validate(256).is_err());
        assert!(BandingParams { bands: 9, rows: 8 }.validate(64).is_err());
        assert!(BandingParams { bands: 8, rows: 8 }.validate(64).is_ok());
    }

    #[test]
    fn collision_probability_shape() {
        let p = BandingParams { bands: 8, rows: 8 };
        // Identical sketches always collide.
        assert!((p.collision_probability(0, 64) - 1.0).abs() < 1e-12);
        // Probability decreases with distance.
        let near = p.collision_probability(4, 64);
        let far = p.collision_probability(32, 64);
        assert!(near > far);
        assert!(near > 0.9, "near collision prob {near}");
        assert!(far < 0.5, "far collision prob {far}");
    }

    #[test]
    fn identical_sketches_always_collide() {
        let b = builder(128);
        let mut index = BandedSketchIndex::new(128, BandingParams { bands: 8, rows: 16 }).unwrap();
        let so = sketch_of(&b, [0.3, 0.7, 0.5, 0.2]);
        index.insert(ObjectId(1), &so).unwrap();
        assert_eq!(index.len(), 1);
        let cands = index.candidates(&so).unwrap();
        assert!(cands.contains(&ObjectId(1)));
    }

    #[test]
    fn near_found_far_usually_not() {
        let b = builder(256);
        let params = BandingParams {
            bands: 16,
            rows: 16,
        };
        let mut index = BandedSketchIndex::new(256, params).unwrap();
        let base = [0.3f32, 0.7, 0.5, 0.2];
        index.insert(ObjectId(0), &sketch_of(&b, base)).unwrap();
        // Insert far objects.
        for i in 1..40u64 {
            let x = 0.5 + (i as f32) * 0.01;
            index
                .insert(ObjectId(i), &sketch_of(&b, [x, 1.0 - x, x, 1.0 - x]))
                .unwrap();
        }
        // A slightly perturbed query finds the base object.
        let query = sketch_of(&b, [0.305, 0.695, 0.505, 0.195]);
        let cands = index.candidates(&query).unwrap();
        assert!(cands.contains(&ObjectId(0)), "near neighbor missed");
        // And does not return everything.
        assert!(
            cands.len() < 20,
            "index returned {} of 40 objects",
            cands.len()
        );
    }

    /// Empirical recall matches the analytic collision probability within
    /// sampling noise.
    #[test]
    fn recall_tracks_collision_probability() {
        let nbits = 256;
        let b = builder(nbits);
        let params = BandingParams { bands: 8, rows: 16 };
        let base = [0.5f32, 0.5, 0.5, 0.5];
        let base_sketch = sketch_of(&b, base);
        // Perturbations at a fixed l1 distance.
        let delta = 0.06f32;
        let mut found = 0u32;
        let mut total_d = 0u32;
        let trials: u32 = 60;
        for t in 0..trials as usize {
            let sign = if t % 2 == 0 { 1.0 } else { -1.0 };
            let mut v = base;
            v[t % 4] += sign * delta * (1.0 + (t / 4) as f32 * 0.01);
            let so = sketch_of(&b, v);
            total_d += base_sketch.sketches[0].hamming(&so.sketches[0]).unwrap();
            let mut index = BandedSketchIndex::new(nbits, params).unwrap();
            index.insert(ObjectId(9), &so).unwrap();
            if index
                .candidates(&base_sketch)
                .unwrap()
                .contains(&ObjectId(9))
            {
                found += 1;
            }
        }
        let avg_d = total_d / trials;
        let expected = params.collision_probability(avg_d, nbits);
        let got = f64::from(found) / f64::from(trials);
        assert!(
            (got - expected).abs() < 0.25,
            "recall {got:.2} vs analytic {expected:.2} at avg distance {avg_d}"
        );
    }

    #[test]
    fn rejects_wrong_sketch_length() {
        let b64 = builder(64);
        let b128 = builder(128);
        let mut index = BandedSketchIndex::new(128, BandingParams { bands: 8, rows: 16 }).unwrap();
        let wrong = sketch_of(&b64, [0.1, 0.2, 0.3, 0.4]);
        assert!(index.insert(ObjectId(1), &wrong).is_err());
        let ok = sketch_of(&b128, [0.1, 0.2, 0.3, 0.4]);
        index.insert(ObjectId(1), &ok).unwrap();
        assert!(index.candidates(&wrong).is_err());
    }

    #[test]
    fn multi_segment_objects_are_indexed_once_per_bucket() {
        let b = builder(64);
        let obj = DataObject::new(vec![
            (
                FeatureVector::from_components(vec![0.2, 0.2, 0.2, 0.2]),
                0.5,
            ),
            (
                FeatureVector::from_components(vec![0.2, 0.2, 0.2, 0.2]),
                0.5,
            ),
        ])
        .unwrap();
        let so = b.sketch_object(&obj).unwrap();
        let mut index = BandedSketchIndex::new(64, BandingParams { bands: 4, rows: 16 }).unwrap();
        index.insert(ObjectId(5), &so).unwrap();
        // Identical segments share buckets; each bucket stores the id once.
        assert_eq!(index.entries(), 4);
        assert!(index.candidates(&so).unwrap().contains(&ObjectId(5)));
        assert!(!index.is_empty());
        assert_eq!(index.params(), BandingParams { bands: 4, rows: 16 });
    }
}
