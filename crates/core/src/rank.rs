//! The ranking unit: accurate ordering of the candidate set.
//!
//! Ranking implements the second query step (paper §4.1.1): the
//! (comparatively expensive) object distance function is evaluated between
//! the query and every candidate, and the closest `k` objects are returned.

use crate::distance::ObjectDistance;
use crate::error::Result;
use crate::object::{DataObject, ObjectId};

/// One ranked search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    /// The matched object.
    pub id: ObjectId,
    /// Its object distance to the query (smaller is more similar).
    pub distance: f64,
}

/// Ranks candidate objects by object distance to the query.
///
/// Returns at most `k` results sorted by ascending distance; ties are broken
/// by object id so results are deterministic.
pub fn rank_candidates<'a, I, D>(
    query: &DataObject,
    candidates: I,
    distance: &D,
    k: usize,
) -> Result<Vec<SearchResult>>
where
    I: IntoIterator<Item = (ObjectId, &'a DataObject)>,
    D: ObjectDistance + ?Sized,
{
    let mut results = Vec::new();
    for (id, obj) in candidates {
        let d = distance.distance(query, obj)?;
        results.push(SearchResult { id, distance: d });
    }
    sort_and_truncate(&mut results, k);
    Ok(results)
}

/// Ranks candidates by object distance using `threads` worker threads.
///
/// Distances are computed per candidate on a work-stealing chunk queue
/// (EMD cost varies with segment counts, so static partitioning would
/// leave threads idle), then reassembled in candidate order before the
/// `(distance, id)` sort — results are bit-identical to
/// [`rank_candidates`] over the same slice for every thread count.
pub fn rank_candidates_parallel<D>(
    query: &DataObject,
    candidates: &[(ObjectId, &DataObject)],
    distance: &D,
    k: usize,
    threads: usize,
) -> Result<Vec<SearchResult>>
where
    D: ObjectDistance + ?Sized,
{
    let mut results = crate::parallel::try_map_chunked(
        threads,
        crate::parallel::DEFAULT_CHUNK,
        candidates,
        |_, &(id, obj)| {
            let d = distance.distance(query, obj)?;
            Ok(SearchResult { id, distance: d })
        },
    )?;
    sort_and_truncate(&mut results, k);
    Ok(results)
}

/// Ranks precomputed `(id, distance)` scores.
///
/// Used when distances are computed from sketches rather than through an
/// [`ObjectDistance`] implementation.
pub fn rank_scores(mut results: Vec<SearchResult>, k: usize) -> Vec<SearchResult> {
    sort_and_truncate(&mut results, k);
    results
}

fn sort_and_truncate(results: &mut Vec<SearchResult>, k: usize) {
    results.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.id.cmp(&b.id))
    });
    results.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::emd::Emd;
    use crate::distance::lp::L1;
    use crate::vector::FeatureVector;

    fn obj1(x: f32) -> DataObject {
        DataObject::single(FeatureVector::new(vec![x]).unwrap())
    }

    #[test]
    fn ranks_by_distance_ascending() {
        let query = obj1(0.0);
        let a = obj1(5.0);
        let b = obj1(1.0);
        let c = obj1(3.0);
        let cands = vec![(ObjectId(1), &a), (ObjectId(2), &b), (ObjectId(3), &c)];
        let res = rank_candidates(&query, cands, &Emd::new(L1), 10).unwrap();
        let ids: Vec<u64> = res.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![2, 3, 1]);
        assert!((res[0].distance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn truncates_to_k() {
        let query = obj1(0.0);
        let objs: Vec<DataObject> = (0..10).map(|i| obj1(i as f32)).collect();
        let cands = objs
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjectId(i as u64), o));
        let res = rank_candidates(&query, cands, &Emd::new(L1), 3).unwrap();
        assert_eq!(res.len(), 3);
        assert_eq!(res[0].id, ObjectId(0));
    }

    #[test]
    fn ties_broken_by_id() {
        let query = obj1(0.0);
        let a = obj1(2.0);
        let b = obj1(2.0);
        let cands = vec![(ObjectId(9), &a), (ObjectId(1), &b)];
        let res = rank_candidates(&query, cands, &Emd::new(L1), 10).unwrap();
        assert_eq!(res[0].id, ObjectId(1));
        assert_eq!(res[1].id, ObjectId(9));
    }

    #[test]
    fn parallel_ranking_matches_serial() {
        let query = obj1(0.0);
        // Include exact-tie distances to exercise id tie-breaking.
        let objs: Vec<DataObject> = (0..30).map(|i| obj1((i % 7) as f32)).collect();
        let cands: Vec<(ObjectId, &DataObject)> = objs
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjectId(i as u64), o))
            .collect();
        let emd = Emd::new(L1);
        let serial = rank_candidates(&query, cands.iter().copied(), &emd, 12).unwrap();
        for threads in [1usize, 2, 5, 16] {
            let parallel = rank_candidates_parallel(&query, &cands, &emd, 12, threads).unwrap();
            assert_eq!(serial, parallel, "threads {threads}");
        }
    }

    #[test]
    fn rank_scores_sorts_and_truncates() {
        let res = rank_scores(
            vec![
                SearchResult {
                    id: ObjectId(1),
                    distance: 0.9,
                },
                SearchResult {
                    id: ObjectId(2),
                    distance: 0.1,
                },
                SearchResult {
                    id: ObjectId(3),
                    distance: 0.5,
                },
            ],
            2,
        );
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].id, ObjectId(2));
        assert_eq!(res[1].id, ObjectId(3));
    }

    #[test]
    fn empty_candidates_give_empty_results() {
        let query = obj1(0.0);
        let res = rank_candidates(&query, Vec::new(), &Emd::new(L1), 5).unwrap();
        assert!(res.is_empty());
    }
}
