//! Distance functions.
//!
//! The toolkit uses two kinds of distance functions (paper §4.2.2):
//!
//! * a **segment distance function** between two feature vectors, used by the
//!   filtering unit (and approximated by sketch Hamming distance), and
//! * an **object distance function** between two data objects (weighted sets
//!   of feature vectors), used by the ranking unit — by default the Earth
//!   Mover's Distance.

pub mod correlation;
pub mod emd;
pub mod hamming;
pub mod histogram;
pub mod lp;

use crate::error::Result;
use crate::object::DataObject;
use crate::vector::FeatureVector;

/// A distance function between two feature vectors (segments).
///
/// Implementations must be symmetric and non-negative; most are metrics but
/// that is not required (e.g. correlation distances violate the triangle
/// inequality only marginally under ties).
pub trait SegmentDistance: Send + Sync {
    /// Human-readable name used in reports ("l1", "l2", "pearson", ...).
    fn name(&self) -> &'static str;

    /// Evaluates the distance on raw component slices.
    ///
    /// Both slices must have the same length; this is the hot path and is
    /// only `debug_assert`ed. Use [`SegmentDistance::distance`] at API
    /// boundaries for checked evaluation.
    fn eval(&self, a: &[f32], b: &[f32]) -> f64;

    /// Checked evaluation on feature vectors.
    fn distance(&self, a: &FeatureVector, b: &FeatureVector) -> Result<f64> {
        a.check_same_dim(b)?;
        Ok(self.eval(a.components(), b.components()))
    }
}

/// A distance function between two data objects.
pub trait ObjectDistance: Send + Sync {
    /// Human-readable name used in reports ("emd", "thresholded-emd", ...).
    fn name(&self) -> &'static str;

    /// Evaluates the object distance.
    fn distance(&self, a: &DataObject, b: &DataObject) -> Result<f64>;
}

/// Blanket impl so trait objects and smart pointers can be used uniformly.
impl<T: SegmentDistance + ?Sized> SegmentDistance for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn eval(&self, a: &[f32], b: &[f32]) -> f64 {
        (**self).eval(a, b)
    }
}

impl<T: SegmentDistance + ?Sized> SegmentDistance for std::sync::Arc<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn eval(&self, a: &[f32], b: &[f32]) -> f64 {
        (**self).eval(a, b)
    }
}

impl<T: ObjectDistance + ?Sized> ObjectDistance for std::sync::Arc<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn distance(&self, a: &DataObject, b: &DataObject) -> Result<f64> {
        (**self).distance(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::lp::L1;
    use super::*;
    use std::sync::Arc;

    #[test]
    fn segment_distance_checks_dims() {
        let a = FeatureVector::new(vec![0.0, 0.0]).unwrap();
        let b = FeatureVector::new(vec![1.0]).unwrap();
        assert!(L1.distance(&a, &b).is_err());
    }

    #[test]
    fn arc_and_ref_forward() {
        let d: Arc<dyn SegmentDistance> = Arc::new(L1);
        assert_eq!(d.name(), "l1");
        assert_eq!(d.eval(&[0.0], &[2.0]), 2.0);
        let r: &dyn SegmentDistance = &L1;
        assert_eq!((&r).eval(&[1.0], &[0.0]), 1.0);
    }
}
