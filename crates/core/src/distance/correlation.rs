//! Correlation-based distances for genomic expression data (paper §5.4).
//!
//! The Princeton genomics group used Pearson correlation, Spearman rank
//! correlation, and ℓ₁ distance to compare gene expression rows. Correlation
//! `r ∈ [−1, 1]` is turned into a distance `1 − r ∈ [0, 2]`, so identical
//! expression profiles are at distance 0 and perfectly anti-correlated ones
//! at distance 2.

use super::SegmentDistance;

/// Pearson correlation distance: `1 − r` where `r` is the sample Pearson
/// correlation coefficient.
///
/// Degenerate inputs (a constant vector has zero variance) are defined to
/// have correlation 0, i.e. distance 1, unless both vectors are constant and
/// equal, in which case the distance is 0.
#[derive(Debug, Clone, Copy, Default)]
pub struct PearsonDistance;

/// Computes the sample Pearson correlation coefficient of two slices.
///
/// Returns `None` if either slice has zero variance.
pub fn pearson(a: &[f32], b: &[f32]) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    if a.is_empty() {
        return None;
    }
    let mean_a: f64 = a.iter().map(|&x| f64::from(x)).sum::<f64>() / n;
    let mean_b: f64 = b.iter().map(|&x| f64::from(x)).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let dx = f64::from(x) - mean_a;
        let dy = f64::from(y) - mean_b;
        cov += dx * dy;
        var_a += dx * dx;
        var_b += dy * dy;
    }
    if var_a <= 0.0 || var_b <= 0.0 {
        return None;
    }
    Some((cov / (var_a.sqrt() * var_b.sqrt())).clamp(-1.0, 1.0))
}

impl SegmentDistance for PearsonDistance {
    fn name(&self) -> &'static str {
        "pearson"
    }

    fn eval(&self, a: &[f32], b: &[f32]) -> f64 {
        match pearson(a, b) {
            Some(r) => 1.0 - r,
            None => {
                if a == b {
                    0.0
                } else {
                    1.0
                }
            }
        }
    }
}

/// Spearman rank correlation distance: `1 − ρ`, where `ρ` is Pearson
/// correlation applied to the value ranks (average ranks for ties).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpearmanDistance;

/// Converts values to average ranks (1-based), assigning tied values the
/// mean of the ranks they would occupy.
pub fn average_ranks(values: &[f32]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        values[i]
            .partial_cmp(&values[j])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        // Group ties: values[order[i..=j]] are all equal.
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Average of 1-based ranks i+1 ..= j+1.
        let avg = ((i + 1 + j + 1) as f64) / 2.0;
        for &k in &order[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

impl SegmentDistance for SpearmanDistance {
    fn name(&self) -> &'static str {
        "spearman"
    }

    fn eval(&self, a: &[f32], b: &[f32]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let ra: Vec<f32> = average_ranks(a).into_iter().map(|r| r as f32).collect();
        let rb: Vec<f32> = average_ranks(b).into_iter().map(|r| r as f32).collect();
        PearsonDistance.eval(&ra, &rb)
    }
}

/// Cosine distance: `1 − cos(a, b)`.
///
/// Not used by the paper's four systems but a common plug-in choice; zero
/// vectors are defined to be at distance 1 from everything except another
/// zero vector.
#[derive(Debug, Clone, Copy, Default)]
pub struct CosineDistance;

impl SegmentDistance for CosineDistance {
    fn name(&self) -> &'static str {
        "cosine"
    }

    fn eval(&self, a: &[f32], b: &[f32]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut dot = 0.0f64;
        let mut na = 0.0f64;
        let mut nb = 0.0f64;
        for (&x, &y) in a.iter().zip(b.iter()) {
            dot += f64::from(x) * f64::from(y);
            na += f64::from(x) * f64::from(x);
            nb += f64::from(y) * f64::from(y);
        }
        if na <= 0.0 || nb <= 0.0 {
            return if na == nb { 0.0 } else { 1.0 };
        }
        1.0 - (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_positive() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert!(PearsonDistance.eval(&a, &b) < 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 2.0, 1.0];
        assert!((pearson(&a, &b).unwrap() + 1.0).abs() < 1e-12);
        assert!((PearsonDistance.eval(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_vector_is_degenerate() {
        let a = [5.0, 5.0, 5.0];
        let b = [1.0, 2.0, 3.0];
        assert!(pearson(&a, &b).is_none());
        assert_eq!(PearsonDistance.eval(&a, &b), 1.0);
        assert_eq!(PearsonDistance.eval(&a, &a), 0.0);
    }

    #[test]
    fn pearson_invariant_to_affine_transform() {
        let a = [0.3f32, -1.2, 2.2, 0.9, -0.5];
        let b: Vec<f32> = a.iter().map(|x| 3.0 * x + 7.0).collect();
        assert!(PearsonDistance.eval(&a, &b) < 1e-6);
    }

    #[test]
    fn average_ranks_handles_ties() {
        // Values 10, 20, 20, 30 -> ranks 1, 2.5, 2.5, 4.
        assert_eq!(
            average_ranks(&[10.0, 20.0, 20.0, 30.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
        // All equal -> all get the middle rank.
        assert_eq!(average_ranks(&[7.0, 7.0, 7.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn spearman_is_rank_based() {
        // A monotone but non-linear relationship has perfect Spearman
        // correlation even though Pearson correlation is < 1.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!(SpearmanDistance.eval(&a, &b) < 1e-9);
        assert!(PearsonDistance.eval(&a, &b) > 1e-4);
    }

    #[test]
    fn spearman_reversed_is_two() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        assert!((SpearmanDistance.eval(&a, &b) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_basics() {
        assert!(CosineDistance.eval(&[1.0, 0.0], &[2.0, 0.0]) < 1e-12);
        assert!((CosineDistance.eval(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((CosineDistance.eval(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-12);
        assert_eq!(CosineDistance.eval(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        assert_eq!(CosineDistance.eval(&[0.0, 0.0], &[1.0, 0.0]), 1.0);
    }

    #[test]
    fn correlation_distances_are_symmetric() {
        let a = [0.4f32, 1.7, -2.0, 0.0, 3.3];
        let b = [9.1f32, -0.2, 0.7, 1.1, -4.0];
        for d in [
            &PearsonDistance as &dyn SegmentDistance,
            &SpearmanDistance,
            &CosineDistance,
        ] {
            assert!(
                (d.eval(&a, &b) - d.eval(&b, &a)).abs() < 1e-12,
                "{}",
                d.name()
            );
        }
    }
}
