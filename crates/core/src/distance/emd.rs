//! Earth Mover's Distance (EMD) between weighted sets of feature vectors.
//!
//! EMD is the toolkit's built-in default object distance (paper §4.2.2):
//! given objects `X` (m segments) and `Y` (n segments),
//!
//! ```text
//! EMD(X, Y) = min Σ_i Σ_j f_ij · d(X_i, Y_j)
//! s.t. f_ij ≥ 0, Σ_j f_ij = w(X_i), Σ_i f_ij = w(Y_j)
//! ```
//!
//! With both weight sets normalized to sum to 1 the problem is a balanced
//! transportation problem. We solve it exactly with successive shortest
//! paths (min-cost flow with Dijkstra over reduced costs), which performs at
//! most `m + n` augmentations on the complete bipartite network. A greedy
//! approximation (always an upper bound) is provided for speed comparisons,
//! and the improved EMD of [Lv et al., CIKM'04] — segment-distance
//! thresholding plus square-root weight transformation — is available as
//! [`ThresholdedEmd`].

use super::{ObjectDistance, SegmentDistance};
use crate::error::{CoreError, Result};
use crate::object::DataObject;

/// Tolerance below which a residual supply/demand is considered exhausted.
const EPS: f64 = 1e-12;

/// Solves the balanced transportation problem exactly.
///
/// `supply` and `demand` must be non-negative and have (approximately) equal
/// sums; `cost[i * demand.len() + j]` is the non-negative unit cost of
/// moving mass from supply node `i` to demand node `j`. Returns the minimal
/// total cost.
///
/// # Panics
///
/// Panics if `cost.len() != supply.len() * demand.len()`.
pub fn solve_transportation(supply: &[f64], demand: &[f64], cost: &[f64]) -> f64 {
    let m = supply.len();
    let n = demand.len();
    assert_eq!(cost.len(), m * n, "cost matrix shape mismatch");
    if m == 0 || n == 0 {
        return 0.0;
    }

    // Node layout: 0..m supplies, m..m+n demands.
    let total = m + n;
    let mut remaining_supply: Vec<f64> = supply.to_vec();
    let mut remaining_demand: Vec<f64> = demand.to_vec();
    // Flow on forward arcs (i, j); residual arcs are implied.
    let mut flow = vec![0.0f64; m * n];
    // Johnson potentials keep reduced costs non-negative for Dijkstra.
    let mut potential = vec![0.0f64; total];
    let mut total_cost = 0.0f64;

    loop {
        let supply_left: f64 = remaining_supply.iter().sum();
        if supply_left <= EPS {
            break;
        }

        // Dijkstra from the set of supply nodes with remaining supply to any
        // demand node with remaining demand, over the residual network.
        let mut dist = vec![f64::INFINITY; total];
        let mut prev: Vec<Option<(usize, bool)>> = vec![None; total]; // (node, forward?)
        let mut done = vec![false; total];
        for i in 0..m {
            if remaining_supply[i] > EPS {
                dist[i] = 0.0;
            }
        }
        // Dense Dijkstra: the graph is complete bipartite, so O(V^2) beats a
        // heap for the small V used per object pair.
        for _ in 0..total {
            let mut u = usize::MAX;
            let mut best = f64::INFINITY;
            for v in 0..total {
                if !done[v] && dist[v] < best {
                    best = dist[v];
                    u = v;
                }
            }
            if u == usize::MAX {
                break;
            }
            done[u] = true;
            if u < m {
                // Forward arcs u -> m + j.
                for j in 0..n {
                    let v = m + j;
                    if done[v] {
                        continue;
                    }
                    let rc = cost[u * n + j] + potential[u] - potential[v];
                    debug_assert!(rc > -1e-7, "negative reduced cost {rc}");
                    let nd = dist[u] + rc.max(0.0);
                    if nd + EPS < dist[v] {
                        dist[v] = nd;
                        prev[v] = Some((u, true));
                    }
                }
            } else {
                // Residual arcs (m + j) -> i exist where flow[i][j] > 0.
                let j = u - m;
                for i in 0..m {
                    if done[i] || flow[i * n + j] <= EPS {
                        continue;
                    }
                    let rc = -cost[i * n + j] + potential[u] - potential[i];
                    debug_assert!(rc > -1e-7, "negative reduced cost {rc}");
                    let nd = dist[u] + rc.max(0.0);
                    if nd + EPS < dist[i] {
                        dist[i] = nd;
                        prev[i] = Some((u, false));
                    }
                }
            }
        }

        // Cheapest reachable demand node with remaining demand.
        let mut sink = usize::MAX;
        let mut best = f64::INFINITY;
        for j in 0..n {
            if remaining_demand[j] > EPS && dist[m + j] < best {
                best = dist[m + j];
                sink = m + j;
            }
        }
        if sink == usize::MAX {
            // Numerically exhausted; remaining mass is within tolerance.
            break;
        }

        // Update potentials (only for reached nodes).
        for v in 0..total {
            if dist[v].is_finite() {
                potential[v] += dist[v];
            }
        }

        // Trace the path back to a source, finding the bottleneck.
        let mut bottleneck = remaining_demand[sink - m];
        let mut v = sink;
        while let Some((u, forward)) = prev[v] {
            if forward {
                // Arc u -> v, infinite capacity: no constraint.
            } else {
                // Residual arc (v's flow): capacity flow[u_as_supply].
                let j = u - m;
                bottleneck = bottleneck.min(flow[v * n + j]);
            }
            v = u;
        }
        bottleneck = bottleneck.min(remaining_supply[v]);
        if bottleneck <= EPS {
            break;
        }

        // Apply the augmentation.
        let mut v = sink;
        while let Some((u, forward)) = prev[v] {
            if forward {
                let (i, j) = (u, v - m);
                flow[i * n + j] += bottleneck;
                total_cost += bottleneck * cost[i * n + j];
            } else {
                let (i, j) = (v, u - m);
                flow[i * n + j] -= bottleneck;
                total_cost -= bottleneck * cost[i * n + j];
            }
            v = u;
        }
        remaining_supply[v] -= bottleneck;
        remaining_demand[sink - m] -= bottleneck;
    }

    total_cost.max(0.0)
}

/// Computes EMD given weight vectors and a pairwise ground-cost closure.
///
/// Weights are normalized internally so each side sums to 1 (the paper's
/// objects carry normalized weights already; normalization here makes the
/// function total). Returns an error if either side is empty or a weight sum
/// is not positive.
pub fn emd_with_costs<F>(wa: &[f32], wb: &[f32], mut ground: F) -> Result<f64>
where
    F: FnMut(usize, usize) -> f64,
{
    if wa.is_empty() || wb.is_empty() {
        return Err(CoreError::EmptyObject);
    }
    let sa: f64 = wa.iter().map(|&w| f64::from(w)).sum();
    let sb: f64 = wb.iter().map(|&w| f64::from(w)).sum();
    if sa <= 0.0 || sb <= 0.0 {
        return Err(CoreError::InvalidWeights("weight sum not positive".into()));
    }
    let supply: Vec<f64> = wa.iter().map(|&w| f64::from(w) / sa).collect();
    let demand: Vec<f64> = wb.iter().map(|&w| f64::from(w) / sb).collect();
    let m = supply.len();
    let n = demand.len();
    let mut cost = vec![0.0f64; m * n];
    for i in 0..m {
        for j in 0..n {
            let c = ground(i, j);
            debug_assert!(c >= 0.0 && c.is_finite(), "ground distance must be >= 0");
            cost[i * n + j] = c.max(0.0);
        }
    }
    Ok(solve_transportation(&supply, &demand, &cost))
}

/// Greedy upper-bound approximation of EMD.
///
/// Considers all `(i, j)` pairs in increasing ground-cost order and moves as
/// much mass as possible along each. Exact when one side has a single
/// segment; otherwise an upper bound that is fast and usually tight for
/// well-separated clusters.
pub fn greedy_emd_with_costs<F>(wa: &[f32], wb: &[f32], mut ground: F) -> Result<f64>
where
    F: FnMut(usize, usize) -> f64,
{
    if wa.is_empty() || wb.is_empty() {
        return Err(CoreError::EmptyObject);
    }
    let sa: f64 = wa.iter().map(|&w| f64::from(w)).sum();
    let sb: f64 = wb.iter().map(|&w| f64::from(w)).sum();
    if sa <= 0.0 || sb <= 0.0 {
        return Err(CoreError::InvalidWeights("weight sum not positive".into()));
    }
    let mut supply: Vec<f64> = wa.iter().map(|&w| f64::from(w) / sa).collect();
    let mut demand: Vec<f64> = wb.iter().map(|&w| f64::from(w) / sb).collect();
    let m = supply.len();
    let n = demand.len();
    let mut pairs: Vec<(f64, usize, usize)> = Vec::with_capacity(m * n);
    for i in 0..m {
        for j in 0..n {
            pairs.push((ground(i, j).max(0.0), i, j));
        }
    }
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut total = 0.0f64;
    for (c, i, j) in pairs {
        let f = supply[i].min(demand[j]);
        if f > EPS {
            supply[i] -= f;
            demand[j] -= f;
            total += f * c;
        }
    }
    Ok(total)
}

/// Exact EMD object distance parameterized by a ground segment distance.
#[derive(Debug, Clone)]
pub struct Emd<G> {
    ground: G,
}

impl<G: SegmentDistance> Emd<G> {
    /// Creates an EMD object distance with the given ground distance.
    pub fn new(ground: G) -> Self {
        Self { ground }
    }

    /// The ground distance function.
    pub fn ground(&self) -> &G {
        &self.ground
    }
}

impl<G: SegmentDistance> ObjectDistance for Emd<G> {
    fn name(&self) -> &'static str {
        "emd"
    }

    fn distance(&self, a: &DataObject, b: &DataObject) -> Result<f64> {
        if a.dim() != b.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: a.dim(),
                actual: b.dim(),
            });
        }
        // Single-segment objects (3D shapes, genes): EMD degenerates to the
        // ground distance; skip the solver and its allocations.
        if a.num_segments() == 1 && b.num_segments() == 1 {
            return Ok(self.ground.eval(
                a.segment(0).vector.components(),
                b.segment(0).vector.components(),
            ));
        }
        let wa: Vec<f32> = a.segments().iter().map(|s| s.weight).collect();
        let wb: Vec<f32> = b.segments().iter().map(|s| s.weight).collect();
        emd_with_costs(&wa, &wb, |i, j| {
            self.ground.eval(
                a.segment(i).vector.components(),
                b.segment(j).vector.components(),
            )
        })
    }
}

/// The improved EMD of [Lv, Charikar, Li — CIKM'04] used by the image system
/// (paper §5.1): ground distances are clamped at a threshold `tau` to limit
/// the influence of outlier segments, and segment weights may be transformed
/// by square root (then renormalized) to boost small but salient segments.
#[derive(Debug, Clone)]
pub struct ThresholdedEmd<G> {
    ground: G,
    tau: f64,
    sqrt_weights: bool,
}

impl<G: SegmentDistance> ThresholdedEmd<G> {
    /// Creates a thresholded EMD.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not positive and finite.
    pub fn new(ground: G, tau: f64, sqrt_weights: bool) -> Self {
        assert!(tau.is_finite() && tau > 0.0, "threshold must be positive");
        Self {
            ground,
            tau,
            sqrt_weights,
        }
    }

    /// The distance threshold `tau`.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    fn transform_weights(&self, obj: &DataObject) -> Vec<f32> {
        let raw: Vec<f32> = obj.segments().iter().map(|s| s.weight).collect();
        if !self.sqrt_weights {
            return raw;
        }
        let sqrted: Vec<f64> = raw.iter().map(|&w| f64::from(w).sqrt()).collect();
        let sum: f64 = sqrted.iter().sum();
        if sum <= 0.0 {
            return raw;
        }
        sqrted.into_iter().map(|w| (w / sum) as f32).collect()
    }
}

impl<G: SegmentDistance> ObjectDistance for ThresholdedEmd<G> {
    fn name(&self) -> &'static str {
        "thresholded-emd"
    }

    fn distance(&self, a: &DataObject, b: &DataObject) -> Result<f64> {
        if a.dim() != b.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: a.dim(),
                actual: b.dim(),
            });
        }
        if a.num_segments() == 1 && b.num_segments() == 1 {
            return Ok(self
                .ground
                .eval(
                    a.segment(0).vector.components(),
                    b.segment(0).vector.components(),
                )
                .min(self.tau));
        }
        let wa = self.transform_weights(a);
        let wb = self.transform_weights(b);
        emd_with_costs(&wa, &wb, |i, j| {
            self.ground
                .eval(
                    a.segment(i).vector.components(),
                    b.segment(j).vector.components(),
                )
                .min(self.tau)
        })
    }
}

/// Greedy-approximate EMD object distance (upper bound on [`Emd`]).
#[derive(Debug, Clone)]
pub struct GreedyEmd<G> {
    ground: G,
}

impl<G: SegmentDistance> GreedyEmd<G> {
    /// Creates a greedy EMD approximation with the given ground distance.
    pub fn new(ground: G) -> Self {
        Self { ground }
    }
}

impl<G: SegmentDistance> ObjectDistance for GreedyEmd<G> {
    fn name(&self) -> &'static str {
        "greedy-emd"
    }

    fn distance(&self, a: &DataObject, b: &DataObject) -> Result<f64> {
        if a.dim() != b.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: a.dim(),
                actual: b.dim(),
            });
        }
        let wa: Vec<f32> = a.segments().iter().map(|s| s.weight).collect();
        let wb: Vec<f32> = b.segments().iter().map(|s| s.weight).collect();
        greedy_emd_with_costs(&wa, &wb, |i, j| {
            self.ground.eval(
                a.segment(i).vector.components(),
                b.segment(j).vector.components(),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::lp::L1;
    use crate::vector::FeatureVector;

    fn obj(parts: &[(&[f32], f32)]) -> DataObject {
        DataObject::new(
            parts
                .iter()
                .map(|(c, w)| (FeatureVector::new(c.to_vec()).unwrap(), *w))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn transportation_single_pair() {
        let c = solve_transportation(&[1.0], &[1.0], &[3.5]);
        assert!((c - 3.5).abs() < 1e-9);
    }

    #[test]
    fn transportation_hand_example() {
        // Two suppliers (0.5, 0.5), two consumers (0.5, 0.5).
        // cost = [[0, 10], [10, 0]] -> optimal matches diagonally, cost 0.
        let c = solve_transportation(&[0.5, 0.5], &[0.5, 0.5], &[0.0, 10.0, 10.0, 0.0]);
        assert!(c.abs() < 1e-9);
        // cost = [[1, 2], [3, 1]]: best is 0.5*1 + 0.5*1 = 1.
        let c = solve_transportation(&[0.5, 0.5], &[0.5, 0.5], &[1.0, 2.0, 3.0, 1.0]);
        assert!((c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transportation_requires_splitting() {
        // Classic example where mass from one supplier must split.
        // supply (0.7, 0.3), demand (0.4, 0.6), cost [[1, 4], [2, 1]].
        // Optimal: f00=0.4, f01=0.3, f11=0.3 => 0.4 + 1.2 + 0.3 = 1.9.
        let c = solve_transportation(&[0.7, 0.3], &[0.4, 0.6], &[1.0, 4.0, 2.0, 1.0]);
        assert!((c - 1.9).abs() < 1e-9, "got {c}");
    }

    #[test]
    fn transportation_rectangular() {
        // 3 suppliers, 2 consumers.
        let c = solve_transportation(
            &[0.2, 0.3, 0.5],
            &[0.6, 0.4],
            &[1.0, 5.0, 2.0, 1.0, 3.0, 2.0],
        );
        // Best: s0->d0 (0.2*1), s1->d1 (0.3*1), s2 splits d0 0.4*3 + d1 0.1*2.
        assert!((c - (0.2 + 0.3 + 1.2 + 0.2)).abs() < 1e-9, "got {c}");
    }

    /// With uniform weights and m == n, EMD reduces to the optimal assignment
    /// (Birkhoff–von Neumann); brute-force all permutations as ground truth.
    #[test]
    fn matches_bruteforce_assignment() {
        fn permutations(n: usize) -> Vec<Vec<usize>> {
            if n == 1 {
                return vec![vec![0]];
            }
            let mut out = Vec::new();
            for p in permutations(n - 1) {
                for pos in 0..n {
                    let mut q: Vec<usize> = p.iter().map(|&x| x + usize::from(x >= pos)).collect();
                    q.insert(0, pos);
                    // Rotate so insertion position varies; simpler: p maps
                    // 1..n, prepend pos.
                    out.push(q);
                }
            }
            out
        }
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / f64::from(u32::MAX)
        };
        for n in 2..=5usize {
            let w = vec![1.0f64 / n as f64; n];
            let mut cost = vec![0.0f64; n * n];
            for c in cost.iter_mut() {
                *c = next() * 10.0;
            }
            let solved = solve_transportation(&w, &w, &cost);
            let mut best = f64::INFINITY;
            for p in permutations(n) {
                let total: f64 = (0..n).map(|i| cost[i * n + p[i]]).sum::<f64>() / n as f64;
                best = best.min(total);
            }
            assert!(
                (solved - best).abs() < 1e-7,
                "n={n}: solver {solved} vs bruteforce {best}"
            );
        }
    }

    #[test]
    fn emd_identical_objects_is_zero() {
        let x = obj(&[(&[0.0, 0.0], 0.5), (&[3.0, 4.0], 0.5)]);
        let d = Emd::new(L1).distance(&x, &x).unwrap();
        assert!(d.abs() < 1e-9);
    }

    #[test]
    fn emd_single_segment_equals_ground() {
        let x = obj(&[(&[0.0, 0.0], 1.0)]);
        let y = obj(&[(&[3.0, 4.0], 1.0)]);
        let d = Emd::new(L1).distance(&x, &y).unwrap();
        assert!((d - 7.0).abs() < 1e-9);
    }

    #[test]
    fn emd_order_insensitive() {
        // "Two sound files that exhibit similar segments, but in different
        // order, would be judged similar by the EMD method" (paper §2).
        let x = obj(&[(&[0.0], 0.5), (&[10.0], 0.5)]);
        let y = obj(&[(&[10.0], 0.5), (&[0.0], 0.5)]);
        let d = Emd::new(L1).distance(&x, &y).unwrap();
        assert!(d.abs() < 1e-9);
    }

    #[test]
    fn emd_is_symmetric() {
        let x = obj(&[(&[0.0, 1.0], 0.3), (&[5.0, 2.0], 0.7)]);
        let y = obj(&[(&[1.0, 1.0], 0.6), (&[4.0, 0.0], 0.2), (&[9.0, 9.0], 0.2)]);
        let e = Emd::new(L1);
        let d1 = e.distance(&x, &y).unwrap();
        let d2 = e.distance(&y, &x).unwrap();
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn emd_triangle_inequality_on_metric_ground() {
        let x = obj(&[(&[0.0], 0.5), (&[2.0], 0.5)]);
        let y = obj(&[(&[1.0], 1.0)]);
        let z = obj(&[(&[5.0], 0.25), (&[3.0], 0.75)]);
        let e = Emd::new(L1);
        let dxy = e.distance(&x, &y).unwrap();
        let dyz = e.distance(&y, &z).unwrap();
        let dxz = e.distance(&x, &z).unwrap();
        assert!(dxz <= dxy + dyz + 1e-9);
    }

    #[test]
    fn greedy_is_upper_bound() {
        let x = obj(&[(&[0.0, 1.0], 0.3), (&[5.0, 2.0], 0.4), (&[7.0, 7.0], 0.3)]);
        let y = obj(&[(&[1.0, 1.0], 0.6), (&[4.0, 0.0], 0.4)]);
        let exact = Emd::new(L1).distance(&x, &y).unwrap();
        let greedy = GreedyEmd::new(L1).distance(&x, &y).unwrap();
        assert!(greedy >= exact - 1e-9, "greedy {greedy} < exact {exact}");
    }

    #[test]
    fn thresholded_emd_caps_outliers() {
        let x = obj(&[(&[0.0], 0.5), (&[1000.0], 0.5)]);
        let y = obj(&[(&[0.0], 0.5), (&[2000.0], 0.5)]);
        let plain = Emd::new(L1).distance(&x, &y).unwrap();
        let thresh = ThresholdedEmd::new(L1, 10.0, false)
            .distance(&x, &y)
            .unwrap();
        assert!(plain > 400.0);
        assert!(thresh <= 10.0 + 1e-9);
    }

    #[test]
    fn thresholded_emd_sqrt_weights_boost_small_segments() {
        // Small segment far away: sqrt weighting increases its influence.
        let x = obj(&[(&[0.0], 0.99), (&[5.0], 0.01)]);
        let y = obj(&[(&[0.0], 0.99), (&[9.0], 0.01)]);
        let plain = ThresholdedEmd::new(L1, 100.0, false)
            .distance(&x, &y)
            .unwrap();
        let sqrt = ThresholdedEmd::new(L1, 100.0, true)
            .distance(&x, &y)
            .unwrap();
        assert!(sqrt > plain);
    }

    #[test]
    fn emd_rejects_dim_mismatch() {
        let x = obj(&[(&[0.0, 1.0], 1.0)]);
        let y = obj(&[(&[0.0], 1.0)]);
        assert!(Emd::new(L1).distance(&x, &y).is_err());
    }

    #[test]
    fn emd_with_costs_normalizes_weights() {
        // Unnormalized weights give the same answer as normalized ones.
        let d1 =
            emd_with_costs(&[2.0, 2.0], &[4.0], |i, _| if i == 0 { 1.0 } else { 3.0 }).unwrap();
        let d2 =
            emd_with_costs(&[0.5, 0.5], &[1.0], |i, _| if i == 0 { 1.0 } else { 3.0 }).unwrap();
        assert!((d1 - d2).abs() < 1e-9);
        assert!((d1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn emd_with_costs_rejects_bad_input() {
        assert!(emd_with_costs(&[], &[1.0], |_, _| 0.0).is_err());
        assert!(emd_with_costs(&[0.0], &[1.0], |_, _| 0.0).is_err());
        assert!(greedy_emd_with_costs(&[], &[1.0], |_, _| 0.0).is_err());
    }

    #[test]
    fn greedy_exact_when_one_side_single() {
        let x = obj(&[(&[0.0], 0.5), (&[4.0], 0.5)]);
        let y = obj(&[(&[2.0], 1.0)]);
        let exact = Emd::new(L1).distance(&x, &y).unwrap();
        let greedy = GreedyEmd::new(L1).distance(&x, &y).unwrap();
        assert!((exact - greedy).abs() < 1e-9);
        assert!((exact - 2.0).abs() < 1e-9);
    }
}
