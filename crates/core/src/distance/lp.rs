//! ℓ_p norm distances on feature vectors.
//!
//! The paper's image and audio systems use (weighted) ℓ₁ as the segment
//! distance; the 3D shape baseline uses ℓ₂ (§5). The general ℓ_p form is
//! `d(X, Y) = (Σ |X_i − Y_i|^p)^(1/p)`.

use super::SegmentDistance;

/// The ℓ₁ (Manhattan) distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct L1;

impl SegmentDistance for L1 {
    fn name(&self) -> &'static str {
        "l1"
    }

    fn eval(&self, a: &[f32], b: &[f32]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut sum = 0.0f64;
        for (x, y) in a.iter().zip(b.iter()) {
            sum += f64::from(x - y).abs();
        }
        sum
    }
}

/// The ℓ₂ (Euclidean) distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct L2;

impl SegmentDistance for L2 {
    fn name(&self) -> &'static str {
        "l2"
    }

    fn eval(&self, a: &[f32], b: &[f32]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut sum = 0.0f64;
        for (x, y) in a.iter().zip(b.iter()) {
            let d = f64::from(x - y);
            sum += d * d;
        }
        sum.sqrt()
    }
}

/// The general ℓ_p distance for `p >= 1`.
#[derive(Debug, Clone, Copy)]
pub struct Lp {
    p: f64,
}

impl Lp {
    /// Creates an ℓ_p distance.
    ///
    /// # Panics
    ///
    /// Panics if `p < 1` (not a norm) or `p` is not finite.
    pub fn new(p: f64) -> Self {
        assert!(p.is_finite() && p >= 1.0, "lp norm requires finite p >= 1");
        Self { p }
    }

    /// The exponent `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl SegmentDistance for Lp {
    fn name(&self) -> &'static str {
        "lp"
    }

    fn eval(&self, a: &[f32], b: &[f32]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut sum = 0.0f64;
        for (x, y) in a.iter().zip(b.iter()) {
            sum += f64::from(x - y).abs().powf(self.p);
        }
        sum.powf(1.0 / self.p)
    }
}

/// The ℓ_∞ (Chebyshev) distance: the maximum per-dimension difference.
#[derive(Debug, Clone, Copy, Default)]
pub struct LInf;

impl SegmentDistance for LInf {
    fn name(&self) -> &'static str {
        "linf"
    }

    fn eval(&self, a: &[f32], b: &[f32]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| f64::from(x - y).abs())
            .fold(0.0, f64::max)
    }
}

/// Per-dimension weighted ℓ₁ distance: `Σ w_i · |X_i − Y_i|`.
///
/// Used as the image segment distance in the paper (§5.1), where bounding
/// box dimensions are weighted differently from color moments.
#[derive(Debug, Clone)]
pub struct WeightedL1 {
    weights: Box<[f32]>,
}

impl WeightedL1 {
    /// Creates a weighted ℓ₁ distance with one non-negative weight per
    /// dimension.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or contains a negative or non-finite
    /// weight.
    pub fn new(weights: Vec<f32>) -> Self {
        assert!(!weights.is_empty(), "weighted l1 needs at least 1 weight");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weighted l1 weights must be finite and non-negative"
        );
        Self {
            weights: weights.into_boxed_slice(),
        }
    }

    /// The per-dimension weights.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }
}

impl SegmentDistance for WeightedL1 {
    fn name(&self) -> &'static str {
        "weighted-l1"
    }

    fn eval(&self, a: &[f32], b: &[f32]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        debug_assert_eq!(a.len(), self.weights.len());
        let mut sum = 0.0f64;
        for ((x, y), w) in a.iter().zip(b.iter()).zip(self.weights.iter()) {
            sum += f64::from(*w) * f64::from(x - y).abs();
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f32; 3] = [1.0, 2.0, 3.0];
    const B: [f32; 3] = [4.0, 0.0, 3.0];

    #[test]
    fn l1_matches_hand_computation() {
        assert_eq!(L1.eval(&A, &B), 5.0);
        assert_eq!(L1.eval(&A, &A), 0.0);
    }

    #[test]
    fn l2_matches_hand_computation() {
        let d = L2.eval(&A, &B);
        assert!((d - 13.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn lp_generalizes_l1_l2() {
        let d1 = Lp::new(1.0).eval(&A, &B);
        let d2 = Lp::new(2.0).eval(&A, &B);
        assert!((d1 - L1.eval(&A, &B)).abs() < 1e-9);
        assert!((d2 - L2.eval(&A, &B)).abs() < 1e-9);
    }

    #[test]
    fn linf_is_max_component() {
        assert_eq!(LInf.eval(&A, &B), 3.0);
    }

    #[test]
    #[should_panic(expected = "p >= 1")]
    fn lp_rejects_p_below_one() {
        let _ = Lp::new(0.5);
    }

    #[test]
    fn weighted_l1_applies_weights() {
        let d = WeightedL1::new(vec![1.0, 0.5, 0.0]);
        assert_eq!(d.eval(&A, &B), 3.0 + 0.5 * 2.0);
        assert_eq!(d.weights().len(), 3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn weighted_l1_rejects_negative_weight() {
        let _ = WeightedL1::new(vec![1.0, -0.1]);
    }

    #[test]
    fn lp_monotone_in_p_on_unit_differences() {
        // With all |diffs| = 1, lp distance is n^(1/p), decreasing in p.
        let a = [0.0f32; 8];
        let b = [1.0f32; 8];
        let d1 = Lp::new(1.0).eval(&a, &b);
        let d3 = Lp::new(3.0).eval(&a, &b);
        let d8 = Lp::new(8.0).eval(&a, &b);
        assert!(d1 > d3 && d3 > d8);
        assert!((d1 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn symmetry() {
        for d in [
            &L1 as &dyn SegmentDistance,
            &L2,
            &LInf,
            &Lp::new(3.0),
            &WeightedL1::new(vec![0.3, 1.0, 2.0]),
        ] {
            assert!(
                (d.eval(&A, &B) - d.eval(&B, &A)).abs() < 1e-12,
                "{}",
                d.name()
            );
        }
    }
}
