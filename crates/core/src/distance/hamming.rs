//! Hamming-based distances on sketches.
//!
//! The filtering unit streams sketches and compares them with "an extremely
//! fast distance function such as Hamming distance" (paper §4.1.1). When the
//! engine ranks with sketches only (`BruteForceSketch`), Hamming distances
//! are rescaled to the ℓ₁ scale so thresholds carry over.

use crate::error::Result;
use crate::sketch::BitVec;

/// A distance function between two sketches.
pub trait SketchDistance: Send + Sync {
    /// Human-readable name used in reports.
    fn name(&self) -> &'static str;

    /// Evaluates the distance between two sketches of equal length.
    fn eval(&self, a: &BitVec, b: &BitVec) -> f64;

    /// Checked evaluation.
    fn distance(&self, a: &BitVec, b: &BitVec) -> Result<f64> {
        let _ = a.hamming(b)?; // Length check.
        Ok(self.eval(a, b))
    }
}

/// Plain Hamming distance (number of differing bits).
#[derive(Debug, Clone, Copy, Default)]
pub struct Hamming;

impl SketchDistance for Hamming {
    fn name(&self) -> &'static str {
        "hamming"
    }

    fn eval(&self, a: &BitVec, b: &BitVec) -> f64 {
        f64::from(a.hamming_unchecked(b))
    }
}

/// Hamming distance scaled by a constant factor.
///
/// With `scale = 1 / hamming_per_l1` (see
/// [`crate::sketch::SketchBuilder::hamming_per_l1`]) this estimates the
/// original weighted ℓ₁ distance from the sketches.
#[derive(Debug, Clone, Copy)]
pub struct ScaledHamming {
    scale: f64,
}

impl ScaledHamming {
    /// Creates a scaled Hamming distance.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    pub fn new(scale: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        Self { scale }
    }

    /// The scale factor applied to the raw Hamming distance.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl SketchDistance for ScaledHamming {
    fn name(&self) -> &'static str {
        "scaled-hamming"
    }

    fn eval(&self, a: &BitVec, b: &BitVec) -> f64 {
        f64::from(a.hamming_unchecked(b)) * self.scale
    }
}

/// Normalized Hamming distance: the fraction of differing bits in `[0, 1]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalizedHamming;

impl SketchDistance for NormalizedHamming {
    fn name(&self) -> &'static str {
        "normalized-hamming"
    }

    fn eval(&self, a: &BitVec, b: &BitVec) -> f64 {
        if a.is_empty() {
            return 0.0;
        }
        f64::from(a.hamming_unchecked(b)) / a.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_matches_bitvec() {
        let a = BitVec::from_bits(&[true, false, true, true]);
        let b = BitVec::from_bits(&[false, false, true, false]);
        assert_eq!(Hamming.eval(&a, &b), 2.0);
        assert_eq!(Hamming.distance(&a, &b).unwrap(), 2.0);
    }

    #[test]
    fn distance_checks_lengths() {
        let a = BitVec::zeros(8);
        let b = BitVec::zeros(9);
        assert!(Hamming.distance(&a, &b).is_err());
    }

    #[test]
    fn scaled_hamming_applies_scale() {
        let a = BitVec::from_bits(&[true, true, false, false]);
        let b = BitVec::from_bits(&[false, false, false, false]);
        assert_eq!(ScaledHamming::new(0.5).eval(&a, &b), 1.0);
        assert_eq!(ScaledHamming::new(0.5).scale(), 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_hamming_rejects_zero_scale() {
        let _ = ScaledHamming::new(0.0);
    }

    #[test]
    fn normalized_hamming_is_fraction() {
        let a = BitVec::from_bits(&[true, false, true, false]);
        let b = BitVec::from_bits(&[false, false, true, false]);
        assert_eq!(NormalizedHamming.eval(&a, &b), 0.25);
        let e = BitVec::zeros(0);
        assert_eq!(NormalizedHamming.eval(&e, &e), 0.0);
    }
}
