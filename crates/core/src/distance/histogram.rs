//! Histogram distances, common plug-in choices for CBIR feature vectors.
//!
//! Region features are often distributions (color histograms, mel-energy
//! profiles). Beyond ℓ_p norms, two classic comparisons are the χ²
//! distance and histogram intersection; both are available as segment
//! distance plug-ins (paper §4.2.2 lets users "define herself" the segment
//! distance function).

use super::SegmentDistance;

/// The (symmetrized) χ² distance:
/// `½ Σ_i (x_i − y_i)² / (x_i + y_i)` over non-negative bins.
///
/// Bins where `x_i + y_i ≤ 0` contribute nothing. Negative inputs are
/// clamped to zero (histograms are non-negative by construction).
#[derive(Debug, Clone, Copy, Default)]
pub struct ChiSquare;

impl SegmentDistance for ChiSquare {
    fn name(&self) -> &'static str {
        "chi-square"
    }

    fn eval(&self, a: &[f32], b: &[f32]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut sum = 0.0f64;
        for (&x, &y) in a.iter().zip(b.iter()) {
            let x = f64::from(x).max(0.0);
            let y = f64::from(y).max(0.0);
            let denom = x + y;
            if denom > 0.0 {
                let d = x - y;
                sum += d * d / denom;
            }
        }
        0.5 * sum
    }
}

/// Histogram intersection distance:
/// `1 − Σ_i min(x_i, y_i) / min(Σ x, Σ y)`.
///
/// 0 when one histogram is contained in the other, 1 when the supports are
/// disjoint. Zero-mass inputs are at distance 1 from everything except
/// another zero-mass input.
#[derive(Debug, Clone, Copy, Default)]
pub struct HistogramIntersection;

impl SegmentDistance for HistogramIntersection {
    fn name(&self) -> &'static str {
        "histogram-intersection"
    }

    fn eval(&self, a: &[f32], b: &[f32]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut overlap = 0.0f64;
        let mut sum_a = 0.0f64;
        let mut sum_b = 0.0f64;
        for (&x, &y) in a.iter().zip(b.iter()) {
            let x = f64::from(x).max(0.0);
            let y = f64::from(y).max(0.0);
            overlap += x.min(y);
            sum_a += x;
            sum_b += y;
        }
        let denom = sum_a.min(sum_b);
        if denom <= 0.0 {
            return if sum_a == sum_b { 0.0 } else { 1.0 };
        }
        1.0 - (overlap / denom).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi_square_basics() {
        let a = [0.5f32, 0.5, 0.0];
        let b = [0.5f32, 0.0, 0.5];
        // Bins 2 and 3: (0.5)^2 / 0.5 each = 0.5 + 0.5, halved = 0.5.
        assert!((ChiSquare.eval(&a, &b) - 0.5).abs() < 1e-9);
        assert_eq!(ChiSquare.eval(&a, &a), 0.0);
        assert_eq!(ChiSquare.name(), "chi-square");
    }

    #[test]
    fn chi_square_symmetric_and_nonnegative() {
        let a = [0.1f32, 0.7, 0.2];
        let b = [0.3f32, 0.3, 0.4];
        let d1 = ChiSquare.eval(&a, &b);
        let d2 = ChiSquare.eval(&b, &a);
        assert!((d1 - d2).abs() < 1e-12);
        assert!(d1 > 0.0);
    }

    #[test]
    fn chi_square_ignores_empty_bins_and_clamps_negatives() {
        assert_eq!(ChiSquare.eval(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        // Negative values treated as zero.
        assert_eq!(ChiSquare.eval(&[-1.0, 0.5], &[-1.0, 0.5]), 0.0);
    }

    #[test]
    fn intersection_basics() {
        let a = [0.5f32, 0.5, 0.0];
        assert_eq!(HistogramIntersection.eval(&a, &a), 0.0);
        // Disjoint supports.
        let b = [0.0f32, 0.0, 1.0];
        assert_eq!(HistogramIntersection.eval(&a, &b), 1.0);
        // Containment: b inside a.
        let c = [0.25f32, 0.25, 0.0];
        assert!(HistogramIntersection.eval(&a, &c) < 1e-9);
    }

    #[test]
    fn intersection_partial_overlap() {
        let a = [0.5f32, 0.5];
        let b = [0.5f32, 0.0];
        // Overlap 0.5, min mass 0.5 -> distance 0.
        assert!(HistogramIntersection.eval(&a, &b) < 1e-9);
        let c = [0.25f32, 0.25];
        let d = [0.0f32, 0.25];
        // Overlap 0.25 of min mass 0.25 -> 0; change d to [0.25, 0] vs c?
        assert!(HistogramIntersection.eval(&c, &d) < 1e-9);
        // Genuine partial overlap.
        let e = [0.6f32, 0.4];
        let f = [0.4f32, 0.6];
        let dist = HistogramIntersection.eval(&e, &f);
        assert!((dist - 0.2).abs() < 1e-6, "got {dist}");
    }

    #[test]
    fn intersection_zero_mass() {
        assert_eq!(HistogramIntersection.eval(&[0.0], &[0.0]), 0.0);
        assert_eq!(HistogramIntersection.eval(&[0.0], &[1.0]), 1.0);
    }

    #[test]
    fn intersection_symmetric() {
        let a = [0.2f32, 0.3, 0.5];
        let b = [0.5f32, 0.1, 0.4];
        assert!(
            (HistogramIntersection.eval(&a, &b) - HistogramIntersection.eval(&b, &a)).abs() < 1e-12
        );
    }
}
