//! Binary serialization of core types.
//!
//! Used by the metadata layer to persist feature vectors and sketches.
//! All integers are little-endian; formats are length-checked and reject
//! trailing bytes.

use crate::error::{CoreError, Result};
use crate::object::DataObject;
use crate::sketch::{BitVec, SketchedObject};
use crate::vector::FeatureVector;

fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
    if bytes.len() < n {
        return Err(CoreError::Extraction(format!(
            "truncated object bytes: wanted {n}, have {}",
            bytes.len()
        )));
    }
    let (head, tail) = bytes.split_at(n);
    *bytes = tail;
    Ok(head)
}

fn get_u32(bytes: &mut &[u8]) -> Result<u32> {
    let b = take(bytes, 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn get_f32(bytes: &mut &[u8]) -> Result<f32> {
    let b = take(bytes, 4)?;
    Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

/// Serializes a [`DataObject`]: `dim, k`, then per segment `weight` and
/// `dim` components.
pub fn encode_object(obj: &DataObject) -> Vec<u8> {
    let dim = obj.dim();
    let k = obj.num_segments();
    let mut out = Vec::with_capacity(8 + k * (4 + dim * 4));
    out.extend_from_slice(&(dim as u32).to_le_bytes());
    out.extend_from_slice(&(k as u32).to_le_bytes());
    for seg in obj.segments() {
        out.extend_from_slice(&seg.weight.to_le_bytes());
        for &c in seg.vector.components() {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }
    out
}

/// Deserializes a [`DataObject`] from [`encode_object`] bytes.
pub fn decode_object(mut bytes: &[u8]) -> Result<DataObject> {
    let dim = get_u32(&mut bytes)? as usize;
    let k = get_u32(&mut bytes)? as usize;
    if dim == 0 || k == 0 {
        return Err(CoreError::EmptyObject);
    }
    if k > 1 << 24 || dim > 1 << 24 {
        return Err(CoreError::Extraction("implausible object header".into()));
    }
    let mut parts = Vec::with_capacity(k);
    for _ in 0..k {
        let weight = get_f32(&mut bytes)?;
        let mut components = Vec::with_capacity(dim);
        for _ in 0..dim {
            components.push(get_f32(&mut bytes)?);
        }
        parts.push((FeatureVector::new(components)?, weight));
    }
    if !bytes.is_empty() {
        return Err(CoreError::Extraction("trailing object bytes".into()));
    }
    DataObject::new(parts)
}

/// Serializes a [`SketchedObject`]: `k`, then per segment `weight` and the
/// sketch bytes (length-prefixed).
pub fn encode_sketched(so: &SketchedObject) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(so.num_segments() as u32).to_le_bytes());
    for (w, s) in so.weights.iter().zip(so.sketches.iter()) {
        out.extend_from_slice(&w.to_le_bytes());
        let bytes = s.to_bytes();
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&bytes);
    }
    out
}

/// Deserializes a [`SketchedObject`] from [`encode_sketched`] bytes.
pub fn decode_sketched(mut bytes: &[u8]) -> Result<SketchedObject> {
    let k = get_u32(&mut bytes)? as usize;
    if k == 0 {
        return Err(CoreError::EmptyObject);
    }
    if k > 1 << 24 {
        return Err(CoreError::Extraction("implausible sketch header".into()));
    }
    let mut weights = Vec::with_capacity(k);
    let mut sketches = Vec::with_capacity(k);
    for _ in 0..k {
        weights.push(get_f32(&mut bytes)?);
        let len = get_u32(&mut bytes)? as usize;
        let raw = take(&mut bytes, len)?;
        sketches.push(BitVec::from_bytes(raw)?);
    }
    if !bytes.is_empty() {
        return Err(CoreError::Extraction("trailing sketch bytes".into()));
    }
    Ok(SketchedObject { weights, sketches })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj() -> DataObject {
        DataObject::new(vec![
            (FeatureVector::new(vec![0.25, -1.5, 3.0]).unwrap(), 1.0),
            (FeatureVector::new(vec![9.0, 0.0, -0.125]).unwrap(), 3.0),
        ])
        .unwrap()
    }

    #[test]
    fn object_roundtrip() {
        let o = obj();
        let bytes = encode_object(&o);
        let back = decode_object(&bytes).unwrap();
        assert_eq!(o, back);
    }

    #[test]
    fn object_rejects_garbage() {
        assert!(decode_object(&[]).is_err());
        let bytes = encode_object(&obj());
        assert!(decode_object(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_object(&extra).is_err());
        // Implausible header.
        let mut bad = Vec::new();
        bad.extend_from_slice(&u32::MAX.to_le_bytes());
        bad.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_object(&bad).is_err());
    }

    #[test]
    fn sketched_roundtrip() {
        let so = SketchedObject {
            weights: vec![0.25, 0.75],
            sketches: vec![
                BitVec::from_bits(&[true, false, true]),
                BitVec::from_bits(&[false; 96]),
            ],
        };
        let bytes = encode_sketched(&so);
        let back = decode_sketched(&bytes).unwrap();
        assert_eq!(so, back);
    }

    #[test]
    fn sketched_rejects_garbage() {
        assert!(decode_sketched(&[]).is_err());
        let so = SketchedObject {
            weights: vec![1.0],
            sketches: vec![BitVec::from_bits(&[true; 64])],
        };
        let bytes = encode_sketched(&so);
        assert!(decode_sketched(&bytes[..bytes.len() - 2]).is_err());
        let mut extra = bytes.clone();
        extra.push(7);
        assert!(decode_sketched(&extra).is_err());
    }
}
