//! Parallel execution layer for the query path.
//!
//! The paper positions Ferret as a *toolkit*: the same filtering and
//! ranking units must serve interactive single queries and bulk
//! evaluation runs. This module provides the shared threading machinery
//! both use — a [`Parallelism`] knob resolved to a concrete thread
//! count, contiguous shard partitioning for scan-style work (the
//! filtering unit), and a work-stealing chunked map for irregular
//! per-item work (EMD ranking, sketch construction), built on
//! [`std::thread::scope`] so borrowed data crosses into workers without
//! `Arc` plumbing.
//!
//! # Determinism contract
//!
//! Every parallel entry point in this crate produces results
//! *bit-identical* to its serial counterpart, for any thread count:
//!
//! - sharded filtering merges per-shard k-NN heaps whose eviction order
//!   is a total order on `(hamming, object id)`, so the kept set is
//!   independent of scan order;
//! - chunked maps reassemble outputs by item index before any
//!   order-sensitive step (sorting, truncation) runs;
//! - when several items fail, the error reported is the one at the
//!   lowest item index, matching what a serial left-to-right loop
//!   surfaces.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::error::Result;

/// How much parallelism the query path may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Single-threaded execution on the calling thread.
    Serial,
    /// Exactly this many worker threads (values below 1 behave as 1).
    Threads(usize),
    /// One worker per available hardware thread.
    #[default]
    Auto,
}

impl Parallelism {
    /// Resolves to a concrete thread count (always at least 1).
    pub fn resolve(&self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => (*n).max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// Thread count for a workload of `items` independent pieces: never
    /// more threads than items, never fewer than 1.
    pub fn threads_for(&self, items: usize) -> usize {
        self.resolve().min(items).max(1)
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Serial => f.write_str("serial"),
            Parallelism::Threads(n) => write!(f, "threads({n})"),
            Parallelism::Auto => f.write_str("auto"),
        }
    }
}

impl std::str::FromStr for Parallelism {
    type Err = crate::error::CoreError;

    /// Parses `serial`, `auto`, a bare thread count `N`, or the
    /// [`Display`](std::fmt::Display) form `threads(N)`, so every value
    /// round-trips through its own string representation.
    fn from_str(s: &str) -> Result<Self> {
        match s {
            "serial" => Ok(Parallelism::Serial),
            "auto" => Ok(Parallelism::Auto),
            other => {
                let digits = other
                    .strip_prefix("threads(")
                    .and_then(|rest| rest.strip_suffix(')'))
                    .unwrap_or(other);
                match digits.parse::<usize>() {
                    Ok(n) if n >= 1 => Ok(Parallelism::Threads(n)),
                    _ => Err(crate::error::CoreError::InvalidQuery(format!(
                        "unknown parallelism {other:?} (expected serial, auto, N, or threads(N))"
                    ))),
                }
            }
        }
    }
}

/// Splits `0..len` into at most `shards` contiguous, near-equal ranges.
///
/// The first `len % shards` ranges get one extra element; empty ranges
/// are never produced.
pub fn chunk_ranges(len: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.clamp(1, len.max(1));
    if len == 0 {
        return Vec::new();
    }
    let base = len / shards;
    let extra = len % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Runs `work` once per shard of `0..len` on scoped worker threads and
/// returns the shard results **in shard order**.
///
/// `work` receives `(shard_index, range)`. With one shard the work runs
/// on the calling thread. Worker panics propagate to the caller.
pub fn map_shards<T, F>(threads: usize, len: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(len, threads);
    if ranges.len() <= 1 {
        return ranges
            .into_iter()
            .enumerate()
            .map(|(i, r)| work(i, r))
            .collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let work = &work;
                scope.spawn(move || work(i, r))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    })
}

/// Items per claim of the work-stealing queue in [`try_map_chunked`].
///
/// Small enough that an expensive straggler (one hard EMD instance)
/// cannot leave other workers idle for long, large enough that the
/// atomic claim is amortized over real work.
pub const DEFAULT_CHUNK: usize = 8;

/// Applies a fallible `work(index, &item)` to every item of `items` on
/// `threads` scoped workers, returning outputs in item order.
///
/// Workers claim fixed-size index chunks from a shared atomic counter
/// (a work-stealing queue degenerated to a ticket counter), so uneven
/// per-item cost — the norm for EMD, whose solver time depends on the
/// segment counts of both objects — balances automatically. If any item
/// fails, the error at the **lowest item index** is returned, matching
/// the serial left-to-right loop. Worker panics propagate to the caller.
pub fn try_map_chunked<T, U, F>(
    threads: usize,
    chunk_size: usize,
    items: &[T],
    work: F,
) -> Result<Vec<U>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> Result<U> + Sync,
{
    let chunk_size = chunk_size.max(1);
    if threads <= 1 || items.len() <= chunk_size {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| work(i, item))
            .collect();
    }
    let num_chunks = items.len().div_ceil(chunk_size);
    let next_chunk = AtomicUsize::new(0);
    let worker = |_w: usize| {
        let mut produced: Vec<(usize, U)> = Vec::new();
        let mut failure: Option<(usize, crate::error::CoreError)> = None;
        'claim: loop {
            // ordering: Relaxed; fetch_add is the sole synchronization point and only uniqueness of the claimed index matters
            let c = next_chunk.fetch_add(1, Ordering::Relaxed);
            if c >= num_chunks {
                break;
            }
            let start = c * chunk_size;
            let end = (start + chunk_size).min(items.len());
            for (i, item) in items.iter().enumerate().take(end).skip(start) {
                match work(i, item) {
                    Ok(u) => produced.push((i, u)),
                    Err(e) => {
                        failure = Some((i, e));
                        break 'claim;
                    }
                }
            }
        }
        (produced, failure)
    };
    let per_worker = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(num_chunks))
            .map(|w| {
                let worker = &worker;
                scope.spawn(move || worker(w))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect::<Vec<_>>()
    });

    // Chunks are claimed in increasing index order, and each worker stops
    // at its first failure, so the worker owning the chunk of the
    // globally-lowest failing index reports exactly that failure.
    let mut first_failure: Option<(usize, crate::error::CoreError)> = None;
    let mut slots: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    for (produced, failure) in per_worker {
        if let Some((i, e)) = failure {
            if first_failure.as_ref().is_none_or(|(fi, _)| i < *fi) {
                first_failure = Some((i, e));
            }
        }
        for (i, u) in produced {
            slots[i] = Some(u);
        }
    }
    if let Some((_, e)) = first_failure {
        return Err(e);
    }
    Ok(slots
        .into_iter()
        .map(|s| s.expect("no failure implies every index produced"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoreError;

    #[test]
    fn parallelism_resolves() {
        assert_eq!(Parallelism::Serial.resolve(), 1);
        assert_eq!(Parallelism::Threads(4).resolve(), 4);
        assert_eq!(Parallelism::Threads(0).resolve(), 1);
        assert!(Parallelism::Auto.resolve() >= 1);
        assert_eq!(Parallelism::Threads(8).threads_for(3), 3);
        assert_eq!(Parallelism::Threads(2).threads_for(0), 1);
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }

    #[test]
    fn parallelism_displays() {
        assert_eq!(Parallelism::Serial.to_string(), "serial");
        assert_eq!(Parallelism::Threads(3).to_string(), "threads(3)");
        assert_eq!(Parallelism::Auto.to_string(), "auto");
    }

    #[test]
    fn parallelism_parse_roundtrip() {
        for p in [
            Parallelism::Serial,
            Parallelism::Auto,
            Parallelism::Threads(1),
            Parallelism::Threads(7),
        ] {
            assert_eq!(p.to_string().parse::<Parallelism>().unwrap(), p);
        }
        assert_eq!("4".parse::<Parallelism>().unwrap(), Parallelism::Threads(4));
        for bad in ["", "0", "threads(0)", "threads(", "fast", "-1"] {
            assert!(
                matches!(bad.parse::<Parallelism>(), Err(CoreError::InvalidQuery(_))),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 2, 7, 64, 100] {
            for shards in [1usize, 2, 3, 7, 200] {
                let ranges = chunk_ranges(len, shards);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, len, "len {len} shards {shards}");
                assert!(ranges.iter().all(|r| !r.is_empty()));
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
                // Near-equal: sizes differ by at most one.
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(|r| r.len()).min(),
                    ranges.iter().map(|r| r.len()).max(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn map_shards_returns_in_shard_order() {
        for threads in [1usize, 2, 3, 8] {
            let out = map_shards(threads, 10, |shard, range| (shard, range));
            for (i, (shard, _)) in out.iter().enumerate() {
                assert_eq!(*shard, i);
            }
            let total: usize = out.iter().map(|(_, r)| r.len()).sum();
            assert_eq!(total, 10);
        }
    }

    #[test]
    fn try_map_chunked_preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1usize, 2, 5] {
            let out = try_map_chunked(threads, 3, &items, |i, &x| {
                assert_eq!(i, x);
                Ok(x * 2)
            })
            .unwrap();
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn try_map_chunked_reports_lowest_index_error() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1usize, 2, 7] {
            let err = try_map_chunked(threads, 4, &items, |_, &x| {
                if x == 17 || x == 41 {
                    Err(CoreError::UnknownObject(x as u64))
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
            assert!(
                matches!(err, CoreError::UnknownObject(17)),
                "threads {threads}: {err:?}"
            );
        }
    }

    #[test]
    fn try_map_chunked_handles_empty() {
        let out: Vec<usize> = try_map_chunked(4, 8, &[] as &[usize], |_, &x| Ok(x)).unwrap();
        assert!(out.is_empty());
    }
}
