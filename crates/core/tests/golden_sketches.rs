//! Golden-sketch regression fixtures: byte-exact sketches for a pinned
//! parameter set, seed, and corpus, checked into the repository.
//!
//! Sketch bytes are persisted (disk store, sketch files) and compared
//! across processes, so the construction must never drift — a change in
//! RNG stream order, threshold comparison, fold order, or bit packing
//! would silently corrupt every existing database. Both strategies must
//! reproduce the fixture exactly.
//!
//! To regenerate after an *intentional* format change:
//! `GOLDEN_REGEN=1 cargo test -p ferret-core --test golden_sketches`
//! and commit the updated fixture together with a migration story for
//! existing stores.

// Dev-tool output and test fixtures are written directly; the Vfs seam
// covers production durability, not harness artifacts.
#![allow(clippy::disallowed_methods)]

use std::fmt::Write as _;
use std::path::PathBuf;

use ferret_core::sketch::{SketchBuilder, SketchParams, SketchStrategy};

const SEED: u64 = 0x00FE_44E7;
const CORPUS_SIZE: usize = 24;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_sketches.txt")
}

fn pinned_params() -> SketchParams {
    SketchParams::with_options(
        128,
        2,
        vec![-1.0, 0.0, 0.0, -5.0, 0.0, 2.0, 0.0, 0.0],
        vec![1.0, 1.0, 10.0, 5.0, 0.25, 2.0, 1.0, 1.0],
        Some(vec![1.0, 2.0, 0.5, 1.0, 4.0, 1.0, 0.0, 1.5]),
    )
    .unwrap()
}

/// SplitMix64, pinned here independently of any library so the corpus
/// bytes can never drift with a dependency.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The pinned corpus: deterministic values spanning below, inside, and
/// above each dimension's range (clipping is part of the contract).
fn pinned_corpus(params: &SketchParams) -> Vec<Vec<f32>> {
    let d = params.dim();
    let mut state = SEED;
    (0..CORPUS_SIZE)
        .map(|_| {
            (0..d)
                .map(|i| {
                    state = mix64(state);
                    let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
                    let lo = f64::from(params.mins[i]);
                    let range = f64::from(params.maxs[i] - params.mins[i]);
                    // 150% of the range, centred: 1/6 below min, 1/6 above max.
                    (lo - 0.25 * range + unit * 1.5 * range.max(0.5)) as f32
                })
                .collect()
        })
        .collect()
}

fn render_sketches(builder: &SketchBuilder, corpus: &[Vec<f32>]) -> String {
    let mut out = String::new();
    for v in corpus {
        let sketch = builder.sketch_components(v);
        for byte in sketch.to_bytes() {
            write!(out, "{byte:02x}").unwrap();
        }
        out.push('\n');
    }
    out
}

#[test]
fn golden_sketches_are_stable() {
    let params = pinned_params();
    let corpus = pinned_corpus(&params);
    let classic = SketchBuilder::with_strategy(params.clone(), SEED, SketchStrategy::Classic);
    let rendered = render_sketches(&classic, &corpus);

    let path = fixture_path();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("regenerated {}", path.display());
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with GOLDEN_REGEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(golden.lines().count(), CORPUS_SIZE, "fixture line count");
    for (i, (got, want)) in rendered.lines().zip(golden.lines()).enumerate() {
        assert_eq!(
            got, want,
            "sketch {i} drifted from the golden fixture — this breaks every \
             persisted store; see the module docs before regenerating"
        );
    }

    // The one-pass strategy must land on the same bytes.
    let one_pass = SketchBuilder::with_strategy(params, SEED, SketchStrategy::OnePass);
    assert_eq!(
        render_sketches(&one_pass, &corpus),
        rendered,
        "one-pass sketches differ from classic on the golden corpus"
    );
}

#[test]
fn golden_corpus_exercises_clipping() {
    // Guard the fixture's coverage: the corpus must contain values below
    // min and above max for at least one dimension, or the golden test
    // stops covering the saturation paths.
    let params = pinned_params();
    let corpus = pinned_corpus(&params);
    let mut below = false;
    let mut above = false;
    for v in &corpus {
        for (i, &x) in v.iter().enumerate() {
            below |= x < params.mins[i];
            above |= x > params.maxs[i];
        }
    }
    assert!(below && above, "corpus no longer spans outside the range");
}
