//! **atomic-ordering-comment** — every atomic memory-ordering choice
//! carries a one-line `// ordering:` justification.
//!
//! Orderings are easy to cargo-cult (SeqCst "to be safe") and easy to
//! silently weaken in refactors. Requiring a comment on the same or the
//! preceding line turns each choice into a reviewed decision. Ratcheted
//! (in warn mode) via the baseline; the repo itself is annotated down to
//! zero.

use super::{find_all, is_cli_path, lib_files, Violation};
use crate::repo::Repo;

const RULE: &str = "atomic-ordering-comment";

const VARIANTS: &[&str] = &[
    "Ordering::SeqCst",
    "Ordering::AcqRel",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::Relaxed",
];

/// Runs the rule over the repo.
pub fn check(repo: &Repo) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in lib_files(repo) {
        if is_cli_path(&f.path) {
            continue;
        }
        let mut commented_lines = std::collections::BTreeSet::new();
        for c in &f.comments {
            if c.text.contains("ordering:") {
                commented_lines.insert(f.line_of(c.offset));
            }
        }
        for variant in VARIANTS {
            for pos in find_all(&f.scrubbed, variant) {
                if f.in_test(pos) {
                    continue;
                }
                let line = f.line_of(pos);
                if commented_lines.contains(&line)
                    || (line > 1 && commented_lines.contains(&(line - 1)))
                {
                    continue;
                }
                out.push(Violation {
                    path: f.path.clone(),
                    line,
                    rule: RULE,
                    msg: format!(
                        "`{variant}` without an `// ordering:` justification on this or the \
                         previous line"
                    ),
                });
            }
        }
    }
    out
}
