//! **vfs-bypass** — raw filesystem access outside the `ferret-store::vfs`
//! seam.
//!
//! PR 3's durability guarantees (crash-point enumeration, fsyncgate
//! semantics) hold only for I/O routed through the `Vfs` trait. Any
//! direct `std::fs` / `File::open` / `OpenOptions` call in library code
//! silently escapes the fault harness, so it is denied outside `vfs.rs`
//! itself, tests/benches, CLI binaries, and the linter.

use super::{find_all, is_cli_path, lib_files, Violation};
use crate::repo::Repo;

const RULE: &str = "vfs-bypass";

const PATTERNS: &[&str] = &[
    "std::fs::",
    "File::open(",
    "File::create(",
    "OpenOptions::new",
];

/// Files allowed to touch the real filesystem directly.
const ALLOWED_PREFIXES: &[&str] = &[
    // The seam itself: StdVfs is the one sanctioned passthrough.
    "crates/store/src/vfs.rs",
    // The linter reads sources; it never writes data-plane files.
    "crates/lint/",
];

fn boundary_ok(scrubbed: &str, pos: usize, pattern: &str) -> bool {
    if pos == 0 {
        return true;
    }
    let prev = scrubbed.as_bytes()[pos - 1];
    if prev.is_ascii_alphanumeric() || prev == b'_' {
        // Identifier tail, e.g. `MyFile::open` or `nonstd::fs::…`.
        return false;
    }
    if prev == b':' && pattern.as_bytes()[0].is_ascii_uppercase() {
        // `File::open` reached through a path qualifier: only the real
        // `fs::File` counts (`VfsFile::open` must not).
        return scrubbed[..pos].ends_with("fs::");
    }
    true
}

/// Runs the rule over the repo.
pub fn check(repo: &Repo) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in lib_files(repo) {
        if is_cli_path(&f.path) || ALLOWED_PREFIXES.iter().any(|p| f.path.starts_with(p)) {
            continue;
        }
        for pattern in PATTERNS {
            for pos in find_all(&f.scrubbed, pattern) {
                if f.in_test(pos) || !boundary_ok(&f.scrubbed, pos, pattern) {
                    continue;
                }
                out.push(Violation {
                    path: f.path.clone(),
                    line: f.line_of(pos),
                    rule: RULE,
                    msg: format!(
                        "raw filesystem access `{pattern}` bypasses the ferret-store Vfs \
                         fault-injection seam; route it through a Vfs (or justify with a pragma)"
                    ),
                });
            }
        }
    }
    out
}
