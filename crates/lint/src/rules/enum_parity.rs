//! **strategy-enum-parity** — every `Display` string of the user-facing
//! strategy enums must round-trip through `FromStr` and appear in the
//! CLI help text and README.
//!
//! PR 5/6 each caught `Display`/`FromStr` drift by hand (a strategy that
//! printed a name its parser rejected, or a mode undocumented in the
//! CLI). This rule extracts the string literals of each enum's `Display`
//! impl and cross-checks them against the `FromStr` impl in the same
//! file and against the user-facing docs.

use super::{find_all, Violation};
use crate::repo::Repo;
use crate::source::SourceFile;

const RULE: &str = "strategy-enum-parity";

/// `(enum name, defining file)` pairs under contract.
pub const ENUMS: &[(&str, &str)] = &[
    ("FilterStrategy", "crates/core/src/filter.rs"),
    ("SketchStrategy", "crates/core/src/sketch/onepass.rs"),
    ("Parallelism", "crates/core/src/parallel.rs"),
    ("FusionMode", "crates/core/src/engine.rs"),
    ("IndexLayout", "crates/core/src/segment/mod.rs"),
];

/// Files whose raw text constitutes "the CLI help" (usage strings and the
/// serve protocol's HELP response live here).
pub const CLI_HELP_FILES: &[&str] = &["src/bin/ferret.rs", "crates/query/src/protocol.rs"];

const DISPLAY_TRAITS: &[&str] = &["std::fmt::Display", "fmt::Display", "Display"];
const FROMSTR_TRAITS: &[&str] = &["std::str::FromStr", "str::FromStr", "FromStr"];

fn impl_block(f: &SourceFile, traits: &[&str], ty: &str) -> Option<(usize, usize)> {
    for t in traits {
        let pattern = format!("impl {t} for {ty}");
        for pos in find_all(&f.scrubbed, &pattern) {
            // Require a word boundary so `FilterStrategyExt` doesn't match.
            let after = f.scrubbed.as_bytes().get(pos + pattern.len());
            if after.is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_') {
                continue;
            }
            let open = f.scrubbed[pos..].find('{').map(|d| pos + d)?;
            let end = crate::source::matching_brace(f.scrubbed.as_bytes(), open);
            return Some((open, end));
        }
    }
    None
}

fn literals_in(f: &SourceFile, range: (usize, usize)) -> Vec<(String, usize)> {
    f.strings
        .iter()
        .filter(|s| s.offset >= range.0 && s.offset < range.1)
        .map(|s| (s.text.clone(), s.offset))
        .collect()
}

/// Runs the rule over the repo.
pub fn check(repo: &Repo) -> Vec<Violation> {
    let mut out = Vec::new();
    let readme = repo.doc("README.md").unwrap_or("");
    let cli_help: String = CLI_HELP_FILES
        .iter()
        .filter_map(|p| repo.file(p).map(|f| f.text.clone()))
        .collect::<Vec<_>>()
        .join("\n");
    for &(name, path) in ENUMS {
        let Some(f) = repo.file(path) else {
            out.push(Violation {
                path: path.to_string(),
                line: 1,
                rule: RULE,
                msg: format!("expected {name} to be defined in this file"),
            });
            continue;
        };
        let Some(display) = impl_block(f, DISPLAY_TRAITS, name) else {
            out.push(Violation {
                path: path.to_string(),
                line: 1,
                rule: RULE,
                msg: format!("no `impl Display for {name}` found"),
            });
            continue;
        };
        let Some(fromstr) = impl_block(f, FROMSTR_TRAITS, name) else {
            out.push(Violation {
                path: path.to_string(),
                line: 1,
                rule: RULE,
                msg: format!("no `impl FromStr for {name}`: Display strings cannot round-trip"),
            });
            continue;
        };
        let fromstr_lits = literals_in(f, fromstr);
        for (lit, offset) in literals_in(f, display) {
            // Parameterized variants like `threads({n})` contribute their
            // literal prefix; pure placeholder/format strings are skipped.
            let norm = lit.split('{').next().unwrap_or("");
            if norm.trim().is_empty() {
                continue;
            }
            let line = f.line_of(offset);
            let parses = fromstr_lits
                .iter()
                .any(|(l, _)| l == norm || (norm.starts_with(l.as_str()) && l.len() >= 3));
            if !parses {
                out.push(Violation {
                    path: path.to_string(),
                    line,
                    rule: RULE,
                    msg: format!(
                        "{name} Display string \"{norm}\" has no matching literal in its \
                         FromStr impl (round-trip would fail)"
                    ),
                });
            }
            let token: String = norm
                .chars()
                .filter(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                .collect();
            if token.is_empty() {
                continue;
            }
            if !cli_help.contains(&token) {
                out.push(Violation {
                    path: path.to_string(),
                    line,
                    rule: RULE,
                    msg: format!(
                        "{name} value \"{token}\" does not appear in the CLI help \
                         ({})",
                        CLI_HELP_FILES.join(", ")
                    ),
                });
            }
            if !readme.contains(&token) {
                out.push(Violation {
                    path: path.to_string(),
                    line,
                    rule: RULE,
                    msg: format!("{name} value \"{token}\" does not appear in README.md"),
                });
            }
        }
    }
    out
}
