//! **no-unwrap-in-lib** — `unwrap()` / `expect()` / `panic!` in non-test
//! library code.
//!
//! Ratcheted: the existing sites are tolerated via `lint-baseline.json`
//! and may only decrease. New library code must propagate errors.

use super::{find_all, is_cli_path, lib_files, Violation};
use crate::repo::Repo;

const RULE: &str = "no-unwrap-in-lib";

const PATTERNS: &[&str] = &[".unwrap()", ".expect(", "panic!("];

fn boundary_ok(scrubbed: &str, pos: usize, pattern: &str) -> bool {
    if !pattern.starts_with('.') && pos > 0 {
        let prev = scrubbed.as_bytes()[pos - 1];
        // `debug_panic!` or similar identifiers are not `panic!`.
        return !(prev.is_ascii_alphanumeric() || prev == b'_');
    }
    true
}

/// Runs the rule over the repo.
pub fn check(repo: &Repo) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in lib_files(repo) {
        if is_cli_path(&f.path) {
            continue;
        }
        for pattern in PATTERNS {
            for pos in find_all(&f.scrubbed, pattern) {
                if f.in_test(pos) || !boundary_ok(&f.scrubbed, pos, pattern) {
                    continue;
                }
                out.push(Violation {
                    path: f.path.clone(),
                    line: f.line_of(pos),
                    rule: RULE,
                    msg: format!("`{pattern}` in library code; propagate the error instead"),
                });
            }
        }
    }
    out
}
