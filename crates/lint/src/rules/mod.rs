//! The rule registry and shared scope helpers.
//!
//! Rules come in two enforcement classes:
//!
//! - **deny** rules fail `--deny` on any unsuppressed violation;
//! - **ratchet** rules tolerate the per-file counts committed in
//!   `lint-baseline.json` and fail only when a count *grows*.

use crate::repo::Repo;
use crate::source::SourceFile;

pub mod eager_metrics;
pub mod enum_parity;
pub mod guard_across_io;
pub mod no_unwrap;
pub mod ordering_comment;
pub mod vfs_bypass;

/// One rule finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Repo-relative file path.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule identifier (as used in pragmas and the baseline).
    pub rule: &'static str,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// Rules that fail CI outright.
pub const DENY_RULES: &[&str] = &[
    "vfs-bypass",
    "eager-metrics",
    "guard-across-io",
    "strategy-enum-parity",
    "pragma",
];

/// Rules whose pre-existing debt is ratcheted via the baseline.
pub const RATCHET_RULES: &[&str] = &["no-unwrap-in-lib", "atomic-ordering-comment"];

/// Every rule name a pragma may reference.
pub const ALL_RULES: &[&str] = &[
    "vfs-bypass",
    "eager-metrics",
    "guard-across-io",
    "no-unwrap-in-lib",
    "strategy-enum-parity",
    "atomic-ordering-comment",
];

/// True for paths the scanner treats as library code (rule default scope).
pub(crate) fn is_lib_path(path: &str) -> bool {
    (path.starts_with("crates/") && path.contains("/src/")) || path.starts_with("src/")
}

/// True for CLI/tooling binaries, exempt from library-hygiene rules.
pub(crate) fn is_cli_path(path: &str) -> bool {
    path.contains("/bin/") || path.ends_with("/main.rs") || path.starts_with("crates/bench/")
}

/// Non-test library files (rules still skip `#[cfg(test)]` regions inside).
pub(crate) fn lib_files(repo: &Repo) -> impl Iterator<Item = &SourceFile> {
    repo.files
        .iter()
        .filter(|f| !f.whole_file_test && is_lib_path(&f.path))
}

/// All positions of `needle` in `haystack`.
pub(crate) fn find_all(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        out.push(from + pos);
        from += pos + needle.len();
    }
    out
}

/// Validates every pragma: unknown rule names and missing justifications
/// are violations themselves, so suppressions stay auditable.
fn check_pragmas(repo: &Repo) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in &repo.files {
        for p in &f.pragmas {
            if !p.justified {
                out.push(Violation {
                    path: f.path.clone(),
                    line: p.line,
                    rule: "pragma",
                    msg: "ferret-lint pragma without a ` -- justification` (or unparseable form)"
                        .to_string(),
                });
            }
            for rule in &p.rules {
                if !ALL_RULES.contains(&rule.as_str()) {
                    out.push(Violation {
                        path: f.path.clone(),
                        line: p.line,
                        rule: "pragma",
                        msg: format!("pragma names unknown rule {rule:?}"),
                    });
                }
            }
        }
    }
    out
}

/// Runs every rule, validates pragmas, applies suppressions, and returns
/// the surviving violations sorted by `(path, line, rule)`.
pub fn run_all(repo: &Repo) -> Vec<Violation> {
    let mut violations = Vec::new();
    violations.extend(vfs_bypass::check(repo));
    violations.extend(eager_metrics::check(repo));
    violations.extend(guard_across_io::check(repo));
    violations.extend(no_unwrap::check(repo));
    violations.extend(enum_parity::check(repo));
    violations.extend(ordering_comment::check(repo));
    violations.retain(|v| {
        repo.file(&v.path)
            .is_none_or(|f| !f.is_suppressed(v.rule, v.line))
    });
    violations.extend(check_pragmas(repo));
    violations.sort();
    violations.dedup();
    violations
}
