//! **guard-across-io** — heuristic scope analysis flagging `Mutex` /
//! `RwLock` guards that stay live across I/O calls, or across the
//! acquisition of a second lock whose `(outer -> inner)` pair is not
//! declared in `LOCK_ORDER.txt`.
//!
//! A guard is a `let`-binding whose initializer *ends* in an argument-less
//! `.lock()` / `.read()` / `.write()` (optionally chained through
//! `.unwrap()` / `.expect(…)` / `?`). Its live range runs from the end of
//! that statement to the end of the enclosing block, or to an explicit
//! `drop(<name>)`. Temporary guards (`registry.lock().field = …`) drop at
//! the end of their own statement and are never flagged. The analysis is
//! lexical — calls that acquire locks or perform I/O *inside* callees are
//! out of scope; the pragma escape hatch covers intentional holds (the
//! FaultVfs state lock scripting simulated I/O is the canonical example).

use std::collections::BTreeSet;

use super::{find_all, lib_files, Violation};
use crate::repo::Repo;
use crate::source::SourceFile;

const RULE: &str = "guard-across-io";

const LOCK_CALLS: &[&str] = &[".lock()", ".read()", ".write()"];

/// Method calls (and constructors) treated as I/O.
const IO_MARKERS: &[&str] = &[
    ".sync_all(",
    ".sync_data(",
    ".sync_dir(",
    ".write_all(",
    ".read_to_end(",
    ".read_to_string(",
    ".read_exact(",
    ".read_line(",
    ".set_len(",
    ".flush(",
    ".rename(",
    ".remove_file(",
    ".create_dir_all(",
    ".accept(",
    "TcpStream::connect",
];

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Walks receiver characters backwards from `end` (exclusive) and returns
/// the receiver expression, e.g. `self.shared.state` for
/// `self.shared.state.lock()`.
fn receiver_before(scrubbed: &str, end: usize) -> (usize, String) {
    let bytes = scrubbed.as_bytes();
    let mut start = end;
    while start > 0 {
        let b = bytes[start - 1];
        if is_ident_byte(b) || b == b'.' || b == b':' {
            start -= 1;
        } else {
            break;
        }
    }
    (start, scrubbed[start..end].to_string())
}

/// Strips `&`, `*`, and a leading `self.` so receivers compare cleanly
/// against `LOCK_ORDER.txt` entries.
fn normalize(recv: &str) -> String {
    let r = recv.trim().trim_start_matches(['&', '*']);
    r.strip_prefix("self.").unwrap_or(r).to_string()
}

/// If the lock call ending at `call_end` is chained only through
/// `.unwrap()` / `.expect(…)` / `?` and then terminates its statement,
/// returns the statement's end offset (past the `;`).
fn statement_end_after(scrubbed: &str, call_end: usize) -> Option<usize> {
    let bytes = scrubbed.as_bytes();
    let mut i = call_end;
    loop {
        while i < bytes.len() && (bytes[i] == b' ' || bytes[i] == b'\n') {
            i += 1;
        }
        if scrubbed[i..].starts_with(".unwrap()") {
            i += ".unwrap()".len();
            continue;
        }
        if scrubbed[i..].starts_with(".expect(") {
            let open = i + ".expect(".len() - 1;
            let mut depth = 1usize;
            let mut j = open + 1;
            while j < bytes.len() && depth > 0 {
                match bytes[j] {
                    b'(' => depth += 1,
                    b')' => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            i = j;
            continue;
        }
        if i < bytes.len() && bytes[i] == b'?' {
            i += 1;
            continue;
        }
        break;
    }
    while i < bytes.len() && (bytes[i] == b' ' || bytes[i] == b'\n') {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b';' {
        Some(i + 1)
    } else {
        None
    }
}

/// If the statement containing the receiver starting at `recv_start` is a
/// simple `let <name> = …`, returns the bound name.
fn let_binding_name(scrubbed: &str, recv_start: usize) -> Option<String> {
    let bytes = scrubbed.as_bytes();
    let mut bound = recv_start;
    while bound > 0 && !matches!(bytes[bound - 1], b';' | b'{' | b'}') {
        bound -= 1;
    }
    let seg = scrubbed[bound..recv_start].trim();
    let mut words = seg.split_whitespace();
    if words.next()? != "let" {
        return None;
    }
    let mut name = words.next()?;
    if name == "mut" {
        name = words.next()?;
    }
    let name: String = name
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    // `let _ = …` drops immediately; tuple/struct patterns are skipped.
    if name.is_empty() || name == "_" {
        return None;
    }
    Some(name)
}

/// End of the guard's live range: the close of the enclosing block, or an
/// explicit `drop(<name>)`.
fn live_range_end(scrubbed: &str, from: usize, name: &str) -> usize {
    let bytes = scrubbed.as_bytes();
    let drop_pattern = format!("drop({name})");
    let mut depth = 0i32;
    let mut i = from;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            b'd' if scrubbed[i..].starts_with(&drop_pattern)
                && (i == 0 || !is_ident_byte(bytes[i - 1])) =>
            {
                return i;
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

fn parse_lock_order(doc: Option<&str>) -> BTreeSet<(String, String)> {
    let mut out = BTreeSet::new();
    for line in doc.unwrap_or("").lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if let Some((outer, inner)) = line.split_once("->") {
            out.insert((outer.trim().to_string(), inner.trim().to_string()));
        }
    }
    out
}

struct Acquisition {
    pos: usize,
    call_len: usize,
    recv: String,
}

fn acquisitions(f: &SourceFile) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for call in LOCK_CALLS {
        for pos in find_all(&f.scrubbed, call) {
            if f.in_test(pos) {
                continue;
            }
            let (start, recv) = receiver_before(&f.scrubbed, pos);
            // A bare `.read()` / `.write()` with no receiver identifier is
            // not a lock acquisition.
            if recv.trim_matches(['&', '*', ':', '.']).is_empty() {
                continue;
            }
            out.push(Acquisition {
                pos: start,
                call_len: pos + call.len() - start,
                recv,
            });
        }
    }
    out.sort_by_key(|a| a.pos);
    out
}

/// Runs the rule over the repo.
pub fn check(repo: &Repo) -> Vec<Violation> {
    let order = parse_lock_order(repo.doc("LOCK_ORDER.txt"));
    let mut out = Vec::new();
    for f in lib_files(repo) {
        let acqs = acquisitions(f);
        for a in &acqs {
            let call_end = a.pos + a.call_len;
            let Some(stmt_end) = statement_end_after(&f.scrubbed, call_end) else {
                continue; // temporary guard, dead at end of statement
            };
            let Some(name) = let_binding_name(&f.scrubbed, a.pos) else {
                continue;
            };
            let end = live_range_end(&f.scrubbed, stmt_end, &name);
            let outer = normalize(&a.recv);
            // I/O markers inside the live range.
            let mut flagged_lines = BTreeSet::new();
            for marker in IO_MARKERS {
                for pos in find_all(&f.scrubbed[stmt_end..end], marker) {
                    let line = f.line_of(stmt_end + pos);
                    if flagged_lines.insert(line) {
                        out.push(Violation {
                            path: f.path.clone(),
                            line,
                            rule: RULE,
                            msg: format!(
                                "guard `{name}` ({outer}, taken on line {}) is still live \
                                 across `{marker}…)`; drop it before the I/O",
                                f.line_of(a.pos)
                            ),
                        });
                    }
                }
            }
            // Second lock acquisitions inside the live range.
            for b in &acqs {
                if b.pos <= stmt_end || b.pos >= end {
                    continue;
                }
                let inner = normalize(&b.recv);
                if order.contains(&(outer.clone(), inner.clone())) {
                    continue;
                }
                out.push(Violation {
                    path: f.path.clone(),
                    line: f.line_of(b.pos),
                    rule: RULE,
                    msg: format!(
                        "lock `{inner}` acquired while guard `{name}` ({outer}, line {}) is \
                         held, and `{outer} -> {inner}` is not declared in LOCK_ORDER.txt",
                        f.line_of(a.pos)
                    ),
                });
            }
        }
    }
    out
}
