//! **eager-metrics** — every `ferret_*` series name used at a telemetry
//! call site must be declared in the central series catalog
//! (`crates/core/src/series.rs`, the eager-registration block) and
//! documented in DESIGN.md.
//!
//! PR 4 and PR 7 both shipped lazily-registered series that were
//! invisible on `/metrics` until their code path first ran; this rule
//! makes the exposition surface a reviewed contract by cross-checking
//! string literals across code and docs.

use super::{find_all, lib_files, Violation};
use crate::repo::Repo;

const RULE: &str = "eager-metrics";

/// The catalog file: the single eager-registration block.
pub const CATALOG_PATH: &str = "crates/core/src/series.rs";

const CALLEES: &[&str] = &[
    ".counter(",
    ".gauge(",
    ".histogram(",
    ".inc_counter(",
    ".observe_latency(",
];

/// Runs the rule over the repo.
pub fn check(repo: &Repo) -> Vec<Violation> {
    let mut out = Vec::new();
    let catalog: std::collections::BTreeSet<&str> = match repo.file(CATALOG_PATH) {
        Some(f) => f
            .strings
            .iter()
            .map(|s| s.text.as_str())
            .filter(|s| s.starts_with("ferret_"))
            .collect(),
        None => {
            out.push(Violation {
                path: CATALOG_PATH.to_string(),
                line: 1,
                rule: RULE,
                msg: "telemetry series catalog is missing".to_string(),
            });
            return out;
        }
    };
    let design = repo.doc("DESIGN.md").unwrap_or("");
    for f in lib_files(repo) {
        if f.path == CATALOG_PATH {
            continue;
        }
        for callee in CALLEES {
            for pos in find_all(&f.scrubbed, callee) {
                if f.in_test(pos) {
                    continue;
                }
                // The series name is the first string literal of the call's
                // statement (the registry API takes `name` first). A call
                // passing a variable has no literal before the statement
                // ends and is skipped.
                let stmt_end = f.scrubbed[pos..]
                    .find(';')
                    .map(|d| pos + d)
                    .unwrap_or(f.scrubbed.len());
                let Some(lit) = f
                    .strings
                    .iter()
                    .find(|s| s.offset > pos && s.offset < stmt_end)
                else {
                    continue;
                };
                if !lit.text.starts_with("ferret_") {
                    continue;
                }
                let line = f.line_of(lit.offset);
                if !catalog.contains(lit.text.as_str()) {
                    out.push(Violation {
                        path: f.path.clone(),
                        line,
                        rule: RULE,
                        msg: format!(
                            "series \"{}\" is used at a `{callee}…)` call site but is not \
                             declared in the eager catalog {CATALOG_PATH}",
                            lit.text
                        ),
                    });
                }
                if !design.contains(lit.text.as_str()) {
                    out.push(Violation {
                        path: f.path.clone(),
                        line,
                        rule: RULE,
                        msg: format!("series \"{}\" is not documented in DESIGN.md", lit.text),
                    });
                }
            }
        }
    }
    out
}
