//! Loading the scan set: every `.rs` file under `crates/*/src` and the
//! umbrella `src/`, plus the documentation files some rules cross-check.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::source::SourceFile;

/// Documentation files rules may cross-reference (all optional on disk).
pub const DOC_FILES: &[&str] = &["README.md", "DESIGN.md", "LOCK_ORDER.txt"];

/// The analyzed snapshot of the repository.
#[derive(Debug, Clone)]
pub struct Repo {
    /// Parsed source files, sorted by path.
    pub files: Vec<SourceFile>,
    /// Raw documentation texts keyed by file name.
    pub docs: BTreeMap<String, String>,
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("ferret-lint: read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("ferret-lint: read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

impl Repo {
    /// Loads and lexes the scan set under the workspace root.
    pub fn load(root: &Path) -> Result<Repo, String> {
        let crates_dir = root.join("crates");
        let mut rs_paths = Vec::new();
        let entries = fs::read_dir(&crates_dir)
            .map_err(|e| format!("ferret-lint: read {}: {e}", crates_dir.display()))?;
        for entry in entries {
            let entry =
                entry.map_err(|e| format!("ferret-lint: read {}: {e}", crates_dir.display()))?;
            let src = entry.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut rs_paths)?;
            }
        }
        let top_src = root.join("src");
        if top_src.is_dir() {
            collect_rs(&top_src, &mut rs_paths)?;
        }
        rs_paths.sort();
        let mut files = Vec::with_capacity(rs_paths.len());
        for path in rs_paths {
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("ferret-lint: read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile::parse(&rel, &text));
        }
        let mut docs = BTreeMap::new();
        for name in DOC_FILES {
            if let Ok(text) = fs::read_to_string(root.join(name)) {
                docs.insert(name.to_string(), text);
            }
        }
        Ok(Repo { files, docs })
    }

    /// Builds a repo from in-memory sources — the fixture-test entry point.
    pub fn from_memory(files: &[(&str, &str)], docs: &[(&str, &str)]) -> Repo {
        Repo {
            files: files
                .iter()
                .map(|(path, text)| SourceFile::parse(path, text))
                .collect(),
            docs: docs
                .iter()
                .map(|(name, text)| (name.to_string(), text.to_string()))
                .collect(),
        }
    }

    /// The parsed file at a repo-relative path.
    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }

    /// Raw text of a documentation file.
    pub fn doc(&self, name: &str) -> Option<&str> {
        self.docs.get(name).map(String::as_str)
    }
}
