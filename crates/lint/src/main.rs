//! CLI for `ferret-lint`.
//!
//! ```text
//! cargo run -p ferret-lint --            # report everything, exit 0
//! cargo run -p ferret-lint -- --deny     # CI gate: exit 1 on violations
//! cargo run -p ferret-lint -- --fix-baseline   # regenerate lint-baseline.json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use ferret_lint::baseline::Baseline;
use ferret_lint::repo::Repo;
use ferret_lint::rules::RATCHET_RULES;

const USAGE: &str = "usage: ferret-lint [--root DIR] [--baseline FILE] [--deny] [--fix-baseline]

  --root DIR       workspace root to scan (default: current directory)
  --baseline FILE  ratchet baseline (default: <root>/lint-baseline.json)
  --deny           exit non-zero on violations or ratchet regressions
  --fix-baseline   rewrite the baseline from the current tree
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut deny = false;
    let mut fix_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--baseline needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--deny" => deny = true,
            "--fix-baseline" => fix_baseline = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.json"));

    let repo = match Repo::load(&root) {
        Ok(repo) => repo,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let committed = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("ferret-lint: {e}");
                return ExitCode::from(2);
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::new(),
        Err(e) => {
            eprintln!("ferret-lint: read {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };

    let report = ferret_lint::run(&repo, &committed);

    if fix_baseline {
        // The baseline is a dev-tool artifact regenerated atomically by CI,
        // not durable engine state; the Vfs seam does not apply here.
        #[allow(clippy::disallowed_methods)]
        if let Err(e) = std::fs::write(&baseline_path, report.measured.render()) {
            eprintln!("ferret-lint: write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!("ferret-lint: wrote {}", baseline_path.display());
    }

    for v in &report.deny {
        println!("{v}");
    }
    if !deny {
        // Report mode: list tolerated ratchet sites too, so `ferret-lint`
        // with no flags is the "show me everything" view.
        for v in &report.ratchet {
            println!("{v}");
        }
    }
    for rule in RATCHET_RULES {
        let measured = report.measured.total(rule);
        let allowed = committed.total(rule);
        println!("ferret-lint: {rule}: {measured} tolerated sites (baseline {allowed})");
        if measured < allowed && !fix_baseline {
            println!("ferret-lint: {rule} improved; run with --fix-baseline to ratchet down");
        }
    }
    if !fix_baseline {
        for msg in &report.regressions {
            println!("ferret-lint: regression: {msg}");
        }
    }
    println!(
        "ferret-lint: {} file(s) scanned, {} deny violation(s), {} ratchet regression(s)",
        repo.files.len(),
        report.deny.len(),
        if fix_baseline {
            0
        } else {
            report.regressions.len()
        }
    );

    if deny && (!report.deny.is_empty() || (!fix_baseline && !report.regressions.is_empty())) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
