//! The ratchet baseline: committed per-rule, per-file violation counts
//! for rules whose existing debt is tolerated but must only shrink.
//!
//! The format is a two-level JSON object, `rule -> file -> count`,
//! written with sorted keys so diffs stay minimal. The parser below is a
//! strict hand-rolled reader for exactly this shape (the build
//! environment is offline, so no serde).

use std::collections::BTreeMap;

/// Per-rule, per-file tolerated violation counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<String, BTreeMap<String, u64>>,
}

impl Baseline {
    /// Empty baseline (nothing tolerated).
    pub fn new() -> Baseline {
        Baseline::default()
    }

    /// Records one violation against `rule` in `file`.
    pub fn record(&mut self, rule: &str, file: &str) {
        *self
            .counts
            .entry(rule.to_string())
            .or_default()
            .entry(file.to_string())
            .or_default() += 1;
    }

    /// Tolerated count for `rule` in `file`.
    pub fn get(&self, rule: &str, file: &str) -> u64 {
        self.counts
            .get(rule)
            .and_then(|files| files.get(file))
            .copied()
            .unwrap_or(0)
    }

    /// Total tolerated count for `rule`.
    pub fn total(&self, rule: &str) -> u64 {
        self.counts
            .get(rule)
            .map(|files| files.values().sum())
            .unwrap_or(0)
    }

    /// Messages for every `(rule, file)` whose current count exceeds the
    /// tolerated count. `current` is the freshly measured baseline.
    pub fn regressions(&self, current: &Baseline) -> Vec<String> {
        let mut out = Vec::new();
        for (rule, files) in &current.counts {
            for (file, &n) in files {
                let allowed = self.get(rule, file);
                if n > allowed {
                    out.push(format!(
                        "{file}: {rule} count {n} exceeds baseline {allowed} \
                         (fix the new sites or add a justified pragma)"
                    ));
                }
            }
        }
        out
    }

    /// Renders sorted, pretty-printed JSON.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        let rules: Vec<_> = self.counts.iter().filter(|(_, f)| !f.is_empty()).collect();
        for (ri, (rule, files)) in rules.iter().enumerate() {
            out.push_str(&format!("  {:?}: {{\n", rule));
            for (fi, (file, n)) in files.iter().enumerate() {
                let comma = if fi + 1 < files.len() { "," } else { "" };
                out.push_str(&format!("    {:?}: {n}{comma}\n", file));
            }
            let comma = if ri + 1 < rules.len() { "," } else { "" };
            out.push_str(&format!("  }}{comma}\n"));
        }
        out.push_str("}\n");
        out
    }

    /// Parses the JSON produced by [`Baseline::render`].
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let mut counts = BTreeMap::new();
        p.skip_ws();
        p.expect_byte(b'{')?;
        p.skip_ws();
        if !p.eat(b'}') {
            loop {
                let rule = p.string()?;
                p.skip_ws();
                p.expect_byte(b':')?;
                p.skip_ws();
                p.expect_byte(b'{')?;
                let mut files = BTreeMap::new();
                p.skip_ws();
                if !p.eat(b'}') {
                    loop {
                        let file = p.string()?;
                        p.skip_ws();
                        p.expect_byte(b':')?;
                        p.skip_ws();
                        let n = p.number()?;
                        files.insert(file, n);
                        p.skip_ws();
                        if p.eat(b',') {
                            p.skip_ws();
                            continue;
                        }
                        p.expect_byte(b'}')?;
                        break;
                    }
                }
                counts.insert(rule, files);
                p.skip_ws();
                if p.eat(b',') {
                    p.skip_ws();
                    continue;
                }
                p.expect_byte(b'}')?;
                break;
            }
        }
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(Baseline { counts })
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {} of lint-baseline.json",
                b as char, self.pos
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(&c @ (b'"' | b'\\' | b'/')) => out.push(c as char),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        other => {
                            return Err(format!("unsupported escape {other:?} at {}", self.pos))
                        }
                    }
                    self.pos += 1;
                }
                Some(&c) => {
                    out.push(c as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut b = Baseline::new();
        b.record("no-unwrap-in-lib", "crates/core/src/engine.rs");
        b.record("no-unwrap-in-lib", "crates/core/src/engine.rs");
        b.record("no-unwrap-in-lib", "src/lib.rs");
        b.record("atomic-ordering-comment", "crates/query/src/cache.rs");
        let text = b.render();
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(
            parsed.get("no-unwrap-in-lib", "crates/core/src/engine.rs"),
            2
        );
        assert_eq!(parsed.total("no-unwrap-in-lib"), 3);
    }

    #[test]
    fn empty_roundtrip() {
        let b = Baseline::new();
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn regressions_flag_growth_only() {
        let mut committed = Baseline::new();
        committed.record("no-unwrap-in-lib", "a.rs");
        let mut current = Baseline::new();
        current.record("no-unwrap-in-lib", "a.rs");
        current.record("no-unwrap-in-lib", "a.rs");
        current.record("no-unwrap-in-lib", "b.rs");
        let msgs = committed.regressions(&current);
        assert_eq!(msgs.len(), 2);
        assert!(committed.regressions(&committed).is_empty());
        // Shrinking is never a regression.
        assert!(current.regressions(&committed).is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("{").is_err());
        assert!(Baseline::parse("{}x").is_err());
        assert!(Baseline::parse("{\"r\": 3}").is_err());
    }
}
