//! A minimal Rust lexer: classifies every byte of a source file as code,
//! comment, or string-literal content.
//!
//! The linter's rules are textual, so the one thing that must be exactly
//! right is *what text counts*: a `std::fs::File` inside a doc comment, a
//! `"panic!("` inside a test-fixture string, or a `//` inside a string
//! must never reach a rule. The lexer produces a *scrubbed* copy of the
//! source — same byte length, with comments and string literals replaced
//! by spaces (newlines preserved, so offsets and line numbers stay valid)
//! — plus the extracted string literals and comments with their offsets.
//!
//! Handled token forms: `//` line comments (incl. doc comments), nested
//! `/* */` block comments, `"…"` strings with escapes, byte strings,
//! raw strings `r"…"` / `r#"…"#` (any hash depth, with `b` prefix),
//! char and byte-char literals (escaped and plain), and lifetimes
//! (which are *not* char literals).

/// A string literal or comment extracted from the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Literal content (without delimiters) for strings; full text
    /// (including `//` or `/*`) for comments.
    pub text: String,
    /// Byte offset of the token's first byte in the original source.
    pub offset: usize,
}

/// Lexer output: scrubbed source plus extracted tokens.
#[derive(Debug, Clone)]
pub struct Lexed {
    /// The source with comments and string literals blanked to spaces.
    /// Identical length to the input; newlines are preserved.
    pub scrubbed: String,
    /// String literals (contents only), in source order.
    pub strings: Vec<Token>,
    /// Comments (full text), in source order.
    pub comments: Vec<Token>,
}

fn blank(scrub: &mut [u8], start: usize, end: usize) {
    for byte in scrub.iter_mut().take(end).skip(start) {
        if *byte != b'\n' {
            *byte = b' ';
        }
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// True when the byte before `i` could end an identifier, meaning an
/// `r` / `b` at `i` is an identifier tail, not a literal prefix.
fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && is_ident_byte(bytes[i - 1])
}

/// Length in bytes of the UTF-8 character starting at `bytes[i]`.
fn char_len(bytes: &[u8], i: usize) -> usize {
    match bytes.get(i) {
        Some(&b) if b < 0x80 => 1,
        Some(&b) if b < 0xE0 => 2,
        Some(&b) if b < 0xF0 => 3,
        Some(_) => 4,
        None => 1,
    }
}

/// Classifies `src`, returning the scrubbed text and extracted tokens.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let len = bytes.len();
    let mut scrub = bytes.to_vec();
    let mut strings = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;

    while i < len {
        let c = bytes[i];
        // Line comment (also doc comments /// and //!).
        if c == b'/' && i + 1 < len && bytes[i + 1] == b'/' {
            let start = i;
            while i < len && bytes[i] != b'\n' {
                i += 1;
            }
            comments.push(Token {
                text: src[start..i].to_string(),
                offset: start,
            });
            blank(&mut scrub, start, i);
            continue;
        }
        // Block comment, nested per Rust rules.
        if c == b'/' && i + 1 < len && bytes[i + 1] == b'*' {
            let start = i;
            let mut depth = 1usize;
            i += 2;
            while i < len && depth > 0 {
                if bytes[i] == b'/' && i + 1 < len && bytes[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < len && bytes[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            comments.push(Token {
                text: src[start..i].to_string(),
                offset: start,
            });
            blank(&mut scrub, start, i);
            continue;
        }
        // Raw string: r"…", r#"…"#, br#"…"# — but not raw identifiers
        // (r#ident) or identifiers ending in r/b.
        if (c == b'r' || c == b'b') && !prev_is_ident(bytes, i) {
            let mut j = i + 1;
            if c == b'b' {
                if j < len && bytes[j] == b'r' {
                    j += 1;
                } else {
                    // b"…" / b'…': skip the prefix byte; the quote branch
                    // below handles the literal itself next iteration.
                    i += 1;
                    continue;
                }
            }
            let hash_start = j;
            while j < len && bytes[j] == b'#' {
                j += 1;
            }
            let hashes = j - hash_start;
            if j < len && bytes[j] == b'"' {
                let content_start = j + 1;
                let mut k = content_start;
                let content_end = loop {
                    if k >= len {
                        break len;
                    }
                    if bytes[k] == b'"'
                        && bytes[k + 1..].len() >= hashes
                        && bytes[k + 1..k + 1 + hashes].iter().all(|&h| h == b'#')
                    {
                        break k;
                    }
                    k += 1;
                };
                let end = (content_end + 1 + hashes).min(len);
                strings.push(Token {
                    text: src[content_start..content_end].to_string(),
                    offset: i,
                });
                blank(&mut scrub, i, end);
                i = end;
                continue;
            }
            // `r` / `br` not followed by a raw string (e.g. r#ident or a
            // plain identifier): plain code.
            i += 1;
            continue;
        }
        // Ordinary (or byte) string.
        if c == b'"' {
            let start = i;
            i += 1;
            while i < len {
                if bytes[i] == b'\\' {
                    i = (i + 2).min(len);
                } else if bytes[i] == b'"' {
                    i += 1;
                    break;
                } else {
                    i += 1;
                }
            }
            let content_end = if i > start + 1 { i - 1 } else { start + 1 };
            strings.push(Token {
                text: src[start + 1..content_end].to_string(),
                offset: start,
            });
            blank(&mut scrub, start, i);
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if i + 1 < len && bytes[i + 1] == b'\\' {
                // Escaped char literal: consume the escaped char, then
                // scan to the closing quote (covers \n, \', \u{…}).
                let start = i;
                i += 2;
                i = (i + 1).min(len);
                while i < len && bytes[i] != b'\'' {
                    i += 1;
                }
                i = (i + 1).min(len);
                blank(&mut scrub, start, i);
                continue;
            }
            let cl = char_len(bytes, i + 1);
            if i + 1 + cl < len && bytes[i + 1] != b'\'' && bytes[i + 1 + cl] == b'\'' {
                // Plain char literal 'x' (possibly multi-byte).
                let start = i;
                i = i + 2 + cl;
                blank(&mut scrub, start, i);
                continue;
            }
            // Lifetime: the quote and the following identifier are code.
            i += 1;
            continue;
        }
        i += 1;
    }

    // The scrubber only writes ASCII spaces over existing bytes, and only
    // whole tokens whose delimiters are ASCII, so the result is valid
    // UTF-8 unless the input was truncated mid-literal; fall back to a
    // lossy conversion for robustness on pathological input.
    let scrubbed = match String::from_utf8(scrub) {
        Ok(s) => s,
        Err(e) => String::from_utf8_lossy(e.as_bytes()).into_owned(),
    };
    Lexed {
        scrubbed,
        strings,
        comments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_block_comments_are_blanked() {
        let src = "let a = 1; // std::fs::File\n/* panic!( */ let b = 2;";
        let lexed = lex(src);
        assert!(!lexed.scrubbed.contains("std::fs"));
        assert!(!lexed.scrubbed.contains("panic!"));
        assert!(lexed.scrubbed.contains("let a = 1;"));
        assert!(lexed.scrubbed.contains("let b = 2;"));
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn nested_block_comment() {
        let src = "a /* x /* y */ z */ b";
        let lexed = lex(src);
        assert_eq!(lexed.scrubbed.trim(), "a                   b".trim());
        assert!(lexed.scrubbed.starts_with("a "));
        assert!(lexed.scrubbed.ends_with(" b"));
    }

    #[test]
    fn strings_extracted_and_blanked() {
        let src = r#"call("ferret_x", "b\"c"); other"#;
        let lexed = lex(src);
        assert_eq!(lexed.strings[0].text, "ferret_x");
        assert_eq!(lexed.strings[1].text, "b\\\"c");
        assert!(!lexed.scrubbed.contains("ferret_x"));
        assert!(lexed.scrubbed.contains("call("));
        assert!(lexed.scrubbed.contains("other"));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src = "x(r\"a\", r#\"quote \" inside\"#, br##\"deep \"# done\"##); y";
        let lexed = lex(src);
        assert_eq!(lexed.strings[0].text, "a");
        assert_eq!(lexed.strings[1].text, "quote \" inside");
        assert_eq!(lexed.strings[2].text, "deep \"# done");
        assert!(lexed.scrubbed.contains("; y"));
    }

    #[test]
    fn comment_markers_inside_strings_stay_strings() {
        let src = "let s = \"// not a comment /* nor this\"; tail";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 0);
        assert!(lexed.scrubbed.contains("tail"));
    }

    #[test]
    fn string_quotes_inside_comments_stay_comments() {
        let src = "// \"not a string\n let x = 1;";
        let lexed = lex(src);
        assert_eq!(lexed.strings.len(), 0);
        assert!(lexed.scrubbed.contains("let x = 1;"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "let a: &'static str = x; let q = '\"'; let e = '\\''; let n = '\\n';";
        let lexed = lex(src);
        // The '"' char literal must not open a string.
        assert_eq!(lexed.strings.len(), 0);
        assert!(lexed.scrubbed.contains("&'static str"));
    }

    #[test]
    fn raw_identifiers_are_code() {
        let src = "let r#fn = 1; let rate = r#fn;";
        let lexed = lex(src);
        assert_eq!(lexed.strings.len(), 0);
        assert!(lexed.scrubbed.contains("r#fn"));
    }

    #[test]
    fn scrubbed_preserves_length_and_newlines() {
        let src = "a\n\"two\nline\"\n// c\nb";
        let lexed = lex(src);
        assert_eq!(lexed.scrubbed.len(), src.len());
        assert_eq!(
            lexed.scrubbed.matches('\n').count(),
            src.matches('\n').count()
        );
    }
}
