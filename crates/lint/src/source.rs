//! Per-file analysis context: lexed text, `#[cfg(test)]` / `mod tests`
//! regions, line mapping, and `ferret-lint: allow(...)` pragmas.

use crate::lexer::{self, Token};

/// A suppression pragma parsed from a comment.
///
/// Grammar (inside any comment):
///
/// ```text
/// ferret-lint: allow(rule-a, rule-b) -- justification
/// ferret-lint: allow-file(rule-a) -- justification
/// ```
///
/// A line pragma suppresses matching violations on its own line and the
/// line directly below it (so it can trail the offending line or sit
/// above it). An `allow-file` pragma suppresses the rule for the whole
/// file. The ` -- justification` part is mandatory; a pragma without it
/// is itself reported as a violation.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Rule names listed in the pragma.
    pub rules: Vec<String>,
    /// 1-based line the pragma comment starts on.
    pub line: u32,
    /// True for `allow-file(...)`.
    pub file_level: bool,
    /// True when a non-empty justification follows ` -- `.
    pub justified: bool,
}

/// A fully parsed source file ready for rule checks.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// Original text.
    pub text: String,
    /// Comment/string-blanked text, same length as `text`.
    pub scrubbed: String,
    /// Extracted string literals in source order.
    pub strings: Vec<Token>,
    /// Extracted comments in source order.
    pub comments: Vec<Token>,
    /// Parsed suppression pragmas.
    pub pragmas: Vec<Pragma>,
    /// True when the whole file is test/bench/example code by path.
    pub whole_file_test: bool,
    line_starts: Vec<usize>,
    test_ranges: Vec<(usize, usize)>,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offset just past the matching `}` for the `{` at `open` (or EOF).
pub(crate) fn matching_brace(scrubbed: &[u8], open: usize) -> usize {
    let mut depth = 1usize;
    let mut i = open + 1;
    while i < scrubbed.len() {
        match scrubbed[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    scrubbed.len()
}

/// The item region introduced at `from`: up to the matching brace of the
/// first `{`, or up to a `;` when one comes first (e.g. `mod tests;`).
fn item_region(scrubbed: &[u8], from: usize) -> usize {
    let mut i = from;
    while i < scrubbed.len() {
        match scrubbed[i] {
            b'{' => return matching_brace(scrubbed, i),
            b';' => return i + 1,
            _ => i += 1,
        }
    }
    scrubbed.len()
}

fn find_all(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        out.push(from + pos);
        from += pos + needle.len();
    }
    out
}

fn test_ranges(scrubbed: &str) -> Vec<(usize, usize)> {
    let bytes = scrubbed.as_bytes();
    let mut ranges = Vec::new();
    // #[cfg(test)] and #[cfg(test, ...)].
    for start in find_all(scrubbed, "#[cfg(test") {
        match bytes.get(start + 10) {
            Some(b')') | Some(b',') => {
                ranges.push((start, item_region(bytes, start + 10)));
            }
            _ => {}
        }
    }
    for start in find_all(scrubbed, "#[test]") {
        ranges.push((start, item_region(bytes, start + 7)));
    }
    // `mod tests` (any module literally named `tests`).
    for start in find_all(scrubbed, "mod tests") {
        let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let after = bytes.get(start + 9).copied().unwrap_or(b'\n');
        if before_ok && (after == b' ' || after == b'{' || after == b';' || after == b'\n') {
            ranges.push((start, item_region(bytes, start + 9)));
        }
    }
    ranges
}

fn parse_pragma(comment: &str, line: u32) -> Option<Pragma> {
    // Doc comments never carry pragmas — they *describe* the syntax (this
    // crate's own docs would otherwise trip the parser).
    if comment.starts_with("///")
        || comment.starts_with("//!")
        || comment.starts_with("/**")
        || comment.starts_with("/*!")
    {
        return None;
    }
    let rest = comment.split("ferret-lint:").nth(1)?;
    let rest = rest.trim_start();
    let (file_level, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
        (true, r)
    } else if let Some(r) = rest.strip_prefix("allow(") {
        (false, r)
    } else {
        // The marker prefix followed by an unparseable form: report it as
        // an unjustified pragma so typos fail loudly instead of silently
        // not suppressing.
        return Some(Pragma {
            rules: Vec::new(),
            line,
            file_level: false,
            justified: false,
        });
    };
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let tail = &rest[close + 1..];
    let justified = tail
        .split_once("--")
        .map(|(_, j)| !j.trim().is_empty())
        .unwrap_or(false);
    Some(Pragma {
        rules,
        line,
        file_level,
        justified,
    })
}

impl SourceFile {
    /// Lexes and indexes `text` under the given repo-relative path.
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let lexer::Lexed {
            scrubbed,
            strings,
            comments,
        } = lexer::lex(text);
        let mut line_starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let ranges = test_ranges(&scrubbed);
        let whole_file_test = path.contains("/tests/")
            || path.contains("/benches/")
            || path.contains("/examples/")
            || path.ends_with("_test.rs");
        let mut file = SourceFile {
            path: path.to_string(),
            text: text.to_string(),
            scrubbed,
            strings,
            comments,
            pragmas: Vec::new(),
            whole_file_test,
            line_starts,
            test_ranges: ranges,
        };
        file.pragmas = file
            .comments
            .iter()
            .filter_map(|c| parse_pragma(&c.text, file.line_of(c.offset)))
            .collect();
        file
    }

    /// 1-based line number containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> u32 {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i as u32 + 1,
            Err(i) => i as u32,
        }
    }

    /// True when byte `offset` lies inside test-only code.
    pub fn in_test(&self, offset: usize) -> bool {
        self.whole_file_test
            || self
                .test_ranges
                .iter()
                .any(|&(s, e)| offset >= s && offset < e)
    }

    /// True when a justified pragma suppresses `rule` at `line`.
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        self.pragmas.iter().any(|p| {
            p.justified
                && p.rules.iter().any(|r| r == rule)
                && (p.file_level || p.line == line || p.line + 1 == line)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_region_covers_module_body() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { inner(); }\n}\nfn tail() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let inner = src.find("inner").unwrap();
        let tail = src.find("tail").unwrap();
        assert!(f.in_test(inner));
        assert!(!f.in_test(tail));
        assert!(!f.in_test(0));
    }

    #[test]
    fn external_test_module_declaration() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!f.in_test(src.find("live").unwrap()));
    }

    #[test]
    fn test_attribute_covers_one_fn() {
        let src = "#[test]\nfn check() { a(); }\nfn live() { b(); }\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.in_test(src.find("a()").unwrap()));
        assert!(!f.in_test(src.find("b()").unwrap()));
    }

    #[test]
    fn tests_dir_is_whole_file_test() {
        let f = SourceFile::parse("crates/x/tests/it.rs", "fn anything() {}");
        assert!(f.in_test(3));
    }

    #[test]
    fn pragma_suppresses_same_and_next_line() {
        let src =
            "// ferret-lint: allow(vfs-bypass) -- CLI tool\nstd::fs::read(p);\nstd::fs::read(q);\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.is_suppressed("vfs-bypass", 1));
        assert!(f.is_suppressed("vfs-bypass", 2));
        assert!(!f.is_suppressed("vfs-bypass", 3));
        assert!(!f.is_suppressed("no-unwrap-in-lib", 2));
    }

    #[test]
    fn unjustified_pragma_does_not_suppress() {
        let src = "// ferret-lint: allow(vfs-bypass)\nstd::fs::read(p);\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!f.is_suppressed("vfs-bypass", 2));
        assert!(!f.pragmas[0].justified);
    }

    #[test]
    fn file_pragma_suppresses_everywhere() {
        let src =
            "// ferret-lint: allow-file(vfs-bypass) -- read-only scan\n\n\nstd::fs::read(p);\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.is_suppressed("vfs-bypass", 4));
    }
}
