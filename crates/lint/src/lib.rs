//! `ferret-lint` — a dependency-free static-analysis pass enforcing the
//! repository's cross-cutting contracts in CI.
//!
//! The toolkit's correctness story rests on conventions no compiler
//! checks: all durable I/O goes through the `ferret-store::vfs` fault
//! seam, every telemetry series is declared eagerly and documented,
//! lock guards don't straddle I/O, strategy enums round-trip their
//! `Display` strings, and atomic orderings are justified. This crate
//! scans the workspace sources with a small lexer (comments, strings,
//! raw strings, and test regions are excluded correctly), runs the rule
//! set, honors `// ferret-lint: allow(<rule>) -- <why>` pragmas, and
//! ratchets pre-existing debt through `lint-baseline.json`.
//!
//! See DESIGN.md §5.5 for the rule catalog and workflow.

pub mod baseline;
pub mod lexer;
pub mod repo;
pub mod rules;
pub mod source;

use std::path::Path;

use baseline::Baseline;
use rules::{Violation, RATCHET_RULES};

/// Outcome of a full lint run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Violations of deny-class rules (including pragma problems).
    pub deny: Vec<Violation>,
    /// Violations of ratchet-class rules.
    pub ratchet: Vec<Violation>,
    /// The measured ratchet counts for this tree.
    pub measured: Baseline,
    /// Ratchet regressions versus the committed baseline.
    pub regressions: Vec<String>,
}

impl Report {
    /// True when `--deny` should fail the build.
    pub fn failed(&self) -> bool {
        !self.deny.is_empty() || !self.regressions.is_empty()
    }
}

/// Runs every rule against `repo` and compares ratchet counts against
/// `committed`.
pub fn run(repo: &repo::Repo, committed: &Baseline) -> Report {
    let violations = rules::run_all(repo);
    let (ratchet, deny): (Vec<_>, Vec<_>) = violations
        .into_iter()
        .partition(|v| RATCHET_RULES.contains(&v.rule));
    let mut measured = Baseline::new();
    for v in &ratchet {
        measured.record(v.rule, &v.path);
    }
    let regressions = committed.regressions(&measured);
    Report {
        deny,
        ratchet,
        measured,
        regressions,
    }
}

/// Convenience: load the repo at `root` and lint it against the baseline
/// file at `baseline_path` (missing file = empty baseline).
pub fn run_at(root: &Path, baseline_path: &Path) -> Result<Report, String> {
    let repo = repo::Repo::load(root)?;
    let committed = match std::fs::read_to_string(baseline_path) {
        Ok(text) => Baseline::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::new(),
        Err(e) => {
            return Err(format!(
                "ferret-lint: read {}: {e}",
                baseline_path.display()
            ))
        }
    };
    Ok(run(&repo, &committed))
}
