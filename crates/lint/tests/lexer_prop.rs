//! Property tests for the ferret-lint lexer: random interleavings of
//! well-formed code, comment, and string fragments must classify every
//! fragment correctly, preserve byte length and newline positions, and
//! report faithful token offsets.

use ferret_lint::lexer::lex;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    Code,
    Str,
    Comment,
}

/// Builds the `i`-th fragment of the given selector. Every fragment
/// carries a unique marker so the test can check exactly where it ended
/// up. Fragments are joined with spaces, so adjacency effects (like an
/// identifier tail swallowing an `r"` prefix) cannot occur — those are
/// covered by the lexer's unit tests.
fn fragment(sel: u8, i: usize) -> (String, Kind, String) {
    match sel {
        0 => {
            let m = format!("k{i}_code");
            (format!("let {m} = {i};"), Kind::Code, m)
        }
        1 => {
            // Sensitive patterns in real code must survive scrubbing.
            let m = format!("k{i}_fs");
            (format!("{m}::fs::metadata({i})?;"), Kind::Code, m)
        }
        2 => {
            let m = format!("s{i}_plain");
            (format!("(\"{m}\")"), Kind::Str, m)
        }
        3 => {
            let m = format!("s{i}_esc");
            (format!("(\"{m}\\\"q\")"), Kind::Str, m)
        }
        4 => {
            let m = format!("s{i}_raw");
            (format!("(r#\"{m} has a \" quote\"#)"), Kind::Str, m)
        }
        5 => {
            let m = format!("c{i}_line");
            (format!("// {m} std::fs::write\n"), Kind::Comment, m)
        }
        6 => {
            let m = format!("c{i}_block");
            (format!("/* {m} panic!( */"), Kind::Comment, m)
        }
        _ => {
            // Char literals and lifetimes are scrubbed or kept as code but
            // never produce string tokens; the marker checks the tail.
            let m = format!("k{i}_tail");
            (
                format!("let q = '\\''; let r: &'a u8 = {m};"),
                Kind::Code,
                m,
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_interleavings_classify_exactly(sels in prop::collection::vec(0u8..8, 0..40usize)) {
        let frags: Vec<(String, Kind, String)> = sels
            .iter()
            .enumerate()
            .map(|(i, &sel)| fragment(sel, i))
            .collect();
        let src: String = frags
            .iter()
            .map(|(text, _, _)| text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        let lexed = lex(&src);

        // Scrubbing is shape-preserving: same length, newlines untouched.
        prop_assert_eq!(lexed.scrubbed.len(), src.len());
        let src_newlines: Vec<usize> =
            src.bytes().enumerate().filter(|(_, b)| *b == b'\n').map(|(p, _)| p).collect();
        let scrub_newlines: Vec<usize> =
            lexed.scrubbed.bytes().enumerate().filter(|(_, b)| *b == b'\n').map(|(p, _)| p).collect();
        prop_assert_eq!(src_newlines, scrub_newlines);

        // Exactly one token per string/comment fragment.
        let want_strings = frags.iter().filter(|(_, k, _)| *k == Kind::Str).count();
        let want_comments = frags.iter().filter(|(_, k, _)| *k == Kind::Comment).count();
        prop_assert_eq!(lexed.strings.len(), want_strings);
        prop_assert_eq!(lexed.comments.len(), want_comments);

        for (_, kind, marker) in &frags {
            match kind {
                // Code markers survive scrubbing verbatim.
                Kind::Code => prop_assert!(
                    lexed.scrubbed.contains(marker),
                    "code marker {} scrubbed away", marker
                ),
                // String markers move into string tokens and leave the
                // scrubbed text.
                Kind::Str => {
                    prop_assert!(!lexed.scrubbed.contains(marker));
                    prop_assert!(lexed.strings.iter().any(|t| t.text.contains(marker)));
                    prop_assert!(!lexed.comments.iter().any(|t| t.text.contains(marker)));
                }
                Kind::Comment => {
                    prop_assert!(!lexed.scrubbed.contains(marker));
                    prop_assert!(lexed.comments.iter().any(|t| t.text.contains(marker)));
                    prop_assert!(!lexed.strings.iter().any(|t| t.text.contains(marker)));
                }
            }
        }

        // Token offsets point at real delimiters in the original source.
        for t in &lexed.strings {
            let at = &src[t.offset..];
            prop_assert!(
                at.starts_with('"') || at.starts_with('r') || at.starts_with('b'),
                "string offset {} points at {:?}", t.offset, &at[..at.len().min(4)]
            );
        }
        for t in &lexed.comments {
            prop_assert!(src[t.offset..].starts_with("//") || src[t.offset..].starts_with("/*"));
            // Comment tokens carry their full source text.
            prop_assert!(src[t.offset..].starts_with(t.text.as_str()));
        }

        // No sensitive pattern from a non-code fragment leaks into the
        // scrubbed text: every std::fs:: / panic!( left over must come
        // from a code fragment (which our generator never emits).
        prop_assert!(!lexed.scrubbed.contains("std::fs::write"));
        prop_assert!(!lexed.scrubbed.contains("panic!("));
    }

    #[test]
    fn lexing_is_deterministic(sels in prop::collection::vec(0u8..8, 0..20usize)) {
        let src: String = sels
            .iter()
            .enumerate()
            .map(|(i, &sel)| fragment(sel, i).0)
            .collect::<Vec<_>>()
            .join("\n");
        let a = lex(&src);
        let b = lex(&src);
        prop_assert_eq!(a.scrubbed, b.scrubbed);
        prop_assert_eq!(a.strings, b.strings);
        prop_assert_eq!(a.comments, b.comments);
    }
}
