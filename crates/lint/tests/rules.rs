//! Golden fire / no-fire fixtures for every ferret-lint rule.
//!
//! Each rule gets at least one in-memory repo that must trigger it and a
//! minimally different repo that must not, so rule regressions (either
//! direction) fail loudly.

use ferret_lint::baseline::Baseline;
use ferret_lint::repo::Repo;
use ferret_lint::rules::{self, Violation};

fn fires(repo: &Repo, rule: &str) -> Vec<Violation> {
    rules::run_all(repo)
        .into_iter()
        .filter(|v| v.rule == rule)
        .collect()
}

// ------------------------------------------------------------ vfs-bypass --

#[test]
fn vfs_bypass_fires_on_raw_fs() {
    let repo = Repo::from_memory(
        &[(
            "crates/foo/src/lib.rs",
            "pub fn save(p: &std::path::Path) {\n    std::fs::write(p, b\"x\").unwrap();\n}\n",
        )],
        &[],
    );
    let v = fires(&repo, "vfs-bypass");
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].line, 2);
}

#[test]
fn vfs_bypass_quiet_in_vfs_tests_and_comments() {
    let repo = Repo::from_memory(
        &[
            // The seam itself is exempt.
            (
                "crates/store/src/vfs.rs",
                "pub fn passthrough() { std::fs::read(\"x\").ok(); }\n",
            ),
            // Test regions are exempt.
            (
                "crates/foo/src/lib.rs",
                "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { std::fs::write(\"x\", b\"y\").unwrap(); }\n}\n",
            ),
            // Mentions in comments and strings never count.
            (
                "crates/bar/src/lib.rs",
                "// std::fs::write is banned here\npub const DOC: &str = \"std::fs::write\";\n",
            ),
            // VfsFile::open is not fs::File::open.
            (
                "crates/baz/src/lib.rs",
                "pub fn f(v: &dyn Vfs) { let _ = VfsFile::open(v); }\n",
            ),
        ],
        &[],
    );
    assert!(fires(&repo, "vfs-bypass").is_empty());
}

#[test]
fn vfs_bypass_suppressed_by_justified_pragma_only() {
    let justified = Repo::from_memory(
        &[(
            "crates/foo/src/lib.rs",
            "pub fn stat(p: &std::path::Path) {\n    \
             // ferret-lint: allow(vfs-bypass) -- read-only stat, nothing durable\n    \
             let _ = std::fs::metadata(p);\n}\n",
        )],
        &[],
    );
    assert!(fires(&justified, "vfs-bypass").is_empty());
    assert!(fires(&justified, "pragma").is_empty());

    let unjustified = Repo::from_memory(
        &[(
            "crates/foo/src/lib.rs",
            "pub fn stat(p: &std::path::Path) {\n    \
             // ferret-lint: allow(vfs-bypass)\n    \
             let _ = std::fs::metadata(p);\n}\n",
        )],
        &[],
    );
    // Without a justification the suppression is void and the pragma
    // itself is flagged.
    assert_eq!(fires(&unjustified, "vfs-bypass").len(), 1);
    assert_eq!(fires(&unjustified, "pragma").len(), 1);
}

#[test]
fn unknown_rule_pragma_is_flagged() {
    let repo = Repo::from_memory(
        &[(
            "crates/foo/src/lib.rs",
            "// ferret-lint: allow(no-such-rule) -- because reasons\npub fn f() {}\n",
        )],
        &[],
    );
    let v = fires(&repo, "pragma");
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].msg.contains("no-such-rule"));
}

// --------------------------------------------------------- eager-metrics --

const CATALOG: &str = "pub const SERIES: &[&str] = &[\"ferret_good_total\"];\n";

#[test]
fn eager_metrics_fires_on_uncataloged_series() {
    let repo = Repo::from_memory(
        &[
            ("crates/core/src/series.rs", CATALOG),
            (
                "crates/foo/src/lib.rs",
                "pub fn f(r: &Registry) {\n    r.counter(\"ferret_rogue_total\", \"help\", &[]).inc();\n}\n",
            ),
        ],
        &[("DESIGN.md", "documents ferret_good_total only")],
    );
    let v = fires(&repo, "eager-metrics");
    // Missing from the catalog AND missing from DESIGN.md.
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v.iter().all(|v| v.line == 2));
}

#[test]
fn eager_metrics_quiet_for_cataloged_documented_series() {
    let repo = Repo::from_memory(
        &[
            ("crates/core/src/series.rs", CATALOG),
            (
                "crates/foo/src/lib.rs",
                "pub fn f(r: &Registry) {\n    r.counter(\"ferret_good_total\", \"help\", &[]).inc();\n}\n",
            ),
            // Non-ferret names and variable names are out of scope.
            (
                "crates/bar/src/lib.rs",
                "pub fn g(r: &Registry, name: &str) {\n    r.counter(name, \"\", &[]).inc();\n    r.gauge(\"other_metric\", \"\", &[]);\n}\n",
            ),
        ],
        &[("DESIGN.md", "| `ferret_good_total` | counter | good |")],
    );
    assert!(fires(&repo, "eager-metrics").is_empty());
}

// -------------------------------------------------------- guard-across-io --

#[test]
fn guard_across_io_fires_on_write_under_lock() {
    let repo = Repo::from_memory(
        &[(
            "crates/foo/src/lib.rs",
            "impl S {\n    pub fn f<W: Write>(&self, w: &mut W) {\n        \
             let st = self.state.lock();\n        \
             w.write_all(b\"x\").ok();\n        \
             let _ = st;\n    }\n}\n",
        )],
        &[],
    );
    let v = fires(&repo, "guard-across-io");
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].line, 4);
    assert!(v[0].msg.contains("`st`"));
}

#[test]
fn guard_across_io_quiet_after_drop_or_temporary() {
    let repo = Repo::from_memory(
        &[(
            "crates/foo/src/lib.rs",
            "impl S {\n    pub fn f<W: Write>(&self, w: &mut W) {\n        \
             let st = self.state.lock();\n        \
             let n = *st;\n        \
             drop(st);\n        \
             w.write_all(&[n]).ok();\n    }\n    \
             pub fn g<W: Write>(&self, w: &mut W) {\n        \
             *self.state.lock() += 1;\n        \
             w.write_all(b\"x\").ok();\n    }\n}\n",
        )],
        &[],
    );
    assert!(fires(&repo, "guard-across-io").is_empty());
}

#[test]
fn guard_across_io_checks_lock_order_declarations() {
    let src = "impl S {\n    pub fn f(&self) {\n        \
               let a = self.state.lock();\n        \
               let b = self.inner.lock();\n        \
               let _ = (a, b);\n    }\n}\n";
    let undeclared = Repo::from_memory(&[("crates/foo/src/lib.rs", src)], &[]);
    let v = fires(&undeclared, "guard-across-io");
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].msg.contains("state -> inner"));

    let declared = Repo::from_memory(
        &[("crates/foo/src/lib.rs", src)],
        &[("LOCK_ORDER.txt", "# pairs\nstate -> inner\n")],
    );
    assert!(fires(&declared, "guard-across-io").is_empty());
}

// ------------------------------------------------------- no-unwrap-in-lib --

#[test]
fn no_unwrap_fires_in_lib_quiet_in_cli_and_tests() {
    let repo = Repo::from_memory(
        &[
            (
                "crates/foo/src/lib.rs",
                "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
            ),
            (
                "crates/foo/src/bin/tool.rs",
                "fn main() { std::env::args().next().unwrap(); panic!(\"boom\"); }\n",
            ),
            (
                "crates/bar/src/lib.rs",
                "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n",
            ),
        ],
        &[],
    );
    let v = fires(&repo, "no-unwrap-in-lib");
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].path, "crates/foo/src/lib.rs");
}

// ------------------------------------------------ atomic-ordering-comment --

#[test]
fn ordering_comment_fires_without_justification() {
    let repo = Repo::from_memory(
        &[(
            "crates/foo/src/lib.rs",
            "pub fn f(x: &AtomicU64) -> u64 {\n    x.load(Ordering::Relaxed)\n}\n",
        )],
        &[],
    );
    let v = fires(&repo, "atomic-ordering-comment");
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].line, 2);
}

#[test]
fn ordering_comment_quiet_with_same_or_previous_line_comment() {
    let repo = Repo::from_memory(
        &[(
            "crates/foo/src/lib.rs",
            "pub fn f(x: &AtomicU64) -> u64 {\n    \
             // ordering: monitoring read, no happens-before needed\n    \
             x.load(Ordering::Relaxed)\n}\n\
             pub fn g(x: &AtomicU64) {\n    \
             x.store(1, Ordering::Release); // ordering: publishes init\n}\n",
        )],
        &[],
    );
    assert!(fires(&repo, "atomic-ordering-comment").is_empty());
}

// ---------------------------------------------------- strategy-enum-parity --

/// A consistent strategy-enum universe: each contracted enum has Display
/// and FromStr over one literal, and every literal appears in the CLI
/// help files and the README.
fn parity_files(fusion_display: &str) -> Vec<(&'static str, String)> {
    fn enum_src(name: &str, display_lit: &str, parse_lit: &str) -> String {
        format!(
            "pub enum {name} {{ V }}\n\
             impl std::fmt::Display for {name} {{\n    \
             fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{\n        \
             f.write_str(\"{display_lit}\")\n    }}\n}}\n\
             impl std::str::FromStr for {name} {{\n    \
             type Err = ();\n    \
             fn from_str(s: &str) -> Result<Self, ()> {{\n        \
             if s == \"{parse_lit}\" {{ Ok({name}::V) }} else {{ Err(()) }}\n    }}\n}}\n"
        )
    }
    vec![
        (
            "crates/core/src/filter.rs",
            enum_src("FilterStrategy", "scan", "scan"),
        ),
        (
            "crates/core/src/sketch/onepass.rs",
            enum_src("SketchStrategy", "twopass", "twopass"),
        ),
        (
            "crates/core/src/parallel.rs",
            enum_src("Parallelism", "serial", "serial"),
        ),
        (
            "crates/core/src/engine.rs",
            enum_src("FusionMode", fusion_display, "rrf"),
        ),
        (
            "crates/core/src/segment/mod.rs",
            enum_src("IndexLayout", "segmented", "segmented"),
        ),
        (
            "src/bin/ferret.rs",
            "const USAGE: &str = \"strategies: scan twopass serial rrf segmented\";\nfn main() {}\n"
                .to_string(),
        ),
        (
            "crates/query/src/protocol.rs",
            "pub const HELP: &str = \"scan twopass serial rrf segmented\";\n".to_string(),
        ),
    ]
}

fn parity_repo(fusion_display: &str) -> Repo {
    let files = parity_files(fusion_display);
    let refs: Vec<(&str, &str)> = files.iter().map(|(p, t)| (*p, t.as_str())).collect();
    Repo::from_memory(
        &refs,
        &[("README.md", "modes: scan twopass serial rrf segmented")],
    )
}

#[test]
fn enum_parity_quiet_when_consistent() {
    assert!(fires(&parity_repo("rrf"), "strategy-enum-parity").is_empty());
}

#[test]
fn enum_parity_fires_on_display_fromstr_drift() {
    // Display says "blend" but FromStr only accepts "rrf", and "blend"
    // appears in neither the CLI help nor the README: three findings.
    let v = fires(&parity_repo("blend"), "strategy-enum-parity");
    assert_eq!(v.len(), 3, "{v:?}");
    assert!(v.iter().all(|v| v.msg.contains("blend")));
    assert!(v.iter().any(|v| v.msg.contains("round-trip")));
    assert!(v.iter().any(|v| v.msg.contains("README")));
}

#[test]
fn enum_parity_fires_when_enum_file_missing() {
    let repo = Repo::from_memory(&[("crates/foo/src/lib.rs", "pub fn f() {}\n")], &[]);
    let v = fires(&repo, "strategy-enum-parity");
    // One finding per contracted enum whose defining file is absent.
    assert_eq!(v.len(), 5, "{v:?}");
}

// ------------------------------------------------------- report partition --

#[test]
fn run_partitions_deny_and_ratchet_and_ratchets() {
    let repo = Repo::from_memory(
        &[(
            "crates/foo/src/lib.rs",
            "pub fn f(p: &std::path::Path, x: Option<u32>) -> u32 {\n    \
             let _ = std::fs::metadata(p);\n    x.unwrap()\n}\n",
        )],
        &[],
    );
    let empty = Baseline::new();
    let report = ferret_lint::run(&repo, &empty);
    assert!(report.deny.iter().any(|v| v.rule == "vfs-bypass"));
    assert!(report.ratchet.iter().any(|v| v.rule == "no-unwrap-in-lib"));
    assert!(report.deny.iter().all(|v| v.rule != "no-unwrap-in-lib"));
    // An empty baseline means the unwrap is a regression…
    assert_eq!(report.regressions.len(), 1);
    assert!(report.failed());
    // …but a baseline recording it tolerates it (deny still fails).
    let report2 = ferret_lint::run(&repo, &report.measured);
    assert!(report2.regressions.is_empty());
    assert!(report2.failed(), "deny violations still fail");
}
