//! The linter's most important fixture is the repository itself: the
//! real tree must pass `--deny` (zero unsuppressed deny violations, zero
//! ratchet regressions against the committed baseline), so `cargo test`
//! catches a dirty tree even before `scripts/ci.sh` runs the CLI.

use std::path::Path;

#[test]
fn repository_passes_ferret_lint_deny() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = ferret_lint::run_at(&root, &root.join("lint-baseline.json"))
        .expect("repository sources must load");
    assert!(
        report.deny.is_empty(),
        "deny violations in tree:\n{}",
        report
            .deny
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.regressions.is_empty(),
        "ratchet regressions in tree:\n{}",
        report.regressions.join("\n")
    );
}

#[test]
fn baseline_totals_are_ratcheted_not_zeroed() {
    // The committed baseline must reflect a real, nonzero unwrap debt
    // (the ratchet's whole point) while atomic orderings are fully
    // annotated.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = ferret_lint::run_at(&root, &root.join("lint-baseline.json"))
        .expect("repository sources must load");
    assert!(report.measured.total("no-unwrap-in-lib") > 0);
    assert_eq!(report.measured.total("atomic-ordering-comment"), 0);
}
