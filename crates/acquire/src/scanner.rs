//! Directory scanning with change detection.
//!
//! "The default data acquisition method is via periodical scan of a
//! designated directory in the file system. Each newly added file in that
//! directory will be imported into the system" (paper §4.3). The scanner
//! keeps a manifest of `(path → mtime, length)` and reports new, changed,
//! and removed files on each pass; the manifest can be persisted in the
//! metadata store so restarts do not re-import everything.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use ferret_store::codec::{Decoder, Encoder};
use ferret_store::{Database, Result as StoreResult, StoreError};

/// The database table the manifest persists to.
pub const MANIFEST_TABLE: &str = "acquire_manifest";

/// A file's identity snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileStamp {
    /// Modification time, seconds since the Unix epoch.
    pub mtime: u64,
    /// File length in bytes.
    pub len: u64,
}

/// The scanner's persistent state: what it has already seen.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    files: BTreeMap<PathBuf, FileStamp>,
}

/// What one scan pass discovered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Files never seen before.
    pub new: Vec<PathBuf>,
    /// Files whose stamp changed since the last scan.
    pub changed: Vec<PathBuf>,
    /// Files present in the manifest but gone from disk.
    pub removed: Vec<PathBuf>,
}

impl ScanReport {
    /// True if nothing changed.
    pub fn is_empty(&self) -> bool {
        self.new.is_empty() && self.changed.is_empty() && self.removed.is_empty()
    }
}

fn stamp_of(path: &Path) -> std::io::Result<FileStamp> {
    // ferret-lint: allow(vfs-bypass) -- read-only stat of scanned source files; no durable state is written here
    let meta = std::fs::metadata(path)?;
    let mtime = meta
        .modified()
        .ok()
        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
        .map_or(0, |d| d.as_secs());
    Ok(FileStamp {
        mtime,
        len: meta.len(),
    })
}

impl Manifest {
    /// Creates an empty manifest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True if no files are tracked.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// The stamp recorded for a path.
    pub fn stamp(&self, path: &Path) -> Option<FileStamp> {
        self.files.get(path).copied()
    }

    /// Scans `dir` (recursively), updating the manifest and reporting the
    /// differences. Unreadable entries are skipped, not fatal.
    pub fn scan(&mut self, dir: &Path) -> std::io::Result<ScanReport> {
        let mut report = ScanReport::default();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![dir.to_path_buf()];
        while let Some(current) = stack.pop() {
            // ferret-lint: allow(vfs-bypass) -- read-only directory walk over user data; the Vfs trait has no read_dir and nothing durable is written
            let entries = match std::fs::read_dir(&current) {
                Ok(e) => e,
                Err(_) => continue, // Tolerate unreadable directories.
            };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                    continue;
                }
                let Ok(stamp) = stamp_of(&path) else {
                    continue; // Tolerate unreadable files.
                };
                seen.insert(path.clone());
                match self.files.get(&path) {
                    None => {
                        self.files.insert(path.clone(), stamp);
                        report.new.push(path);
                    }
                    Some(old) if *old != stamp => {
                        self.files.insert(path.clone(), stamp);
                        report.changed.push(path);
                    }
                    Some(_) => {}
                }
            }
        }
        // Removed files: in the manifest (under dir) but not on disk.
        let gone: Vec<PathBuf> = self
            .files
            .keys()
            .filter(|p| p.starts_with(dir) && !seen.contains(*p))
            .cloned()
            .collect();
        for p in gone {
            self.files.remove(&p);
            report.removed.push(p);
        }
        report.new.sort();
        report.changed.sort();
        report.removed.sort();
        Ok(report)
    }

    /// Serializes the manifest for the metadata store.
    pub fn to_bytes(&self) -> StoreResult<Vec<u8>> {
        let mut enc = Encoder::new();
        enc.put_u64(self.files.len() as u64);
        for (path, stamp) in &self.files {
            let bytes = path.to_string_lossy();
            enc.put_blob(bytes.as_bytes())?;
            enc.put_u64(stamp.mtime);
            enc.put_u64(stamp.len);
        }
        Ok(enc.into_bytes())
    }

    /// Deserializes a manifest produced by [`Manifest::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> StoreResult<Self> {
        let mut dec = Decoder::new(bytes);
        let count = dec.get_u64()? as usize;
        let mut files = BTreeMap::new();
        for _ in 0..count {
            let path = String::from_utf8(dec.get_blob()?)
                .map_err(|_| StoreError::Corrupt("non-utf8 manifest path".into()))?;
            let mtime = dec.get_u64()?;
            let len = dec.get_u64()?;
            files.insert(PathBuf::from(path), FileStamp { mtime, len });
        }
        Ok(Self { files })
    }

    /// Persists the manifest to the metadata store.
    pub fn save(&self, db: &mut Database) -> StoreResult<()> {
        db.put(MANIFEST_TABLE, b"manifest", &self.to_bytes()?)
    }

    /// Loads the manifest from the metadata store (empty if absent).
    pub fn load(db: &Database) -> StoreResult<Self> {
        match db.get(MANIFEST_TABLE, b"manifest") {
            Some(bytes) => Self::from_bytes(bytes),
            None => Ok(Self::default()),
        }
    }
}

#[cfg(test)]
// Tests write fixture files directly; the Vfs seam is for production durability.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ferret-scan-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn detects_new_changed_removed() {
        let dir = tmpdir("basic");
        std::fs::write(dir.join("a.dat"), b"one").unwrap();
        std::fs::write(dir.join("b.dat"), b"two").unwrap();
        let mut manifest = Manifest::new();
        let report = manifest.scan(&dir).unwrap();
        assert_eq!(report.new.len(), 2);
        assert!(report.changed.is_empty() && report.removed.is_empty());
        assert_eq!(manifest.len(), 2);

        // Nothing changed: empty report.
        let report = manifest.scan(&dir).unwrap();
        assert!(report.is_empty());

        // Change one (different length guarantees a stamp change), remove
        // one, add one.
        std::fs::write(dir.join("a.dat"), b"one-changed").unwrap();
        std::fs::remove_file(dir.join("b.dat")).unwrap();
        std::fs::write(dir.join("c.dat"), b"three").unwrap();
        let report = manifest.scan(&dir).unwrap();
        assert_eq!(report.changed, vec![dir.join("a.dat")]);
        assert_eq!(report.removed, vec![dir.join("b.dat")]);
        assert_eq!(report.new, vec![dir.join("c.dat")]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scans_subdirectories() {
        let dir = tmpdir("subdirs");
        std::fs::create_dir_all(dir.join("x/y")).unwrap();
        std::fs::write(dir.join("x/y/deep.dat"), b"deep").unwrap();
        let mut manifest = Manifest::new();
        let report = manifest.scan(&dir).unwrap();
        assert_eq!(report.new, vec![dir.join("x/y/deep.dat")]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_empty_scan() {
        let mut manifest = Manifest::new();
        let report = manifest
            .scan(Path::new("/nonexistent/ferret/scan/dir"))
            .unwrap();
        assert!(report.is_empty());
    }

    #[test]
    fn manifest_persistence() {
        let dir = tmpdir("persist");
        std::fs::write(dir.join("a.dat"), b"one").unwrap();
        let mut manifest = Manifest::new();
        manifest.scan(&dir).unwrap();

        let dbdir = tmpdir("persist-db");
        let mut db = Database::open(&dbdir).unwrap();
        manifest.save(&mut db).unwrap();
        let loaded = Manifest::load(&db).unwrap();
        assert_eq!(manifest, loaded);
        assert!(loaded.stamp(&dir.join("a.dat")).is_some());
        // Fresh database: empty manifest.
        let dbdir2 = tmpdir("persist-db2");
        let db2 = Database::open(&dbdir2).unwrap();
        assert!(Manifest::load(&db2).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dbdir).ok();
        std::fs::remove_dir_all(&dbdir2).ok();
    }
}
