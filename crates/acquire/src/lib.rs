//! # ferret-acquire
//!
//! Data acquisition for the Ferret toolkit (paper §4.3): periodic
//! directory scanning with change detection, a persistent scan manifest,
//! and an import pipeline that feeds new and changed files through the
//! plug-in extractor into the search system (with automatically collected
//! file attributes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod importer;
pub mod scanner;

pub use importer::{file_attributes, ImportReport, ImportSink, Importer};
pub use scanner::{FileStamp, Manifest, ScanReport, MANIFEST_TABLE};
