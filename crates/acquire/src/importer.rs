//! The import pipeline: scanned files → extractor → search system.
//!
//! Each scan pass feeds new and changed files through the plug-in
//! extractor and hands the resulting objects (plus automatically collected
//! file attributes) to a caller-supplied sink — typically
//! `FerretService::insert`. Extraction failures are collected, not fatal:
//! one corrupt file must not stop acquisition.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use ferret_attr::{Attributes, AttrsBuilder};
use ferret_core::error::CoreError;
use ferret_core::object::{DataObject, ObjectId};
use ferret_core::plugin::FileExtractor;
use ferret_store::codec::{Decoder, Encoder};
use ferret_store::{Database, Result as StoreResult, StoreError};

use crate::scanner::{Manifest, MANIFEST_TABLE};

/// The metadata-store key the path → id assignment persists under (in
/// [`MANIFEST_TABLE`], next to the manifest itself).
const IDS_KEY: &[u8] = b"ids";

/// What happens to each imported object.
pub trait ImportSink {
    /// Error type surfaced by the sink.
    type Error: std::fmt::Display;

    /// Adds (or replaces) an object extracted from `path`.
    fn upsert(
        &mut self,
        id: ObjectId,
        object: DataObject,
        attributes: Attributes,
        path: &Path,
    ) -> Result<(), Self::Error>;

    /// Removes an object whose source file disappeared.
    fn remove(&mut self, id: ObjectId, path: &Path) -> Result<(), Self::Error>;

    /// Adds (or replaces) a batch of extracted objects, returning one
    /// result per item in order.
    ///
    /// The default implementation loops over [`ImportSink::upsert`]; sinks
    /// backed by an engine with batch-parallel sketch construction should
    /// override this to sketch the whole batch at once.
    fn upsert_batch(
        &mut self,
        items: Vec<(ObjectId, DataObject, Attributes, PathBuf)>,
    ) -> Vec<Result<(), Self::Error>> {
        items
            .into_iter()
            .map(|(id, object, attrs, path)| self.upsert(id, object, attrs, &path))
            .collect()
    }
}

/// The outcome of one import pass.
#[derive(Debug, Default)]
pub struct ImportReport {
    /// Objects newly imported.
    pub imported: Vec<(ObjectId, PathBuf)>,
    /// Objects re-imported because their file changed.
    pub updated: Vec<(ObjectId, PathBuf)>,
    /// Objects removed because their file disappeared.
    pub removed: Vec<(ObjectId, PathBuf)>,
    /// Files that failed extraction or sinking, with the error text.
    pub failures: Vec<(PathBuf, String)>,
}

impl ImportReport {
    /// True if the pass did nothing.
    pub fn is_empty(&self) -> bool {
        self.imported.is_empty()
            && self.updated.is_empty()
            && self.removed.is_empty()
            && self.failures.is_empty()
    }
}

/// Automatically collected per-file attributes: file name, extension,
/// directory, and size (paper §4.1.2's "generic attributes").
pub fn file_attributes(path: &Path) -> Attributes {
    let mut builder = AttrsBuilder::new();
    if let Some(name) = path.file_name().and_then(|s| s.to_str()) {
        builder = builder.text("filename", name);
    }
    if let Some(ext) = path.extension().and_then(|s| s.to_str()) {
        builder = builder.keyword("ext", ext);
    }
    if let Some(dir) = path.parent().and_then(|p| p.to_str()) {
        builder = builder.text("dir", dir);
    }
    // ferret-lint: allow(vfs-bypass) -- read-only stat of a user source file; the Vfs seam covers durable writes, not ingest-side reads
    if let Ok(meta) = std::fs::metadata(path) {
        builder = builder.int("size", meta.len() as i64);
        if let Ok(mtime) = meta.modified() {
            if let Ok(secs) = mtime.duration_since(std::time::UNIX_EPOCH) {
                builder = builder.int("mtime", secs.as_secs() as i64);
            }
        }
    }
    builder.build()
}

/// A directory importer bound to one extractor.
pub struct Importer<E> {
    directory: PathBuf,
    extractor: E,
    manifest: Manifest,
    /// Stable path → id assignment.
    ids: BTreeMap<PathBuf, ObjectId>,
    next_id: u64,
}

impl<E: FileExtractor> Importer<E> {
    /// Creates an importer watching `directory`.
    pub fn new(directory: &Path, extractor: E) -> Self {
        Self {
            directory: directory.to_path_buf(),
            extractor,
            manifest: Manifest::new(),
            ids: BTreeMap::new(),
            next_id: 0,
        }
    }

    /// Creates an importer with pre-existing state (restart continuation).
    pub fn with_state(
        directory: &Path,
        extractor: E,
        manifest: Manifest,
        ids: BTreeMap<PathBuf, ObjectId>,
    ) -> Self {
        let next_id = ids.values().map(|id| id.0 + 1).max().unwrap_or(0);
        Self {
            directory: directory.to_path_buf(),
            extractor,
            manifest,
            ids,
            next_id,
        }
    }

    /// Restores an importer from state persisted with
    /// [`Importer::save_state`] (empty state if none was saved). The
    /// database is the VFS-routed metadata store, so importer state
    /// enjoys the same crash guarantees as the objects it tracks.
    pub fn load_state(directory: &Path, extractor: E, db: &Database) -> StoreResult<Self> {
        let manifest = Manifest::load(db)?;
        let mut ids = BTreeMap::new();
        if let Some(bytes) = db.get(MANIFEST_TABLE, IDS_KEY) {
            let mut dec = Decoder::new(bytes);
            let count = dec.get_u64()? as usize;
            for _ in 0..count {
                let path = String::from_utf8(dec.get_blob()?)
                    .map_err(|_| StoreError::Corrupt("non-utf8 importer path".into()))?;
                let id = ObjectId(dec.get_u64()?);
                ids.insert(PathBuf::from(path), id);
            }
        }
        Ok(Self::with_state(directory, extractor, manifest, ids))
    }

    /// Persists the manifest and the path → id assignment in one
    /// transaction, so a restart never sees a manifest that is ahead of
    /// (or behind) the id table.
    pub fn save_state(&self, db: &mut Database) -> StoreResult<()> {
        let manifest_bytes = self.manifest.to_bytes()?;
        let mut enc = Encoder::new();
        enc.put_u64(self.ids.len() as u64);
        for (path, id) in &self.ids {
            let bytes = path.to_string_lossy();
            enc.put_blob(bytes.as_bytes())?;
            enc.put_u64(id.0);
        }
        let mut txn = db.begin();
        txn.put(MANIFEST_TABLE, b"manifest", &manifest_bytes);
        txn.put(MANIFEST_TABLE, IDS_KEY, &enc.into_bytes());
        txn.commit()
    }

    /// The current manifest (for persistence).
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The current path → id assignment (for persistence).
    pub fn ids(&self) -> &BTreeMap<PathBuf, ObjectId> {
        &self.ids
    }

    /// The id assigned to a path, if imported.
    pub fn id_of(&self, path: &Path) -> Option<ObjectId> {
        self.ids.get(path).copied()
    }

    fn assign_id(&mut self, path: &Path) -> ObjectId {
        if let Some(&id) = self.ids.get(path) {
            return id;
        }
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        self.ids.insert(path.to_path_buf(), id);
        id
    }

    /// Runs one scan-and-import pass.
    pub fn scan_once<S: ImportSink>(&mut self, sink: &mut S) -> Result<ImportReport, CoreError> {
        let scan = self
            .manifest
            .scan(&self.directory)
            .map_err(|e| CoreError::Extraction(format!("scan failed: {e}")))?;
        let mut report = ImportReport::default();
        for (paths, updated) in [(&scan.new, false), (&scan.changed, true)] {
            // Extract everything first, then hand the surviving objects to
            // the sink in one batch so it can sketch them in parallel.
            let mut batch = Vec::new();
            for path in paths {
                let id = self.assign_id(path);
                match self.extractor.extract_file(path) {
                    Ok(object) => {
                        batch.push((id, object, file_attributes(path), path.clone()));
                    }
                    Err(e) => report.failures.push((path.clone(), e.to_string())),
                }
            }
            if batch.is_empty() {
                continue;
            }
            let keys: Vec<(ObjectId, PathBuf)> = batch
                .iter()
                .map(|(id, _, _, path)| (*id, path.clone()))
                .collect();
            for ((id, path), result) in keys.into_iter().zip(sink.upsert_batch(batch)) {
                match result {
                    Ok(()) => {
                        if updated {
                            report.updated.push((id, path));
                        } else {
                            report.imported.push((id, path));
                        }
                    }
                    Err(e) => report.failures.push((path, e.to_string())),
                }
            }
        }
        for path in &scan.removed {
            if let Some(id) = self.ids.remove(path) {
                match sink.remove(id, path) {
                    Ok(()) => report.removed.push((id, path.clone())),
                    Err(e) => report.failures.push((path.clone(), e.to_string())),
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
// Tests write fixture files directly; the Vfs seam is for production durability.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use ferret_core::error::Result as CoreResult;
    use ferret_core::vector::FeatureVector;

    /// Extractor: file bytes -> one segment per byte (1-d), fails on empty
    /// or files containing 0xFF.
    struct ByteExtractor;

    impl FileExtractor for ByteExtractor {
        fn name(&self) -> &'static str {
            "bytes"
        }

        fn extract_file(&self, path: &Path) -> CoreResult<DataObject> {
            let bytes =
                std::fs::read(path).map_err(|e| CoreError::Extraction(format!("read: {e}")))?;
            if bytes.contains(&0xFF) {
                return Err(CoreError::Extraction("corrupt file".into()));
            }
            DataObject::new(
                bytes
                    .iter()
                    .map(|&b| (FeatureVector::from_components(vec![f32::from(b)]), 1.0))
                    .collect(),
            )
        }
    }

    #[derive(Default)]
    struct MemorySink {
        objects: BTreeMap<u64, (usize, Attributes)>,
    }

    impl ImportSink for MemorySink {
        type Error = CoreError;

        fn upsert(
            &mut self,
            id: ObjectId,
            object: DataObject,
            attributes: Attributes,
            _path: &Path,
        ) -> CoreResult<()> {
            self.objects
                .insert(id.0, (object.num_segments(), attributes));
            Ok(())
        }

        fn remove(&mut self, id: ObjectId, _path: &Path) -> CoreResult<()> {
            self.objects.remove(&id.0);
            Ok(())
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ferret-import-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn import_update_remove_cycle() {
        let dir = tmpdir("cycle");
        std::fs::write(dir.join("a.bin"), [1u8, 2, 3]).unwrap();
        let mut importer = Importer::new(&dir, ByteExtractor);
        let mut sink = MemorySink::default();

        let report = importer.scan_once(&mut sink).unwrap();
        assert_eq!(report.imported.len(), 1);
        assert!(report.failures.is_empty());
        let id = importer.id_of(&dir.join("a.bin")).unwrap();
        assert_eq!(sink.objects[&id.0].0, 3);

        // Idempotent second pass.
        let report = importer.scan_once(&mut sink).unwrap();
        assert!(report.is_empty());

        // Update keeps the id.
        std::fs::write(dir.join("a.bin"), [1u8, 2, 3, 4, 5]).unwrap();
        let report = importer.scan_once(&mut sink).unwrap();
        assert_eq!(report.updated, vec![(id, dir.join("a.bin"))]);
        assert_eq!(sink.objects[&id.0].0, 5);

        // Removal.
        std::fs::remove_file(dir.join("a.bin")).unwrap();
        let report = importer.scan_once(&mut sink).unwrap();
        assert_eq!(report.removed, vec![(id, dir.join("a.bin"))]);
        assert!(sink.objects.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failures_do_not_stop_the_pass() {
        let dir = tmpdir("failures");
        std::fs::write(dir.join("good.bin"), [1u8, 2]).unwrap();
        std::fs::write(dir.join("bad.bin"), [1u8, 0xFF]).unwrap();
        std::fs::write(dir.join("empty.bin"), []).unwrap();
        let mut importer = Importer::new(&dir, ByteExtractor);
        let mut sink = MemorySink::default();
        let report = importer.scan_once(&mut sink).unwrap();
        assert_eq!(report.imported.len(), 1);
        assert_eq!(report.failures.len(), 2);
        assert_eq!(sink.objects.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_attributes_capture_metadata() {
        let dir = tmpdir("attrs");
        let path = dir.join("photo.jpg");
        std::fs::write(&path, [0u8; 10]).unwrap();
        let attrs = file_attributes(&path);
        assert!(matches!(&attrs["filename"], ferret_attr::AttrValue::Text(t) if t == "photo.jpg"));
        assert!(matches!(&attrs["ext"], ferret_attr::AttrValue::Keyword(k) if k == "jpg"));
        assert_eq!(attrs["size"], ferret_attr::AttrValue::Int(10));
        assert!(attrs.contains_key("mtime"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_hands_sink_one_batch_per_pass() {
        #[derive(Default)]
        struct BatchSink {
            inner: MemorySink,
            batch_sizes: Vec<usize>,
        }

        impl ImportSink for BatchSink {
            type Error = CoreError;

            fn upsert(
                &mut self,
                id: ObjectId,
                object: DataObject,
                attributes: Attributes,
                path: &Path,
            ) -> CoreResult<()> {
                self.inner.upsert(id, object, attributes, path)
            }

            fn remove(&mut self, id: ObjectId, path: &Path) -> CoreResult<()> {
                self.inner.remove(id, path)
            }

            fn upsert_batch(
                &mut self,
                items: Vec<(ObjectId, DataObject, Attributes, PathBuf)>,
            ) -> Vec<CoreResult<()>> {
                self.batch_sizes.push(items.len());
                items
                    .into_iter()
                    .map(|(id, object, attrs, path)| self.upsert(id, object, attrs, &path))
                    .collect()
            }
        }

        let dir = tmpdir("batch");
        for name in ["a.bin", "b.bin", "c.bin"] {
            std::fs::write(dir.join(name), [1u8, 2]).unwrap();
        }
        let mut importer = Importer::new(&dir, ByteExtractor);
        let mut sink = BatchSink::default();
        let report = importer.scan_once(&mut sink).unwrap();
        assert_eq!(report.imported.len(), 3);
        // One batch for the new files; no call for the empty changed set.
        assert_eq!(sink.batch_sizes, vec![3]);
        assert_eq!(sink.inner.objects.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn state_round_trips_through_the_metadata_store() {
        let dir = tmpdir("dbstate");
        std::fs::write(dir.join("a.bin"), [1u8]).unwrap();
        std::fs::write(dir.join("b.bin"), [2u8, 3]).unwrap();
        let mut importer = Importer::new(&dir, ByteExtractor);
        let mut sink = MemorySink::default();
        importer.scan_once(&mut sink).unwrap();

        let dbdir = tmpdir("dbstate-db");
        let mut db = Database::open(&dbdir).unwrap();
        importer.save_state(&mut db).unwrap();

        // Restart from the database: nothing re-imported, ids stable, a
        // new file continues the id sequence.
        std::fs::write(dir.join("c.bin"), [4u8]).unwrap();
        let mut importer2 = Importer::load_state(&dir, ByteExtractor, &db).unwrap();
        assert_eq!(importer2.ids(), importer.ids());
        let report = importer2.scan_once(&mut sink).unwrap();
        assert_eq!(report.imported.len(), 1);
        assert!(report.updated.is_empty() && report.removed.is_empty());
        assert_eq!(importer2.id_of(&dir.join("c.bin")), Some(ObjectId(2)));

        // A database with no saved state yields a fresh importer.
        let dbdir2 = tmpdir("dbstate-db2");
        let db2 = Database::open(&dbdir2).unwrap();
        let fresh = Importer::load_state(&dir, ByteExtractor, &db2).unwrap();
        assert!(fresh.ids().is_empty());
        for d in [&dir, &dbdir, &dbdir2] {
            std::fs::remove_dir_all(d).ok();
        }
    }

    #[test]
    fn with_state_continues_ids() {
        let dir = tmpdir("state");
        std::fs::write(dir.join("a.bin"), [1u8]).unwrap();
        let mut importer = Importer::new(&dir, ByteExtractor);
        let mut sink = MemorySink::default();
        importer.scan_once(&mut sink).unwrap();
        let manifest = importer.manifest().clone();
        let ids = importer.ids().clone();

        // Restart: existing file not re-imported, new file gets a new id.
        std::fs::write(dir.join("b.bin"), [2u8]).unwrap();
        let mut importer2 = Importer::with_state(&dir, ByteExtractor, manifest, ids);
        let report = importer2.scan_once(&mut sink).unwrap();
        assert_eq!(report.imported.len(), 1);
        assert_eq!(importer2.id_of(&dir.join("b.bin")), Some(ObjectId(1)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
