//! Persistent attribute store.
//!
//! Combines the in-memory [`AttrIndex`] with a table in the metadata
//! database, mirroring the paper's "separate database table ... to maintain
//! keyword attributes and user-defined annotations" (§4.1.2). Attributes
//! are re-indexed from the table on open, so the index always reflects the
//! recovered state.

use ferret_core::object::ObjectId;
use ferret_store::codec::{Decoder, Encoder};
use ferret_store::{Database, Result as StoreResult, StoreError};

use crate::index::AttrIndex;
use crate::query::Query;
use crate::value::{AttrValue, Attributes};

/// The database table attribute records live in.
pub const ATTR_TABLE: &str = "attributes";

const KIND_TEXT: u8 = 0;
const KIND_KEYWORD: u8 = 1;
const KIND_INT: u8 = 2;
const KIND_FLOAT: u8 = 3;

/// Serializes an attribute set.
pub fn encode_attributes(attrs: &Attributes) -> StoreResult<Vec<u8>> {
    let mut enc = Encoder::new();
    enc.put_u32(attrs.len() as u32);
    for (field, value) in attrs {
        enc.put_name(field)?;
        match value {
            AttrValue::Text(s) => {
                enc.put_u8(KIND_TEXT);
                enc.put_blob(s.as_bytes())?;
            }
            AttrValue::Keyword(s) => {
                enc.put_u8(KIND_KEYWORD);
                enc.put_blob(s.as_bytes())?;
            }
            AttrValue::Int(i) => {
                enc.put_u8(KIND_INT);
                enc.put_u64(*i as u64);
            }
            AttrValue::Float(f) => {
                enc.put_u8(KIND_FLOAT);
                enc.put_u64(f.to_bits());
            }
        }
    }
    Ok(enc.into_bytes())
}

/// Deserializes an attribute set.
pub fn decode_attributes(bytes: &[u8]) -> StoreResult<Attributes> {
    let mut dec = Decoder::new(bytes);
    let count = dec.get_u32()? as usize;
    let mut attrs = Attributes::new();
    for _ in 0..count {
        let field = dec.get_name()?;
        let kind = dec.get_u8()?;
        let value = match kind {
            KIND_TEXT => AttrValue::Text(
                String::from_utf8(dec.get_blob()?)
                    .map_err(|_| StoreError::Corrupt("non-utf8 text attribute".into()))?,
            ),
            KIND_KEYWORD => AttrValue::Keyword(
                String::from_utf8(dec.get_blob()?)
                    .map_err(|_| StoreError::Corrupt("non-utf8 keyword attribute".into()))?,
            ),
            KIND_INT => AttrValue::Int(dec.get_u64()? as i64),
            KIND_FLOAT => AttrValue::Float(f64::from_bits(dec.get_u64()?)),
            k => return Err(StoreError::Corrupt(format!("unknown attr kind {k}"))),
        };
        attrs.insert(field, value);
    }
    if !dec.is_done() {
        return Err(StoreError::Corrupt("trailing attribute bytes".into()));
    }
    Ok(attrs)
}

/// A persistent, queryable attribute store over a shared database.
///
/// The caller owns the [`Database`] (the engine's other metadata lives in
/// the same store); `AttrStore` owns the index and the attribute table.
#[derive(Debug, Default)]
pub struct AttrStore {
    index: AttrIndex,
}

impl AttrStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads all persisted attributes from `db` and rebuilds the index.
    pub fn load(db: &Database) -> StoreResult<Self> {
        let mut index = AttrIndex::new();
        for (key, value) in db.iter_table(ATTR_TABLE) {
            let id = match <[u8; 8]>::try_from(key) {
                Ok(raw) => ObjectId(u64::from_le_bytes(raw)),
                Err(_) => {
                    return Err(StoreError::Corrupt("attribute key not 8 bytes".into()));
                }
            };
            index.insert(id, decode_attributes(value)?);
        }
        Ok(Self { index })
    }

    /// The live index.
    pub fn index(&self) -> &AttrIndex {
        &self.index
    }

    /// Mutable access to the index, for callers that manage persistence
    /// themselves (e.g. transactional object-plus-attribute inserts).
    pub fn index_mut(&mut self) -> &mut AttrIndex {
        &mut self.index
    }

    /// Sets (replacing) an object's attributes, persisting them.
    pub fn set(&mut self, db: &mut Database, id: ObjectId, attrs: Attributes) -> StoreResult<()> {
        let bytes = encode_attributes(&attrs)?;
        db.put(ATTR_TABLE, &id.0.to_le_bytes(), &bytes)?;
        self.index.insert(id, attrs);
        Ok(())
    }

    /// Removes an object's attributes; returns `true` if it had any.
    pub fn remove(&mut self, db: &mut Database, id: ObjectId) -> StoreResult<bool> {
        db.delete(ATTR_TABLE, &id.0.to_le_bytes())?;
        Ok(self.index.remove(id))
    }

    /// The stored attributes of one object.
    pub fn get(&self, id: ObjectId) -> Option<&Attributes> {
        self.index.attributes(id)
    }

    /// Evaluates a parsed query.
    pub fn search(&self, query: &Query) -> std::collections::HashSet<ObjectId> {
        query.eval(&self.index)
    }

    /// Parses and evaluates a query string.
    pub fn search_str(
        &self,
        query: &str,
    ) -> Result<std::collections::HashSet<ObjectId>, crate::query::ParseError> {
        Ok(Query::parse(query)?.eval(&self.index))
    }

    /// Parses and evaluates a query string, scoring each match by the
    /// number of satisfied leaf predicates (see [`Query::eval_scored`]).
    pub fn search_scored_str(
        &self,
        query: &str,
    ) -> Result<std::collections::HashMap<ObjectId, f64>, crate::query::ParseError> {
        Ok(Query::parse(query)?.eval_scored(&self.index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AttrsBuilder;
    use ferret_store::{DbOptions, Durability};
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ferret-attrstore-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn open(dir: &std::path::Path) -> Database {
        Database::open_with(
            dir,
            DbOptions {
                durability: Durability::Sync,
                checkpoint_every: None,
            },
        )
        .unwrap()
    }

    #[test]
    fn attributes_roundtrip() {
        let attrs = AttrsBuilder::new()
            .text("caption", "red dog")
            .keyword("collection", "corel")
            .int("year", -3)
            .float("gps", 40.35)
            .build();
        let bytes = encode_attributes(&attrs).unwrap();
        let back = decode_attributes(&bytes).unwrap();
        assert_eq!(attrs, back);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_attributes(&[1, 2]).is_err());
        let attrs = AttrsBuilder::new().text("a", "b").build();
        let mut bytes = encode_attributes(&attrs).unwrap();
        bytes.push(0); // Trailing byte.
        assert!(decode_attributes(&bytes).is_err());
    }

    #[test]
    fn set_search_persist_reload() {
        let dir = tmpdir("roundtrip");
        {
            let mut db = open(&dir);
            let mut store = AttrStore::load(&db).unwrap();
            store
                .set(
                    &mut db,
                    ObjectId(1),
                    AttrsBuilder::new().text("caption", "red dog").build(),
                )
                .unwrap();
            store
                .set(
                    &mut db,
                    ObjectId(2),
                    AttrsBuilder::new().text("caption", "blue bird").build(),
                )
                .unwrap();
            let hits = store.search_str("caption:red").unwrap();
            assert_eq!(hits.len(), 1);
            assert!(hits.contains(&ObjectId(1)));
        }
        // Reopen: index is rebuilt from the table.
        let db = open(&dir);
        let store = AttrStore::load(&db).unwrap();
        assert_eq!(store.index().len(), 2);
        assert_eq!(store.search_str("caption:blue").unwrap().len(), 1);
        assert_eq!(
            store.get(ObjectId(1)).unwrap()["caption"],
            AttrValue::Text("red dog".into())
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_persists() {
        let dir = tmpdir("remove");
        {
            let mut db = open(&dir);
            let mut store = AttrStore::load(&db).unwrap();
            store
                .set(
                    &mut db,
                    ObjectId(1),
                    AttrsBuilder::new().text("a", "x").build(),
                )
                .unwrap();
            assert!(store.remove(&mut db, ObjectId(1)).unwrap());
            assert!(!store.remove(&mut db, ObjectId(1)).unwrap());
        }
        let db = open(&dir);
        let store = AttrStore::load(&db).unwrap();
        assert!(store.index().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replace_updates_index() {
        let dir = tmpdir("replace");
        let mut db = open(&dir);
        let mut store = AttrStore::load(&db).unwrap();
        store
            .set(
                &mut db,
                ObjectId(1),
                AttrsBuilder::new().text("a", "old").build(),
            )
            .unwrap();
        store
            .set(
                &mut db,
                ObjectId(1),
                AttrsBuilder::new().text("a", "new").build(),
            )
            .unwrap();
        assert!(store.search_str("a:old").unwrap().is_empty());
        assert_eq!(store.search_str("a:new").unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
