//! The in-memory attribute index.
//!
//! Maintains an inverted index from `(field, token)` to object ids for
//! keyword matching, plus a per-field ordered numeric index for range
//! queries. The index is the volatile image of the attributes table; it is
//! rebuilt from persisted attributes on open.

use std::collections::{BTreeMap, HashMap, HashSet};

use ferret_core::object::ObjectId;

use crate::value::Attributes;

/// Totally ordered f64 wrapper for use as a BTreeMap key (NaNs rejected at
/// insertion time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Inverted + numeric attribute index.
#[derive(Debug, Default)]
pub struct AttrIndex {
    /// `(field, token)` -> ids.
    tokens: HashMap<(String, String), HashSet<ObjectId>>,
    /// `field` -> ordered numeric value -> ids.
    numbers: HashMap<String, BTreeMap<OrdF64, HashSet<ObjectId>>>,
    /// Everything indexed, for NOT queries.
    all: HashSet<ObjectId>,
    /// Per-object attributes, for removal and reporting.
    attrs: HashMap<ObjectId, Attributes>,
}

impl AttrIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// True if no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// All indexed object ids.
    pub fn all_ids(&self) -> &HashSet<ObjectId> {
        &self.all
    }

    /// The stored attributes of an object.
    pub fn attributes(&self, id: ObjectId) -> Option<&Attributes> {
        self.attrs.get(&id)
    }

    /// Indexes (or re-indexes) an object's attributes.
    pub fn insert(&mut self, id: ObjectId, attrs: Attributes) {
        self.remove(id);
        for (field, value) in &attrs {
            for token in value.tokens() {
                self.tokens
                    .entry((field.clone(), token))
                    .or_default()
                    .insert(id);
            }
            if let Some(n) = value.as_number() {
                if n.is_finite() {
                    self.numbers
                        .entry(field.clone())
                        .or_default()
                        .entry(OrdF64(n))
                        .or_default()
                        .insert(id);
                }
            }
        }
        self.all.insert(id);
        self.attrs.insert(id, attrs);
    }

    /// Removes an object from the index; returns `true` if it was present.
    pub fn remove(&mut self, id: ObjectId) -> bool {
        let Some(attrs) = self.attrs.remove(&id) else {
            return false;
        };
        for (field, value) in &attrs {
            for token in value.tokens() {
                let key = (field.clone(), token);
                if let Some(set) = self.tokens.get_mut(&key) {
                    set.remove(&id);
                    if set.is_empty() {
                        self.tokens.remove(&key);
                    }
                }
            }
            if let Some(n) = value.as_number() {
                if let Some(by_val) = self.numbers.get_mut(field) {
                    if let Some(set) = by_val.get_mut(&OrdF64(n)) {
                        set.remove(&id);
                        if set.is_empty() {
                            by_val.remove(&OrdF64(n));
                        }
                    }
                }
            }
        }
        self.all.remove(&id);
        true
    }

    /// Objects whose `field` contains `token` (case-insensitive).
    pub fn match_token(&self, field: &str, token: &str) -> HashSet<ObjectId> {
        self.tokens
            .get(&(field.to_string(), token.to_ascii_lowercase()))
            .cloned()
            .unwrap_or_default()
    }

    /// Objects whose token appears in *any* field.
    pub fn match_any_field(&self, token: &str) -> HashSet<ObjectId> {
        let token = token.to_ascii_lowercase();
        let mut out = HashSet::new();
        for ((_, t), ids) in &self.tokens {
            if *t == token {
                out.extend(ids.iter().copied());
            }
        }
        out
    }

    /// Objects whose numeric `field` lies in `[lo, hi]` (either bound may be
    /// unbounded).
    pub fn match_range(&self, field: &str, lo: Option<f64>, hi: Option<f64>) -> HashSet<ObjectId> {
        let mut out = HashSet::new();
        let Some(by_val) = self.numbers.get(field) else {
            return out;
        };
        use std::ops::Bound;
        let lo_bound = lo.map_or(Bound::Unbounded, |v| Bound::Included(OrdF64(v)));
        let hi_bound = hi.map_or(Bound::Unbounded, |v| Bound::Included(OrdF64(v)));
        for (_, ids) in by_val.range((lo_bound, hi_bound)) {
            out.extend(ids.iter().copied());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AttrsBuilder;

    fn index_with_three() -> AttrIndex {
        let mut idx = AttrIndex::new();
        idx.insert(
            ObjectId(1),
            AttrsBuilder::new()
                .text("caption", "a red dog playing")
                .keyword("collection", "corel")
                .int("year", 2001)
                .build(),
        );
        idx.insert(
            ObjectId(2),
            AttrsBuilder::new()
                .text("caption", "a blue bird")
                .keyword("collection", "corel")
                .int("year", 2004)
                .build(),
        );
        idx.insert(
            ObjectId(3),
            AttrsBuilder::new()
                .text("caption", "red sunset")
                .keyword("collection", "web")
                .float("year", 2005.5)
                .build(),
        );
        idx
    }

    #[test]
    fn token_matching() {
        let idx = index_with_three();
        assert_eq!(
            idx.match_token("caption", "red"),
            HashSet::from([ObjectId(1), ObjectId(3)])
        );
        assert_eq!(
            idx.match_token("caption", "RED"),
            HashSet::from([ObjectId(1), ObjectId(3)])
        );
        assert_eq!(
            idx.match_token("collection", "corel"),
            HashSet::from([ObjectId(1), ObjectId(2)])
        );
        assert!(idx.match_token("caption", "cat").is_empty());
        assert!(idx.match_token("nosuchfield", "red").is_empty());
    }

    #[test]
    fn any_field_matching() {
        let idx = index_with_three();
        assert_eq!(
            idx.match_any_field("red"),
            HashSet::from([ObjectId(1), ObjectId(3)])
        );
        assert_eq!(idx.match_any_field("web"), HashSet::from([ObjectId(3)]));
    }

    #[test]
    fn range_matching() {
        let idx = index_with_three();
        assert_eq!(
            idx.match_range("year", Some(2002.0), Some(2005.0)),
            HashSet::from([ObjectId(2)])
        );
        assert_eq!(
            idx.match_range("year", Some(2002.0), None),
            HashSet::from([ObjectId(2), ObjectId(3)])
        );
        assert_eq!(
            idx.match_range("year", None, Some(2004.0)),
            HashSet::from([ObjectId(1), ObjectId(2)])
        );
        assert_eq!(idx.match_range("year", None, None).len(), 3);
        assert!(idx.match_range("missing", None, None).is_empty());
    }

    #[test]
    fn remove_unindexes() {
        let mut idx = index_with_three();
        assert!(idx.remove(ObjectId(1)));
        assert!(!idx.remove(ObjectId(1)));
        assert_eq!(
            idx.match_token("caption", "red"),
            HashSet::from([ObjectId(3)])
        );
        assert_eq!(idx.match_range("year", None, Some(2003.0)).len(), 0);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn reinsert_replaces_attributes() {
        let mut idx = index_with_three();
        idx.insert(
            ObjectId(1),
            AttrsBuilder::new().text("caption", "green tree").build(),
        );
        assert!(!idx.match_token("caption", "dog").contains(&ObjectId(1)));
        assert!(idx.match_token("caption", "green").contains(&ObjectId(1)));
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.attributes(ObjectId(1)).unwrap().len(), 1);
    }

    #[test]
    fn empty_index_behaviour() {
        let idx = AttrIndex::new();
        assert!(idx.is_empty());
        assert!(idx.match_token("a", "b").is_empty());
        assert!(idx.attributes(ObjectId(1)).is_none());
    }
}
