//! # ferret-attr
//!
//! Attribute-based search for the Ferret toolkit (paper §4.1.2). Keyword,
//! text, and numeric attributes are indexed per object; a small boolean
//! query language (`collection:corel AND NOT year<2000`) selects object
//! sets that can seed a similarity search or restrict its candidates.
//!
//! ```
//! use ferret_attr::{AttrIndex, AttrsBuilder, Query};
//! use ferret_core::object::ObjectId;
//!
//! let mut index = AttrIndex::new();
//! index.insert(ObjectId(1), AttrsBuilder::new()
//!     .text("caption", "a red dog")
//!     .keyword("collection", "corel")
//!     .build());
//!
//! let hits = Query::parse("caption:dog AND collection:corel").unwrap().eval(&index);
//! assert!(hits.contains(&ObjectId(1)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod query;
pub mod store;
pub mod value;

pub use index::AttrIndex;
pub use query::{ParseError, Query};
pub use store::{AttrStore, ATTR_TABLE};
pub use value::{tokenize, AttrValue, Attributes, AttrsBuilder};
