//! Boolean attribute query language.
//!
//! A small expression grammar for attribute-only queries, used to
//! "bootstrap" similarity search or refine its candidate set (paper
//! §4.1.2):
//!
//! ```text
//! collection:corel AND (caption:dog OR caption:cat) NOT year<2000
//! ```
//!
//! Grammar (case-insensitive keywords, implicit AND on juxtaposition):
//!
//! ```text
//! expr   := and ("OR" and)*
//! and    := unary ("AND"? unary)*
//! unary  := "NOT" unary | primary
//! primary:= "(" expr ")" | field OP number | field ":" word | word
//! OP     := ">" | "<" | ">=" | "<=" | "="
//! ```

use std::collections::{HashMap, HashSet};
use std::fmt;

use ferret_core::object::ObjectId;

use crate::index::AttrIndex;
use crate::value::tokenize;

/// A parsed attribute query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// All listed queries must match.
    And(Vec<Query>),
    /// Any listed query may match.
    Or(Vec<Query>),
    /// The inner query must not match.
    Not(Box<Query>),
    /// `field:token` — token must appear in the given field.
    Term {
        /// The field name.
        field: String,
        /// The (lowercased) token.
        token: String,
    },
    /// Bare `token` — may appear in any field.
    AnyField {
        /// The (lowercased) token.
        token: String,
    },
    /// `field OP number` — numeric comparison, expressed as a closed range.
    Range {
        /// The field name.
        field: String,
        /// Lower bound (inclusive), if any.
        lo: Option<f64>,
        /// Upper bound (inclusive), if any.
        hi: Option<f64>,
    },
}

/// A query parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Word(String),
    Quoted(String),
    LParen,
    RParen,
    Colon,
    Op(String),
    And,
    Or,
    Not,
}

fn lex(input: &str) -> Result<Vec<(Token, usize)>, ParseError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        match c {
            '(' => {
                tokens.push((Token::LParen, start));
                i += 1;
            }
            ')' => {
                tokens.push((Token::RParen, start));
                i += 1;
            }
            ':' => {
                tokens.push((Token::Colon, start));
                i += 1;
            }
            '>' | '<' => {
                let mut op = c.to_string();
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    op.push('=');
                    i += 1;
                }
                tokens.push((Token::Op(op), start));
                i += 1;
            }
            '=' => {
                tokens.push((Token::Op("=".into()), start));
                i += 1;
            }
            '"' => {
                i += 1;
                let qstart = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(ParseError {
                        message: "unterminated quote".into(),
                        position: start,
                    });
                }
                tokens.push((Token::Quoted(input[qstart..i].to_string()), start));
                i += 1;
            }
            _ if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == '/' => {
                let mut j = i;
                while j < bytes.len() {
                    let cj = bytes[j] as char;
                    if cj.is_alphanumeric() || cj == '_' || cj == '-' || cj == '.' || cj == '/' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[i..j];
                let token = match word.to_ascii_uppercase().as_str() {
                    "AND" => Token::And,
                    "OR" => Token::Or,
                    "NOT" => Token::Not,
                    _ => Token::Word(word.to_string()),
                };
                tokens.push((token, start));
                i = j;
            }
            _ => {
                return Err(ParseError {
                    message: format!("unexpected character {c:?}"),
                    position: start,
                });
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn position(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map_or(self.input_len, |(_, p)| *p)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.position(),
        }
    }

    fn parse_expr(&mut self) -> Result<Query, ParseError> {
        let first = self.parse_and()?;
        let mut rest = Vec::new();
        while matches!(self.peek(), Some(Token::Or)) {
            self.advance();
            rest.push(self.parse_and()?);
        }
        Ok(if rest.is_empty() {
            first
        } else {
            let mut parts = vec![first];
            parts.append(&mut rest);
            Query::Or(parts)
        })
    }

    fn parse_and(&mut self) -> Result<Query, ParseError> {
        let first = self.parse_unary()?;
        let mut rest = Vec::new();
        loop {
            match self.peek() {
                Some(Token::And) => {
                    self.advance();
                    rest.push(self.parse_unary()?);
                }
                // Implicit AND on juxtaposition of primaries / NOT.
                Some(Token::Word(_) | Token::Quoted(_) | Token::LParen | Token::Not) => {
                    rest.push(self.parse_unary()?);
                }
                _ => break,
            }
        }
        Ok(if rest.is_empty() {
            first
        } else {
            let mut parts = vec![first];
            parts.append(&mut rest);
            Query::And(parts)
        })
    }

    fn parse_unary(&mut self) -> Result<Query, ParseError> {
        if matches!(self.peek(), Some(Token::Not)) {
            self.advance();
            return Ok(Query::Not(Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn quoted_to_query(field: Option<&str>, text: &str) -> Query {
        let terms: Vec<Query> = tokenize(text)
            .into_iter()
            .map(|token| match field {
                Some(f) => Query::Term {
                    field: f.to_string(),
                    token,
                },
                None => Query::AnyField { token },
            })
            .collect();
        let mut terms = terms.into_iter();
        match (terms.next(), terms.next()) {
            (None, _) => Query::And(Vec::new()), // Matches everything.
            (Some(only), None) => only,
            (Some(a), Some(b)) => {
                let mut parts = vec![a, b];
                parts.extend(terms);
                Query::And(parts)
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Query, ParseError> {
        match self.advance() {
            Some(Token::LParen) => {
                let inner = self.parse_expr()?;
                match self.advance() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(self.err("expected ')'")),
                }
            }
            Some(Token::Quoted(text)) => Ok(Self::quoted_to_query(None, &text)),
            Some(Token::Word(word)) => match self.peek() {
                Some(Token::Colon) => {
                    self.advance();
                    match self.advance() {
                        Some(Token::Word(value)) => Ok(Query::Term {
                            field: word,
                            token: value.to_ascii_lowercase(),
                        }),
                        Some(Token::Quoted(text)) => Ok(Self::quoted_to_query(Some(&word), &text)),
                        _ => Err(self.err("expected value after ':'")),
                    }
                }
                Some(Token::Op(op)) => {
                    let op = op.clone();
                    self.advance();
                    let num = match self.advance() {
                        Some(Token::Word(w)) => w.parse::<f64>().map_err(|_| ParseError {
                            message: format!("expected number, got {w:?}"),
                            position: self.position(),
                        })?,
                        _ => return Err(self.err("expected number after comparison")),
                    };
                    let (lo, hi) = match op.as_str() {
                        ">" => (Some(num + f64::EPSILON * num.abs().max(1.0)), None),
                        ">=" => (Some(num), None),
                        "<" => (None, Some(num - f64::EPSILON * num.abs().max(1.0))),
                        "<=" => (None, Some(num)),
                        "=" => (Some(num), Some(num)),
                        _ => return Err(self.err("unknown comparison operator")),
                    };
                    Ok(Query::Range {
                        field: word,
                        lo,
                        hi,
                    })
                }
                _ => Ok(Query::AnyField {
                    token: word.to_ascii_lowercase(),
                }),
            },
            Some(t) => Err(ParseError {
                message: format!("unexpected token {t:?}"),
                position: self.position(),
            }),
            None => Err(self.err("unexpected end of query")),
        }
    }
}

impl Query {
    /// Parses a query expression.
    pub fn parse(input: &str) -> Result<Self, ParseError> {
        let tokens = lex(input)?;
        if tokens.is_empty() {
            return Err(ParseError {
                message: "empty query".into(),
                position: 0,
            });
        }
        let mut parser = Parser {
            tokens,
            pos: 0,
            input_len: input.len(),
        };
        let query = parser.parse_expr()?;
        if parser.peek().is_some() {
            return Err(parser.err("trailing input"));
        }
        Ok(query)
    }

    /// Evaluates the query against an index, returning matching ids.
    pub fn eval(&self, index: &AttrIndex) -> HashSet<ObjectId> {
        match self {
            Query::And(parts) => {
                if parts.is_empty() {
                    return index.all_ids().clone();
                }
                let mut sets: Vec<HashSet<ObjectId>> =
                    parts.iter().map(|p| p.eval(index)).collect();
                // Intersect starting from the smallest set.
                sets.sort_by_key(HashSet::len);
                let mut result = sets.remove(0);
                for s in sets {
                    result.retain(|id| s.contains(id));
                    if result.is_empty() {
                        break;
                    }
                }
                result
            }
            Query::Or(parts) => {
                let mut result = HashSet::new();
                for p in parts {
                    result.extend(p.eval(index));
                }
                result
            }
            Query::Not(inner) => {
                let matched = inner.eval(index);
                index
                    .all_ids()
                    .iter()
                    .copied()
                    .filter(|id| !matched.contains(id))
                    .collect()
            }
            Query::Term { field, token } => index.match_token(field, token),
            Query::AnyField { token } => index.match_any_field(token),
            Query::Range { field, lo, hi } => index.match_range(field, *lo, *hi),
        }
    }

    /// Evaluates the query and scores each match by how many leaf
    /// predicates it satisfied: each matched `Term`/`AnyField`/`Range`
    /// (and each satisfied `Not`) contributes 1.0, `Or` sums the scores
    /// of its matching children, and `And` keeps only ids matching every
    /// child with their child scores summed. The key set is exactly
    /// [`Query::eval`]'s result; only the weights differ, so fusion
    /// ranking can prefer objects matching more clauses of a disjunction.
    pub fn eval_scored(&self, index: &AttrIndex) -> HashMap<ObjectId, f64> {
        match self {
            Query::And(parts) => {
                if parts.is_empty() {
                    return index.all_ids().iter().map(|&id| (id, 1.0)).collect();
                }
                let mut maps: Vec<HashMap<ObjectId, f64>> =
                    parts.iter().map(|p| p.eval_scored(index)).collect();
                // Intersect starting from the smallest map.
                maps.sort_by_key(HashMap::len);
                let mut result = maps.remove(0);
                for m in maps {
                    result.retain(|id, _| m.contains_key(id));
                    if result.is_empty() {
                        break;
                    }
                    for (id, score) in result.iter_mut() {
                        *score += m[id];
                    }
                }
                result
            }
            Query::Or(parts) => {
                let mut result: HashMap<ObjectId, f64> = HashMap::new();
                for p in parts {
                    for (id, score) in p.eval_scored(index) {
                        *result.entry(id).or_insert(0.0) += score;
                    }
                }
                result
            }
            Query::Not(inner) => {
                let matched = inner.eval(index);
                index
                    .all_ids()
                    .iter()
                    .copied()
                    .filter(|id| !matched.contains(id))
                    .map(|id| (id, 1.0))
                    .collect()
            }
            Query::Term { field, token } => index
                .match_token(field, token)
                .into_iter()
                .map(|id| (id, 1.0))
                .collect(),
            Query::AnyField { token } => index
                .match_any_field(token)
                .into_iter()
                .map(|id| (id, 1.0))
                .collect(),
            Query::Range { field, lo, hi } => index
                .match_range(field, *lo, *hi)
                .into_iter()
                .map(|id| (id, 1.0))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AttrsBuilder;

    fn index() -> AttrIndex {
        let mut idx = AttrIndex::new();
        idx.insert(
            ObjectId(1),
            AttrsBuilder::new()
                .text("caption", "red dog")
                .keyword("collection", "corel")
                .int("year", 2001)
                .build(),
        );
        idx.insert(
            ObjectId(2),
            AttrsBuilder::new()
                .text("caption", "blue bird singing")
                .keyword("collection", "corel")
                .int("year", 2004)
                .build(),
        );
        idx.insert(
            ObjectId(3),
            AttrsBuilder::new()
                .text("caption", "red sunset")
                .keyword("collection", "web")
                .int("year", 2005)
                .build(),
        );
        idx
    }

    fn eval(q: &str) -> HashSet<u64> {
        Query::parse(q)
            .unwrap()
            .eval(&index())
            .into_iter()
            .map(|id| id.0)
            .collect()
    }

    #[test]
    fn term_queries() {
        assert_eq!(eval("caption:red"), HashSet::from([1, 3]));
        assert_eq!(eval("collection:corel"), HashSet::from([1, 2]));
        assert_eq!(eval("caption:missing"), HashSet::new());
    }

    #[test]
    fn any_field_queries() {
        assert_eq!(eval("red"), HashSet::from([1, 3]));
        assert_eq!(eval("corel"), HashSet::from([1, 2]));
    }

    #[test]
    fn boolean_combinations() {
        assert_eq!(eval("caption:red AND collection:corel"), HashSet::from([1]));
        // Implicit AND.
        assert_eq!(eval("caption:red collection:corel"), HashSet::from([1]));
        assert_eq!(eval("caption:dog OR caption:bird"), HashSet::from([1, 2]));
        assert_eq!(eval("NOT collection:corel"), HashSet::from([3]));
        assert_eq!(
            eval("collection:corel AND NOT caption:dog"),
            HashSet::from([2])
        );
    }

    #[test]
    fn precedence_and_parens() {
        // AND binds tighter than OR.
        assert_eq!(
            eval("caption:dog AND collection:web OR caption:bird"),
            HashSet::from([2])
        );
        assert_eq!(
            eval("caption:dog AND (collection:web OR caption:bird)"),
            HashSet::new()
        );
        assert_eq!(
            eval("(caption:dog OR caption:sunset) AND collection:web"),
            HashSet::from([3])
        );
    }

    #[test]
    fn range_queries() {
        assert_eq!(eval("year>2001"), HashSet::from([2, 3]));
        assert_eq!(eval("year>=2001"), HashSet::from([1, 2, 3]));
        assert_eq!(eval("year<2004"), HashSet::from([1]));
        assert_eq!(eval("year<=2004"), HashSet::from([1, 2]));
        assert_eq!(eval("year=2004"), HashSet::from([2]));
        assert_eq!(eval("year>2001 AND year<2005"), HashSet::from([2]));
    }

    #[test]
    fn quoted_phrases() {
        assert_eq!(eval("caption:\"blue bird\""), HashSet::from([2]));
        assert_eq!(eval("\"red dog\""), HashSet::from([1]));
        // All words of the phrase must match (conjunctive).
        assert_eq!(eval("caption:\"red bird\""), HashSet::new());
    }

    #[test]
    fn parse_errors() {
        assert!(Query::parse("").is_err());
        assert!(Query::parse("(a OR b").is_err());
        assert!(Query::parse("field:").is_err());
        assert!(Query::parse("year >").is_err());
        assert!(Query::parse("year > dog").is_err());
        assert!(Query::parse("\"unterminated").is_err());
        assert!(Query::parse("a ) b").is_err());
        assert!(Query::parse("caption:red ??").is_err());
    }

    #[test]
    fn parse_error_reports_position() {
        let err = Query::parse("caption:red @").unwrap_err();
        assert_eq!(err.position, 12);
        assert!(err.to_string().contains("byte 12"));
    }

    #[test]
    fn not_of_everything_is_empty() {
        assert_eq!(eval("NOT (caption:red OR caption:blue)").len(), 0);
    }

    fn eval_scored(q: &str) -> HashMap<u64, f64> {
        Query::parse(q)
            .unwrap()
            .eval_scored(&index())
            .into_iter()
            .map(|(id, s)| (id.0, s))
            .collect()
    }

    #[test]
    fn scored_keys_match_unscored_eval() {
        for q in [
            "caption:red",
            "caption:red OR collection:corel",
            "caption:red AND collection:corel",
            "NOT collection:corel",
            "year>2001 AND year<2005",
            "caption:missing",
        ] {
            let keys: HashSet<u64> = eval_scored(q).into_keys().collect();
            assert_eq!(keys, eval(q), "key set diverged for {q}");
        }
    }

    #[test]
    fn or_sums_matching_children() {
        // Object 1 matches both disjuncts, objects 2 and 3 one each.
        let scores = eval_scored("caption:red OR collection:corel");
        assert_eq!(scores[&1], 2.0);
        assert_eq!(scores[&2], 1.0);
        assert_eq!(scores[&3], 1.0);
    }

    #[test]
    fn and_sums_child_scores() {
        let scores = eval_scored("caption:red AND collection:corel");
        assert_eq!(scores, HashMap::from([(1, 2.0)]));
        // A nested OR's multiplicity carries through the AND.
        let scores = eval_scored("(caption:red OR year<2002) AND collection:corel");
        assert_eq!(scores, HashMap::from([(1, 3.0)]));
    }
}
