//! Typed attribute values and per-object attribute sets.
//!
//! Attributes "may take several forms: generic attributes such as creation
//! time, automatically collected annotations such as GPS coordinates ...
//! or manual annotations" (paper §4.1.2).

use std::collections::BTreeMap;

/// One attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Free text; tokenized into keywords for indexing.
    Text(String),
    /// An exact-match keyword (not tokenized).
    Keyword(String),
    /// A signed integer (timestamps, counters).
    Int(i64),
    /// A floating-point value (GPS coordinates, durations).
    Float(f64),
}

impl AttrValue {
    /// The index tokens this value produces.
    pub fn tokens(&self) -> Vec<String> {
        match self {
            AttrValue::Text(s) => tokenize(s),
            AttrValue::Keyword(s) => {
                if s.is_empty() {
                    Vec::new()
                } else {
                    vec![s.to_ascii_lowercase()]
                }
            }
            AttrValue::Int(i) => vec![i.to_string()],
            AttrValue::Float(_) => Vec::new(), // Floats are range-indexed only.
        }
    }

    /// The numeric interpretation, if any (for range queries).
    pub fn as_number(&self) -> Option<f64> {
        match self {
            AttrValue::Int(i) => Some(*i as f64),
            AttrValue::Float(f) => Some(*f),
            _ => None,
        }
    }
}

/// Lowercases and splits text into alphanumeric tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_ascii_lowercase)
        .collect()
}

/// The attribute set attached to one object, keyed by field name.
pub type Attributes = BTreeMap<String, AttrValue>;

/// Builder-style helper for constructing attribute sets.
#[derive(Debug, Clone, Default)]
pub struct AttrsBuilder {
    attrs: Attributes,
}

impl AttrsBuilder {
    /// Starts an empty attribute set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a free-text attribute.
    pub fn text(mut self, field: &str, value: &str) -> Self {
        self.attrs
            .insert(field.to_string(), AttrValue::Text(value.to_string()));
        self
    }

    /// Adds an exact-keyword attribute.
    pub fn keyword(mut self, field: &str, value: &str) -> Self {
        self.attrs
            .insert(field.to_string(), AttrValue::Keyword(value.to_string()));
        self
    }

    /// Adds an integer attribute.
    pub fn int(mut self, field: &str, value: i64) -> Self {
        self.attrs.insert(field.to_string(), AttrValue::Int(value));
        self
    }

    /// Adds a float attribute.
    pub fn float(mut self, field: &str, value: f64) -> Self {
        self.attrs
            .insert(field.to_string(), AttrValue::Float(value));
        self
    }

    /// Finishes the attribute set.
    pub fn build(self) -> Attributes {
        self.attrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_and_lowercases() {
        assert_eq!(
            tokenize("A dog, a CAT; bird-47!"),
            vec!["a", "dog", "a", "cat", "bird", "47"]
        );
        assert!(tokenize("  \t ").is_empty());
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn value_tokens() {
        assert_eq!(
            AttrValue::Text("Red Dog".into()).tokens(),
            vec!["red", "dog"]
        );
        assert_eq!(AttrValue::Keyword("Corel".into()).tokens(), vec!["corel"]);
        assert!(AttrValue::Keyword(String::new()).tokens().is_empty());
        assert_eq!(AttrValue::Int(-5).tokens(), vec!["-5"]);
        assert!(AttrValue::Float(2.5).tokens().is_empty());
    }

    #[test]
    fn value_numbers() {
        assert_eq!(AttrValue::Int(3).as_number(), Some(3.0));
        assert_eq!(AttrValue::Float(2.5).as_number(), Some(2.5));
        assert_eq!(AttrValue::Text("3".into()).as_number(), None);
        assert_eq!(AttrValue::Keyword("3".into()).as_number(), None);
    }

    #[test]
    fn builder_collects_fields() {
        let attrs = AttrsBuilder::new()
            .text("caption", "sunset over water")
            .keyword("collection", "corel")
            .int("year", 2005)
            .float("duration", 3.5)
            .build();
        assert_eq!(attrs.len(), 4);
        assert_eq!(attrs["year"], AttrValue::Int(2005));
        assert_eq!(attrs["duration"].as_number(), Some(3.5));
    }
}
