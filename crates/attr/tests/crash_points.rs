//! Crash-point sweep for the attribute store.
//!
//! `AttrStore` persists through the shared metadata [`Database`], which is
//! exactly the seam the fault-injection harness covers — this test proves
//! it. Pass 1 records every mutation I/O event of a fault-free set/remove
//! workload under a no-fault [`FaultVfs`]; pass 2 replays the workload once
//! per recorded event with a simulated power loss at that event (both the
//! seeded crash model and the worst legal outcome). After every crash the
//! store reopens with the plain filesystem and the recovered attribute sets
//! must equal the state after some legal prefix of the acknowledged
//! operations — with `Durability::Sync`, that prefix is at least every
//! operation that returned `Ok` and at most one in-flight operation more.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ferret_attr::{AttrStore, Attributes, AttrsBuilder};
use ferret_core::object::ObjectId;
use ferret_store::vfs::{FaultPlan, FaultVfs, StdVfs, Vfs};
use ferret_store::{Database, DbOptions, Durability};

/// Logical attribute state: object id → its attribute set.
type Model = BTreeMap<u64, Attributes>;

enum AOp {
    Set(u64, Attributes),
    Remove(u64),
}

/// Deterministic op mix: sets carrying the op index (so states stay
/// distinguishable), interleaved with removes over the same small id
/// space — some hitting live ids, some absent ones.
fn op_for(i: u64) -> AOp {
    if i % 4 == 3 {
        AOp::Remove((i + 2) % 7)
    } else {
        let attrs = AttrsBuilder::new()
            .int("op", i as i64)
            .text("name", &format!("object number {i}"))
            .keyword("tag", if i.is_multiple_of(2) { "even" } else { "odd" })
            .float("score", i as f64 * 0.5)
            .build();
        AOp::Set(i % 7, attrs)
    }
}

fn apply_model(model: &mut Model, op: &AOp) {
    match op {
        AOp::Set(id, attrs) => {
            model.insert(*id, attrs.clone());
        }
        AOp::Remove(id) => {
            model.remove(id);
        }
    }
}

/// `prefixes[k]` is the attribute state after the first `k` operations.
fn prefix_models(total: u64) -> Vec<Model> {
    let mut prefixes = vec![Model::new()];
    let mut current = Model::new();
    for i in 0..total {
        apply_model(&mut current, &op_for(i));
        prefixes.push(current.clone());
    }
    prefixes
}

struct RunOutcome {
    /// Operations whose `set`/`remove` returned `Ok` (all durable under
    /// `Durability::Sync`).
    ops_done: u64,
    /// 1 if an operation itself failed: its record may have reached the
    /// WAL even though the call reported an error.
    in_flight: u64,
    failed: bool,
}

fn run_workload(vfs: Arc<dyn Vfs>, dir: &Path, total: u64) -> RunOutcome {
    let options = DbOptions {
        durability: Durability::Sync,
        checkpoint_every: None,
    };
    let mut db = match Database::open_with_vfs(vfs, dir, options) {
        Ok(db) => db,
        Err(_) => {
            return RunOutcome {
                ops_done: 0,
                in_flight: 0,
                failed: true,
            }
        }
    };
    let mut store = match AttrStore::load(&db) {
        Ok(store) => store,
        Err(_) => {
            return RunOutcome {
                ops_done: 0,
                in_flight: 0,
                failed: true,
            }
        }
    };
    for i in 0..total {
        let result = match op_for(i) {
            AOp::Set(id, attrs) => store.set(&mut db, ObjectId(id), attrs),
            AOp::Remove(id) => store.remove(&mut db, ObjectId(id)).map(|_| ()),
        };
        if result.is_err() {
            return RunOutcome {
                ops_done: i,
                in_flight: 1,
                failed: true,
            };
        }
    }
    RunOutcome {
        ops_done: total,
        in_flight: 0,
        failed: false,
    }
}

/// Reopens the store with the real filesystem and reads every recovered
/// attribute set back through `AttrStore::load` — the production
/// recovery path.
fn read_state(dir: &Path) -> Model {
    let db = Database::open(dir).expect("recovery after crash must succeed");
    let store = AttrStore::load(&db).expect("attribute recovery must succeed");
    let mut model = Model::new();
    for id in store.index().all_ids() {
        let attrs = store.get(*id).expect("indexed id has attributes");
        model.insert(id.0, attrs.clone());
    }
    model
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ferret-attrcrash-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn attr_workload_recovers_from_every_crash_point() {
    const TOTAL_OPS: u64 = 32;
    let base = tmpdir("sweep");
    let prefixes = prefix_models(TOTAL_OPS);

    // Pass 1: record the full event trace of a fault-free run.
    let fault = FaultVfs::new(Arc::new(StdVfs), FaultPlan::default());
    let clean_dir = base.join("clean");
    let outcome = run_workload(Arc::new(fault.clone()), &clean_dir, TOTAL_OPS);
    assert!(!outcome.failed, "fault-free run failed");
    let total_events = fault.fault_points();
    assert!(!fault.tripped());
    assert_eq!(read_state(&clean_dir), prefixes[TOTAL_OPS as usize]);
    assert!(
        total_events >= 40,
        "only {total_events} fault points recorded; the workload is not \
         exercising the durable path"
    );

    // Pass 2: crash at every event index, under both crash models.
    for point in 0..total_events {
        for worst_case in [false, true] {
            let dir = base.join(format!("p{point}-{}", u8::from(worst_case)));
            let seed = 0xa77_c4a5_1234u64 ^ (point << 1) ^ u64::from(worst_case);
            let fault = FaultVfs::new(Arc::new(StdVfs), FaultPlan::crash_at(point, seed));
            let outcome = run_workload(Arc::new(fault.clone()), &dir, TOTAL_OPS);
            assert!(
                outcome.failed || outcome.ops_done == TOTAL_OPS,
                "point {point}: crash did not fire"
            );
            assert!(fault.tripped(), "point {point}: no injected fault");
            if worst_case {
                fault.crash_worst_case().unwrap();
            } else {
                fault.crash().unwrap();
            }
            let recovered = read_state(&dir);
            // Remove-of-absent ops repeat states, so prefixes are not all
            // distinct: accept any prefix index inside the legal window
            // [acknowledged, acknowledged + in-flight].
            let lo = outcome.ops_done as usize;
            let hi = (outcome.ops_done + outcome.in_flight) as usize;
            assert!(
                (lo..=hi).any(|k| prefixes[k] == recovered),
                "point {point} worst={worst_case}: recovered {} attribute \
                 sets, not the state after any of ops {lo}..={hi}",
                recovered.len()
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    std::fs::remove_dir_all(&base).ok();
}

/// ENOSPC mid-workload without a crash: operations fail once the byte
/// budget runs out, but everything acknowledged stays readable.
#[test]
fn attr_workload_survives_byte_budget_exhaustion() {
    const TOTAL_OPS: u64 = 32;
    let prefixes = prefix_models(TOTAL_OPS);
    for budget in [0u64, 128, 900, 2500] {
        let dir = tmpdir(&format!("enospc-{budget}"));
        let fault = FaultVfs::new(
            Arc::new(StdVfs),
            FaultPlan {
                seed: budget,
                byte_budget: Some(budget),
                ..FaultPlan::default()
            },
        );
        let outcome = run_workload(Arc::new(fault.clone()), &dir, TOTAL_OPS);
        assert!(outcome.failed, "budget {budget}: never hit ENOSPC");
        let recovered = read_state(&dir);
        let lo = outcome.ops_done as usize;
        let hi = (outcome.ops_done + outcome.in_flight) as usize;
        assert!(
            (lo..=hi).any(|k| prefixes[k] == recovered),
            "budget {budget}: recovered state is not the state after any \
             of ops {lo}..={hi}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
