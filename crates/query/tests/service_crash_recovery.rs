//! Service-level crash/restart property test.
//!
//! Random insert/delete/flush/checkpoint scripts run against a persistent
//! [`FerretService`] whose metadata I/O goes through the fault-injection
//! VFS. Each script is killed at a random point in its I/O event stream,
//! the simulated power loss is applied, and the recovered service must be
//! (a) a consistent prefix of the acknowledged operations — every
//! transaction all-or-nothing, nothing acknowledged lost — and (b)
//! bit-identical, over rendered protocol responses, to a fresh in-memory
//! engine rebuilt from exactly the surviving objects.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ferret_attr::store::{decode_attributes, ATTR_TABLE};
use ferret_attr::{Attributes, AttrsBuilder};
use ferret_core::codec::{decode_object, encode_object};
use ferret_core::engine::EngineConfig;
use ferret_core::object::{DataObject, ObjectId};
use ferret_core::sketch::SketchParams;
use ferret_core::vector::FeatureVector;
use ferret_query::{FerretService, ServiceError, FEATURES_TABLE};
use ferret_store::vfs::{FaultPlan, FaultVfs, StdVfs};
use ferret_store::{Database, DbOptions, Durability};
use proptest::prelude::*;

/// Logical service contents: object id → whether it carries attributes.
/// Object payloads are a pure function of the id, so this is the whole
/// state.
type Model = BTreeMap<u64, bool>;

#[derive(Clone, Debug)]
enum ScriptOp {
    Insert(u64),
    Remove(u64),
    Flush,
    Checkpoint,
}

fn config() -> EngineConfig {
    EngineConfig::basic(
        SketchParams::new(128, vec![0.0; 3], vec![1.0; 3]).unwrap(),
        7,
    )
}

fn db_options() -> DbOptions {
    DbOptions {
        durability: Durability::Sync,
        checkpoint_every: None,
    }
}

/// The (distinct) object stored under `id`.
fn obj_for(id: u64) -> DataObject {
    let x = (id + 1) as f32 / 300.0;
    DataObject::single(FeatureVector::new(vec![x, x, x]).unwrap())
}

/// Even ids carry attributes, odd ids don't.
fn attrs_for(id: u64) -> Option<Attributes> {
    id.is_multiple_of(2).then(|| {
        AttrsBuilder::new()
            .int("idx", id as i64)
            .keyword("parity", "even")
            .build()
    })
}

/// Applies one script op to a live service, mirroring it in `model`.
/// Inserting an already-present id is a script no-op (the engine rejects
/// duplicates); removing an absent id still commits its delete
/// transaction.
fn apply(svc: &mut FerretService, model: &mut Model, op: &ScriptOp) -> Result<(), ServiceError> {
    match op {
        ScriptOp::Insert(id) => {
            if model.contains_key(id) {
                return Ok(());
            }
            svc.insert(ObjectId(*id), obj_for(*id), attrs_for(*id))?;
            model.insert(*id, attrs_for(*id).is_some());
        }
        ScriptOp::Remove(id) => {
            svc.remove(ObjectId(*id))?;
            model.remove(id);
        }
        ScriptOp::Flush => svc.flush()?,
        ScriptOp::Checkpoint => svc.checkpoint()?,
    }
    Ok(())
}

/// Reads the post-crash store with the plain filesystem, checking the
/// per-object invariants as it goes: every surviving feature row decodes
/// to the exact bytes originally written, and no attribute row survives
/// without its same-transaction feature row.
fn read_recovered(dir: &Path) -> Model {
    let db = Database::open(dir).expect("recovery after crash must succeed");
    let mut recovered = Model::new();
    for (key, value) in db.iter_table(FEATURES_TABLE) {
        let id = u64::from_le_bytes(key.try_into().expect("feature key is 8 bytes"));
        let obj = decode_object(value).expect("recovered object must decode");
        assert_eq!(
            encode_object(&obj),
            encode_object(&obj_for(id)),
            "object {id} recovered with different contents"
        );
        recovered.insert(id, false);
    }
    for (key, value) in db.iter_table(ATTR_TABLE) {
        let id = u64::from_le_bytes(key.try_into().expect("attr key is 8 bytes"));
        decode_attributes(value).expect("recovered attributes must decode");
        let has = recovered
            .get_mut(&id)
            .unwrap_or_else(|| panic!("attr row for {id} without its feature row"));
        *has = true;
    }
    recovered
}

/// A fresh in-memory service holding exactly the objects in `model`.
fn rebuild_in_memory(model: &Model) -> FerretService {
    let mut svc = FerretService::in_memory(config()).unwrap();
    let items: Vec<_> = model
        .iter()
        .map(|(&id, &has_attrs)| {
            (
                ObjectId(id),
                obj_for(id),
                if has_attrs { attrs_for(id) } else { None },
            )
        })
        .collect();
    svc.insert_batch(items).expect("rebuild from model");
    svc
}

fn op_strategy() -> impl Strategy<Value = ScriptOp> {
    prop_oneof![
        (0u64..24).prop_map(ScriptOp::Insert),
        (0u64..24).prop_map(ScriptOp::Insert),
        (0u64..24).prop_map(ScriptOp::Remove),
        Just(ScriptOp::Flush),
        Just(ScriptOp::Checkpoint),
    ]
}

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ferret-svc-crash-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Kill/reopen at a random point of a random script: the recovered
    /// state is a consistent prefix and queries over it match a fresh
    /// engine built from the surviving objects.
    #[test]
    fn recovered_service_matches_clean_rebuild(
        ops in prop::collection::vec(op_strategy(), 10..40),
        frac in 0u64..1000,
    ) {
        // Pass A: fault-free run, recording the I/O event trace and the
        // logical state after each op.
        let dir_a = tmpdir("clean");
        let clean = FaultVfs::new(Arc::new(StdVfs), FaultPlan::default());
        let mut states = vec![Model::new()];
        {
            let mut svc = FerretService::open_with_vfs(
                Arc::new(clean.clone()), &dir_a, config(), db_options(),
            ).expect("fault-free open");
            let mut model = Model::new();
            for op in &ops {
                apply(&mut svc, &mut model, op).expect("fault-free op");
                states.push(model.clone());
            }
        }
        let total_events = clean.fault_points();
        prop_assert!(!clean.tripped());
        prop_assert!(total_events > 0);
        std::fs::remove_dir_all(&dir_a).ok();

        // Pass B: same script, crashing at a script-chosen event index.
        // The replay is deterministic, so pass B's I/O stream matches
        // pass A's up to the crash point.
        let point = frac * total_events / 1000;
        let worst_case = frac % 2 == 0;
        let dir_b = tmpdir("crash");
        let fault = FaultVfs::new(
            Arc::new(StdVfs),
            FaultPlan::crash_at(point, 0x9e37_79b9_7f4a_7c15 ^ frac),
        );
        let mut ok_ops = ops.len();
        match FerretService::open_with_vfs(
            Arc::new(fault.clone()), &dir_b, config(), db_options(),
        ) {
            Ok(mut svc) => {
                let mut model = Model::new();
                for (i, op) in ops.iter().enumerate() {
                    if apply(&mut svc, &mut model, op).is_err() {
                        ok_ops = i;
                        break;
                    }
                }
            }
            Err(_) => ok_ops = 0,
        }
        if worst_case {
            fault.crash_worst_case().unwrap();
        } else {
            fault.crash().unwrap();
        }

        // Prefix consistency: with Durability::Sync every acknowledged op
        // is durable, and the op interrupted mid-commit may or may not
        // have reached the log — so exactly states[ok_ops] or the next.
        let recovered = read_recovered(&dir_b);
        let floor = &states[ok_ops];
        let ceiling = &states[(ok_ops + 1).min(ops.len())];
        prop_assert!(
            recovered == *floor || recovered == *ceiling,
            "crash at event {point}/{total_events} (worst={worst_case}): \
             recovered {recovered:?} is neither state {ok_ops} {floor:?} \
             nor its successor {ceiling:?}"
        );

        // Clean-rebuild equivalence: reopening the crashed directory must
        // behave bit-identically (rendered protocol responses) to a fresh
        // in-memory engine over the surviving objects.
        let mut reopened = FerretService::open(&dir_b, config(), db_options())
            .expect("post-crash service open");
        let mut rebuilt = rebuild_in_memory(&recovered);
        prop_assert_eq!(reopened.engine().len(), recovered.len());
        prop_assert_eq!(
            reopened.execute_line("stat"),
            rebuilt.execute_line("stat")
        );
        prop_assert_eq!(
            reopened.execute_line("attr idx>=0"),
            rebuilt.execute_line("attr idx>=0")
        );
        for &id in recovered.keys() {
            for line in [
                format!("query id={id} k=5 mode=brute"),
                format!("query id={id} k=3"),
            ] {
                prop_assert_eq!(
                    reopened.execute_line(&line),
                    rebuilt.execute_line(&line),
                    "divergence on {}", line
                );
            }
        }
        std::fs::remove_dir_all(&dir_b).ok();
    }
}
