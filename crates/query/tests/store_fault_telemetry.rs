//! Telemetry tie-in for injected storage faults: when the metadata store
//! fails underneath the service, the failure must be observable — the
//! `ferret_store_errors_total` counter increments with the failing
//! operation's label and the series shows up in `GET /metrics`.

use std::sync::Arc;

use ferret_core::engine::EngineConfig;
use ferret_core::object::{DataObject, ObjectId};
use ferret_core::sketch::SketchParams;
use ferret_core::telemetry::MetricsRegistry;
use ferret_core::vector::FeatureVector;
use ferret_query::http::route;
use ferret_query::FerretService;
use ferret_store::vfs::{FaultPlan, FaultVfs, StdVfs};
use ferret_store::{DbOptions, Durability};
use parking_lot::RwLock;

fn config() -> EngineConfig {
    EngineConfig::basic(
        SketchParams::new(128, vec![0.0; 3], vec![1.0; 3]).unwrap(),
        7,
    )
}

fn obj(x: f32) -> DataObject {
    DataObject::single(FeatureVector::new(vec![x, x, x]).unwrap())
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ferret-faulttel-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// An injected WAL write failure during insert increments the store-error
/// counter with `op="insert"`, rolls the engine back, and the series is
/// served by the `/metrics` endpoint.
#[test]
fn injected_write_failure_counts_and_serves_in_metrics() {
    let dir = tmpdir("insert");
    // Opening writes nothing (the new log is created empty), so data
    // write #0 is the first commit's log flush.
    let fault = FaultVfs::new(Arc::new(StdVfs), FaultPlan::fail_nth_write(0));
    let mut svc = FerretService::open_with_vfs(
        Arc::new(fault.clone()),
        &dir,
        config(),
        DbOptions {
            durability: Durability::Sync,
            checkpoint_every: None,
        },
    )
    .expect("open performs no data writes");
    let registry = Arc::new(MetricsRegistry::new());
    svc.enable_telemetry(Arc::clone(&registry));

    let err = svc
        .insert(ObjectId(7), obj(0.4), None)
        .expect_err("first commit's log write is the injected failure");
    assert!(
        err.to_string().contains("injected fault"),
        "unexpected error: {err}"
    );
    assert!(fault.tripped());
    // The engine was rolled back so memory matches storage.
    assert_eq!(svc.engine().len(), 0);
    assert_eq!(
        registry.counter_value("ferret_store_errors_total", &[("op", "insert")]),
        Some(1)
    );

    let svc = Arc::new(RwLock::new(svc));
    let (status, ctype, body) = route(&svc, "/metrics");
    assert_eq!(status, "200 OK");
    assert!(ctype.starts_with("text/plain"), "{ctype}");
    assert!(
        body.contains("ferret_store_errors_total{op=\"insert\"} 1"),
        "store error series missing from /metrics:\n{body}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Flush and checkpoint failures (simulated ENOSPC) label their own
/// series; commits buffered before the failed flush never lied about
/// durability and the counters tell the operator which path failed.
#[test]
fn flush_and_checkpoint_failures_have_their_own_series() {
    let dir = tmpdir("flush");
    // Byte budget 0: every data write is ENOSPC, but opening an empty
    // store and buffering commits in memory perform none.
    let fault = FaultVfs::new(Arc::new(StdVfs), FaultPlan::with_byte_budget(0));
    let mut svc = FerretService::open_with_vfs(
        Arc::new(fault.clone()),
        &dir,
        config(),
        DbOptions {
            durability: Durability::Buffered { flush_every: 1000 },
            checkpoint_every: None,
        },
    )
    .expect("open performs no data writes");
    let registry = Arc::new(MetricsRegistry::new());
    svc.enable_telemetry(Arc::clone(&registry));

    // Commits succeed into the write buffer without touching the disk.
    svc.insert(ObjectId(1), obj(0.2), None).unwrap();
    svc.insert(ObjectId(2), obj(0.6), None).unwrap();
    assert_eq!(
        registry.counter_value("ferret_store_errors_total", &[("op", "insert")]),
        None
    );

    svc.flush().expect_err("flush must hit the byte budget");
    assert_eq!(
        registry.counter_value("ferret_store_errors_total", &[("op", "flush")]),
        Some(1)
    );
    svc.checkpoint()
        .expect_err("checkpoint's snapshot write must hit the byte budget");
    assert_eq!(
        registry.counter_value("ferret_store_errors_total", &[("op", "checkpoint")]),
        Some(1)
    );

    let svc = Arc::new(RwLock::new(svc));
    let (status, _, body) = route(&svc, "/metrics");
    assert_eq!(status, "200 OK");
    assert!(
        body.contains("ferret_store_errors_total{op=\"flush\"} 1"),
        "flush series missing:\n{body}"
    );
    assert!(
        body.contains("ferret_store_errors_total{op=\"checkpoint\"} 1"),
        "checkpoint series missing:\n{body}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
