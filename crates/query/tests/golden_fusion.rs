//! Golden fusion-ranking fixtures: byte-exact fused orderings for a
//! pinned corpus, checked into the repository.
//!
//! Fused scores feed protocol replies that clients compare across
//! processes, and the tie-break contract (score desc, id asc) is part
//! of the wire format — a drift in RRF constants, weighted
//! normalization, or sort order would silently reorder every hybrid
//! reply. Both the pure fusion functions and the service-level wiring
//! are pinned.
//!
//! To regenerate after an *intentional* ranking change:
//! `GOLDEN_REGEN=1 cargo test -p ferret-query --test golden_fusion`
//! and commit the updated fixture alongside the protocol change note.

// Dev-tool output and test fixtures are written directly; the Vfs seam
// covers production durability, not harness artifacts.
#![allow(clippy::disallowed_methods)]

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;

use ferret_attr::AttrsBuilder;
use ferret_core::engine::EngineConfig;
use ferret_core::object::{DataObject, ObjectId};
use ferret_core::sketch::SketchParams;
use ferret_core::vector::FeatureVector;
use ferret_query::{rrf_fuse, weighted_fuse, FerretService, FusedHit};

const SEED: u64 = 0x00FE_44E7;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_fusion.txt")
}

/// SplitMix64, pinned here independently of any library so the corpus
/// can never drift with a dependency.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Pinned similarity ranking: 12 ids with deterministic distances.
/// Ids 3 and 7 share a distance, so downstream fused scores collide and
/// the id-ascending tie-break is exercised.
fn pinned_sim() -> Vec<(ObjectId, f64)> {
    let mut state = SEED;
    let mut sim: Vec<(ObjectId, f64)> = (0..12u64)
        .map(|id| {
            state = mix64(state);
            let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
            (ObjectId(id), (unit * 4.0 * 1024.0).round() / 1024.0)
        })
        .collect();
    let tie = sim[3].1;
    sim[7].1 = tie;
    sim.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    sim
}

/// Pinned attribute scores: overlaps ids 4..=9 of the sim list, adds
/// ids 20..=23 that similarity never saw (attr-only hits, rendered with
/// a null distance), and repeats the score 2.0 so the attr ranking also
/// carries a tie.
fn pinned_attr() -> HashMap<ObjectId, f64> {
    let mut scores = HashMap::new();
    for id in 4..=9u64 {
        scores.insert(ObjectId(id), 1.0 + (id % 3) as f64);
    }
    for id in 20..=23u64 {
        scores.insert(ObjectId(id), 2.0);
    }
    scores
}

fn render_hits(label: &str, hits: &[FusedHit], out: &mut String) {
    writeln!(out, "# {label}").unwrap();
    for h in hits {
        match h.distance {
            Some(d) => writeln!(out, "{} {:.9} {:.6}", h.id.0, h.score, d).unwrap(),
            None => writeln!(out, "{} {:.9} -", h.id.0, h.score).unwrap(),
        }
    }
}

/// A deterministic service corpus for the end-to-end section: ten
/// points on a line, banded attributes.
fn pinned_service() -> FerretService {
    let params = SketchParams::new(96, vec![0.0; 2], vec![1.0; 2]).unwrap();
    let mut svc = FerretService::in_memory(EngineConfig::basic(params, SEED)).unwrap();
    for i in 0..10u64 {
        let x = 0.05 + 0.09 * i as f32;
        let attrs = AttrsBuilder::new()
            .keyword("band", if i.is_multiple_of(2) { "even" } else { "odd" })
            .int("idx", i as i64)
            .build();
        svc.insert(
            ObjectId(i),
            DataObject::single(FeatureVector::new(vec![x, x]).unwrap()),
            Some(attrs),
        )
        .unwrap();
    }
    svc
}

const SERVICE_QUERIES: &[&str] = &[
    "query id=0 k=6 mode=brute attr=\"band:even\" fusion=rrf",
    "query id=0 k=6 mode=brute attr=\"band:even\" fusion=rrf rrfk=5",
    "query id=0 k=6 mode=brute attr=\"band:odd OR idx>=8\" fusion=weighted fw=0.5",
    "query id=0 k=6 mode=brute attr=\"idx>=3\" fusion=weighted fw=0.9 limit=4",
    "query id=0 k=6 mode=brute attr=\"band:even\" fusion=rrf format=json",
];

fn render_fixture() -> String {
    let sim = pinned_sim();
    let attr_scores = pinned_attr();
    let attr = ferret_query::fusion::rank_attr_scores(&attr_scores);

    let mut out = String::new();
    render_hits("rrf k=60", &rrf_fuse(&sim, &attr, 60), &mut out);
    render_hits("rrf k=1", &rrf_fuse(&sim, &attr, 1), &mut out);
    render_hits(
        "weighted fw=0.5",
        &weighted_fuse(&sim, &attr, 0.5),
        &mut out,
    );
    render_hits(
        "weighted fw=0.0",
        &weighted_fuse(&sim, &attr, 0.0),
        &mut out,
    );
    render_hits(
        "weighted fw=1.0",
        &weighted_fuse(&sim, &attr, 1.0),
        &mut out,
    );

    let mut svc = pinned_service();
    for q in SERVICE_QUERIES {
        writeln!(out, "# service {q}").unwrap();
        out.push_str(&svc.execute_line(q));
    }
    out
}

#[test]
fn golden_fusion_rankings_are_stable() {
    let rendered = render_fixture();
    let path = fixture_path();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("regenerated {}", path.display());
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with GOLDEN_REGEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        golden.lines().count(),
        rendered.lines().count(),
        "fixture line count drifted"
    );
    for (i, (got, want)) in rendered.lines().zip(golden.lines()).enumerate() {
        assert_eq!(
            got, want,
            "fixture line {i} drifted — fused orderings are part of the \
             wire contract; see the module docs before regenerating"
        );
    }
}

/// Guard the fixture's coverage: the pinned inputs must keep producing
/// score ties (so the id-ascending tie-break stays pinned) and
/// attr-only hits (so the null-distance rendering stays pinned).
#[test]
fn golden_corpus_exercises_ties_and_attr_only_hits() {
    let sim = pinned_sim();
    let attr = ferret_query::fusion::rank_attr_scores(&pinned_attr());

    let mut saw_tie = false;
    let mut saw_attr_only = false;
    for hits in [rrf_fuse(&sim, &attr, 60), weighted_fuse(&sim, &attr, 0.5)] {
        for pair in hits.windows(2) {
            if pair[0].score == pair[1].score {
                saw_tie = true;
                assert!(
                    pair[0].id < pair[1].id,
                    "tied scores must order by ascending id"
                );
            }
        }
        saw_attr_only |= hits.iter().any(|h| h.distance.is_none());
    }
    assert!(
        saw_tie,
        "pinned corpus no longer produces a fused-score tie"
    );
    assert!(
        saw_attr_only,
        "pinned corpus no longer produces an attr-only hit"
    );
}
