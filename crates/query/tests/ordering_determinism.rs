//! Determinism guards for the relaxed atomic orderings.
//!
//! This PR downgraded several `SeqCst` sites (see the `// ordering:`
//! comments at each atomic): the cache epoch to `Acquire`/`AcqRel` and
//! the server/http stop flags to `Relaxed`. These tests pin the two
//! properties those downgrades must preserve: an epoch observed by a
//! reader is never newer than the entries that reader can hit, and the
//! stop handshake still terminates every worker and accept loop.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use ferret_core::engine::EngineConfig;
use ferret_core::object::{DataObject, ObjectId};
use ferret_core::sketch::SketchParams;
use ferret_core::vector::FeatureVector;
use ferret_query::protocol::Response;
use ferret_query::{Client, FerretService, HttpServer, ResultCache, Server};
use parking_lot::RwLock;

fn resp(id: u64) -> Response {
    Response::Results(vec![(ObjectId(id), 0.5)])
}

/// Readers race `epoch()` + `lookup()` against a writer doing
/// `bump_epoch()` + `store()`. The writer stores `resp(i)` right after
/// the i-th bump, so every entry's payload id equals the epoch it was
/// stamped with — a reader that first observes epoch `e` and then hits
/// must therefore see a payload id ≥ `e`: with the Acquire load pairing
/// with the AcqRel bump, a hit can never surface an entry from an epoch
/// older than one the reader already proved was current.
#[test]
fn cache_hits_are_never_older_than_an_observed_epoch() {
    let cache = Arc::new(ResultCache::new(8));
    let stop = Arc::new(AtomicBool::new(false));
    const BUMPS: u64 = 20_000;

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let e = cache.epoch();
                    assert!(e >= last_epoch, "epoch went backwards: {last_epoch} -> {e}");
                    last_epoch = e;
                    if let Some(Response::Results(hits)) = cache.lookup("k") {
                        let id = hits[0].0 .0;
                        assert!(
                            id >= e,
                            "hit from epoch {id} after having observed epoch {e}"
                        );
                        assert!(id <= BUMPS);
                    }
                }
            })
        })
        .collect();

    for i in 1..=BUMPS {
        cache.bump_epoch();
        cache.store("k".into(), resp(i));
    }
    stop.store(true, Ordering::Relaxed);
    for reader in readers {
        reader.join().expect("reader must not panic");
    }
    assert_eq!(cache.epoch(), BUMPS);
    // After the writer finishes, the final entry is current and must hit.
    assert_eq!(cache.lookup("k"), Some(resp(BUMPS)));
}

fn tiny_service() -> FerretService {
    let params = SketchParams::new(64, vec![0.0; 2], vec![1.0; 2]).expect("valid params");
    let mut svc = FerretService::in_memory(EngineConfig::basic(params, 0xFE44E7)).unwrap();
    let objects = (0..4u64)
        .map(|id| {
            let v = FeatureVector::from_components(vec![id as f32 * 0.1, 0.5]);
            let obj = DataObject::new(vec![(v, 1.0)]).expect("valid object");
            (ObjectId(id), obj, None)
        })
        .collect();
    svc.insert_batch(objects).expect("insert");
    svc
}

/// The TCP and HTTP servers' stop flags are `Relaxed`: the `join` in
/// `stop()` is the real synchronization point. Repeatedly starting,
/// exercising, and stopping both surfaces proves the handshake cannot
/// hang — under a broken ordering this test wedges instead of failing.
#[test]
fn server_stop_handshake_terminates_under_relaxed_flags() {
    for round in 0..5 {
        let service = Arc::new(RwLock::new(tiny_service()));
        let tcp = Server::start(Arc::clone(&service), "127.0.0.1:0").expect("tcp server");
        let http = HttpServer::start(Arc::clone(&service), "127.0.0.1:0").expect("http server");

        let mut client = Client::connect(tcp.addr()).expect("connect");
        let reply = client.send("stat").expect("stat");
        assert!(!reply.is_empty(), "round {round}: empty reply");

        // Stop while a client connection is still open: the drain path
        // must still terminate.
        tcp.stop();
        http.stop();
    }
}
