//! Property-based robustness tests for the command protocol: arbitrary
//! input must never panic the parser or the service, and valid commands
//! must roundtrip through a live service.

use proptest::prelude::*;

use ferret_core::engine::EngineConfig;
use ferret_core::object::{DataObject, ObjectId};
use ferret_core::sketch::SketchParams;
use ferret_core::vector::FeatureVector;
use ferret_query::{parse_command, FerretService};

fn service(n: u64) -> FerretService {
    let config = EngineConfig::basic(
        SketchParams::new(64, vec![0.0; 2], vec![1.0; 2]).unwrap(),
        5,
    );
    let mut svc = FerretService::in_memory(config).unwrap();
    for i in 0..n {
        let x = (i as f32 + 0.5) / n as f32;
        svc.insert(
            ObjectId(i),
            DataObject::single(FeatureVector::new(vec![x, 1.0 - x]).unwrap()),
            Some(
                ferret_attr::AttrsBuilder::new()
                    .int("idx", i as i64)
                    .keyword("tag", "t")
                    .build(),
            ),
        )
        .unwrap();
    }
    svc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics(input in ".{0,120}") {
        let _ = parse_command(&input);
    }

    /// The full service pipeline never panics on arbitrary lines and always
    /// answers with an OK or ERR status line.
    #[test]
    fn service_always_answers(input in ".{0,120}") {
        let mut svc = service(4);
        let reply = svc.execute_line(&input);
        prop_assert!(
            reply.starts_with("OK") || reply.starts_with("ERR"),
            "unexpected reply {reply:?}"
        );
    }

    /// Well-formed queries with random parameters always succeed against a
    /// populated service.
    #[test]
    fn valid_queries_succeed(
        seed in 0u64..8,
        k in 1usize..20,
        mode_pick in 0usize..3,
        r in 1usize..4,
        cand in 1usize..60,
    ) {
        let mode = ["brute", "sketch", "filter"][mode_pick];
        let mut svc = service(8);
        let line = format!("query id={seed} k={k} mode={mode} r={r} cand={cand}");
        let reply = svc.execute_line(&line);
        prop_assert!(reply.starts_with("OK"), "{line} -> {reply}");
        // The seed object itself must appear among the results (it has
        // distance zero to itself).
        let ids: Vec<u64> = reply
            .lines()
            .skip(1)
            .filter_map(|l| l.split_whitespace().next())
            .filter_map(|t| t.parse().ok())
            .collect();
        prop_assert!(ids.contains(&seed), "{line} -> {reply}");
    }

    /// Attribute range queries match the expected id subsets.
    #[test]
    fn attr_ranges_are_consistent(lo in 0i64..8, hi in 0i64..8) {
        let mut svc = service(8);
        let line = format!("attr idx>={lo} AND idx<={hi}");
        let reply = svc.execute_line(&line);
        prop_assert!(reply.starts_with("OK"), "{reply}");
        let count: usize = reply
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("OK "))
            .and_then(|n| n.parse().ok())
            .unwrap();
        let expected = if hi >= lo { (hi - lo + 1) as usize } else { 0 };
        prop_assert_eq!(count, expected.min(8), "{}", line);
    }
}
