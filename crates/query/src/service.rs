//! The Ferret search service: core engine + attribute search + persistent
//! metadata, behind a single command-execution interface.
//!
//! This is the composition point of the toolkit: feature vectors,
//! attributes, and object mappings are stored transactionally (paper
//! §4.1.3 — "all the updates to the metadata associated with the same
//! object are protected by database transactions"), the sketch database is
//! rebuilt deterministically on open, and attribute queries can restrict
//! similarity searches (§4.1.2).

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use ferret_attr::{AttrStore, Attributes};
use ferret_core::codec::{decode_object, encode_object};
use ferret_core::engine::{
    similarity_from_distance, EngineBuilder, EngineConfig, FusionMode, QueryOptions, QueryResponse,
    SearchEngine,
};
use ferret_core::error::CoreError;
use ferret_core::object::{DataObject, ObjectId};
use ferret_core::parallel::Parallelism;
use ferret_core::segment::IndexLayout;
use ferret_core::telemetry::{MetricsRegistry, QueryTrace, Unit, SIZE_BUCKETS};
use ferret_store::{Database, DbOptions, SegmentStore, StoreError, Vfs};

use crate::cache::ResultCache;
use crate::fusion::{rank_attr_scores, rrf_fuse, weighted_fuse, FusedHit};
use crate::protocol::{Command, ProtocolError};

pub use crate::protocol::Response;

/// The table original feature-vector metadata lives in.
pub const FEATURES_TABLE: &str = "features";

/// Errors surfaced by the service.
#[derive(Debug)]
pub enum ServiceError {
    /// Engine-level error.
    Core(CoreError),
    /// Storage-level error.
    Store(StoreError),
    /// Protocol or attribute-expression error.
    BadRequest(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Core(e) => write!(f, "{e}"),
            ServiceError::Store(e) => write!(f, "{e}"),
            ServiceError::BadRequest(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Core(e)
    }
}

impl From<StoreError> for ServiceError {
    fn from(e: StoreError) -> Self {
        ServiceError::Store(e)
    }
}

impl From<ProtocolError> for ServiceError {
    fn from(e: ProtocolError) -> Self {
        ServiceError::BadRequest(e.to_string())
    }
}

/// How many recent query traces the service retains for `/trace` by
/// default (configurable through [`ServiceBuilder::trace_capacity`]).
pub const DEFAULT_TRACE_CAPACITY: usize = 16;

/// The bounded ring of recent query traces, keyed by a monotonically
/// increasing trace id. Lives behind a [`Mutex`] inside the service so
/// the read-only query path (`&self`) can record traces concurrently.
struct TraceRing {
    traces: VecDeque<(u64, QueryTrace)>,
    next_id: u64,
    capacity: usize,
}

impl TraceRing {
    fn new(capacity: usize) -> Self {
        Self {
            traces: VecDeque::new(),
            next_id: 0,
            capacity,
        }
    }

    fn record(&mut self, trace: QueryTrace) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        if self.capacity == 0 {
            return id;
        }
        if self.traces.len() == self.capacity {
            self.traces.pop_front();
        }
        self.traces.push_back((id, trace));
        id
    }
}

/// Configures and builds a [`FerretService`]: engine configuration plus
/// every optional knob (persistence options, VFS, telemetry registry,
/// parallelism, trace-ring capacity) in one place.
///
/// This is the single construction surface; `FerretService::{in_memory,
/// open, open_with_vfs}` are thin wrappers over it.
///
/// ```
/// use ferret_core::engine::EngineConfig;
/// use ferret_core::sketch::SketchParams;
/// use ferret_query::ServiceBuilder;
///
/// let config = EngineConfig::basic(
///     SketchParams::new(64, vec![0.0; 2], vec![1.0; 2]).unwrap(), 1);
/// let service = ServiceBuilder::new(config).build_in_memory().unwrap();
/// assert!(service.engine().is_empty());
/// ```
pub struct ServiceBuilder {
    config: EngineConfig,
    db_options: DbOptions,
    vfs: Option<Arc<dyn Vfs>>,
    telemetry: Option<Arc<MetricsRegistry>>,
    parallelism: Option<Parallelism>,
    trace_capacity: usize,
    cache_capacity: usize,
}

impl ServiceBuilder {
    /// Starts a builder from an engine configuration.
    pub fn new(config: EngineConfig) -> Self {
        Self {
            config,
            db_options: DbOptions::default(),
            vfs: None,
            telemetry: None,
            parallelism: None,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            cache_capacity: 0,
        }
    }

    /// Metadata-store options used when the service is opened
    /// persistently (ignored by [`ServiceBuilder::build_in_memory`]).
    pub fn db_options(mut self, options: DbOptions) -> Self {
        self.db_options = options;
        self
    }

    /// Routes all metadata I/O through an explicit [`Vfs`] — this is how
    /// fault-injection tests fail or tear the service's storage.
    pub fn vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = Some(vfs);
        self
    }

    /// Enables telemetry from the start: engine and service metrics are
    /// recorded into `registry` and recent query traces retained.
    pub fn telemetry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// Overrides the engine parallelism from
    /// [`EngineConfig::parallelism`].
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = Some(parallelism);
        self
    }

    /// How many recent query traces to retain for `/trace` (0 disables
    /// retention; ids still advance).
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// How many query replies the epoch-keyed result cache retains
    /// (0 — the default — disables caching entirely).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    fn finish(self, engine: SearchEngine, attrs: AttrStore, db: Option<Database>) -> FerretService {
        let mut svc = FerretService {
            engine,
            attrs,
            db,
            telemetry: None,
            traces: Mutex::new(TraceRing::new(self.trace_capacity)),
            cache: ResultCache::new(self.cache_capacity),
        };
        if let Some(p) = self.parallelism {
            svc.engine.set_parallelism(p);
        }
        if let Some(reg) = self.telemetry {
            svc.enable_telemetry(reg);
        }
        svc
    }

    /// Builds an in-memory service (no persistence).
    pub fn build_in_memory(self) -> Result<FerretService, ServiceError> {
        let engine = EngineBuilder::from_config(self.config.clone()).build()?;
        Ok(self.finish(engine, AttrStore::new(), None))
    }

    /// Opens (or creates) a persistent service in `dir`, recovering all
    /// objects and attributes and rebuilding sketches deterministically.
    /// Uses the configured [`Vfs`] when one was set.
    pub fn open(self, dir: &std::path::Path) -> Result<FerretService, ServiceError> {
        let db = match &self.vfs {
            Some(vfs) => Database::open_with_vfs(Arc::clone(vfs), dir, self.db_options)?,
            None => Database::open_with(dir, self.db_options)?,
        };
        let mut engine = EngineBuilder::from_config(self.config.clone()).build()?;
        let mut recovered = Vec::new();
        for (key, value) in db.iter_table(FEATURES_TABLE) {
            let id = match <[u8; 8]>::try_from(key) {
                Ok(raw) => ObjectId(u64::from_le_bytes(raw)),
                Err(_) => {
                    return Err(ServiceError::Store(StoreError::Corrupt(
                        "feature key not 8 bytes".into(),
                    )));
                }
            };
            let obj = decode_object(value)?;
            recovered.push((id, obj));
        }
        // Sketch construction dominates recovery time, so the whole recovered
        // set goes through the batch-parallel insert path.
        engine.insert_batch(recovered)?;
        if engine.index_layout() == IndexLayout::Segmented {
            // Segmented engines persist sealed segments alongside the
            // metadata store, through the same VFS so fault-injection
            // tests cover the segment manifest-swap protocol too.
            let vfs: Arc<dyn Vfs> = match &self.vfs {
                Some(vfs) => Arc::clone(vfs),
                None => Arc::new(ferret_store::StdVfs),
            };
            let store = SegmentStore::open(vfs, &dir.join("segments"))?;
            engine.attach_segment_persistence(store)?;
        }
        let attrs = AttrStore::load(&db)?;
        Ok(self.finish(engine, attrs, Some(db)))
    }
}

/// The composed search service.
pub struct FerretService {
    engine: SearchEngine,
    attrs: AttrStore,
    db: Option<Database>,
    telemetry: Option<Arc<MetricsRegistry>>,
    /// Recent query traces. Behind a mutex so the `&self` read path can
    /// record traces from many threads at once.
    traces: Mutex<TraceRing>,
    /// Epoch-keyed result cache for protocol queries; every index
    /// mutation bumps its epoch so hits are never stale.
    cache: ResultCache,
}

impl FerretService {
    /// Starts a [`ServiceBuilder`] from an engine configuration.
    pub fn builder(config: EngineConfig) -> ServiceBuilder {
        ServiceBuilder::new(config)
    }

    /// Creates an in-memory service (no persistence). Equivalent to
    /// `ServiceBuilder::new(config).build_in_memory()`.
    pub fn in_memory(config: EngineConfig) -> Result<Self, ServiceError> {
        ServiceBuilder::new(config).build_in_memory()
    }

    /// Opens (or creates) a persistent service in `dir`, recovering all
    /// objects and attributes and rebuilding sketches deterministically.
    /// Equivalent to `ServiceBuilder::new(config).db_options(db_options)
    /// .open(dir)`.
    pub fn open(
        dir: &std::path::Path,
        config: EngineConfig,
        db_options: DbOptions,
    ) -> Result<Self, ServiceError> {
        ServiceBuilder::new(config).db_options(db_options).open(dir)
    }

    /// [`FerretService::open`] over an explicit [`ferret_store::Vfs`] —
    /// lets fault-injection tests fail or tear the service's metadata I/O.
    /// Equivalent to `ServiceBuilder::new(config).vfs(vfs)
    /// .db_options(db_options).open(dir)`.
    pub fn open_with_vfs(
        vfs: Arc<dyn Vfs>,
        dir: &std::path::Path,
        config: EngineConfig,
        db_options: DbOptions,
    ) -> Result<Self, ServiceError> {
        ServiceBuilder::new(config)
            .vfs(vfs)
            .db_options(db_options)
            .open(dir)
    }

    /// Enables telemetry: the engine records per-stage metrics and
    /// traces into `registry`, the service records per-command and
    /// storage metrics, and recent query traces are retained for the
    /// web interface's `/trace` endpoint.
    pub fn enable_telemetry(&mut self, registry: Arc<MetricsRegistry>) {
        // Every documented family appears on /metrics from the first
        // scrape, not just the ones whose code paths have already run.
        registry.register_catalog();
        self.engine.set_telemetry(Some(Arc::clone(&registry)));
        self.cache.set_telemetry(Some(Arc::clone(&registry)));
        self.telemetry = Some(registry);
    }

    /// Disables telemetry collection (existing metrics are dropped with
    /// the registry when the last handle goes away).
    pub fn disable_telemetry(&mut self) {
        self.engine.set_telemetry(None);
        self.cache.set_telemetry(None);
        self.telemetry = None;
    }

    /// The result cache's current index epoch (advances on every
    /// mutation; useful for asserting invalidation in tests).
    pub fn cache_epoch(&self) -> u64 {
        self.cache.epoch()
    }

    /// The service's metrics registry, if telemetry is enabled.
    pub fn telemetry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.telemetry.as_ref()
    }

    /// The most recent retained query trace, with its id.
    pub fn last_trace(&self) -> Option<(u64, QueryTrace)> {
        let ring = self.traces.lock();
        ring.traces.back().map(|(id, t)| (*id, t.clone()))
    }

    /// A retained query trace by id (ids come from [`Self::last_trace`];
    /// the ring keeps the most recent [`DEFAULT_TRACE_CAPACITY`] unless
    /// configured otherwise).
    pub fn trace(&self, id: u64) -> Option<QueryTrace> {
        let ring = self.traces.lock();
        ring.traces
            .iter()
            .find(|(tid, _)| *tid == id)
            .map(|(_, t)| t.clone())
    }

    fn record_trace(&self, trace: QueryTrace) -> u64 {
        self.traces.lock().record(trace)
    }

    fn record_store_error(&self, op: &str) {
        if let Some(reg) = &self.telemetry {
            reg.inc_counter(
                "ferret_store_errors_total",
                "Metadata store / WAL operation failures.",
                &[("op", op)],
                1,
            );
        }
    }

    /// The underlying engine (read access).
    pub fn engine(&self) -> &SearchEngine {
        &self.engine
    }

    /// The attribute store (read access).
    pub fn attrs(&self) -> &AttrStore {
        &self.attrs
    }

    /// The backing metadata database, if persistent.
    pub fn db(&self) -> Option<&Database> {
        self.db.as_ref()
    }

    /// Mutable access to the backing metadata database, for callers that
    /// persist auxiliary state (e.g. the acquisition manifest) alongside
    /// the service's own tables — through the same VFS-routed store, so
    /// crash-consistency covers that state too.
    pub fn db_mut(&mut self) -> Option<&mut Database> {
        self.db.as_mut()
    }

    /// The engine's parallelism setting.
    pub fn parallelism(&self) -> Parallelism {
        self.engine.parallelism()
    }

    /// Changes the engine's parallelism setting for subsequent queries,
    /// batch inserts, and rebuilds.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.engine.set_parallelism(parallelism);
    }

    /// Inserts a batch of objects (with optional attributes) in one go.
    ///
    /// Sketches are built with the engine's batch-parallel path and the
    /// whole batch is validated up front, so either every object is
    /// inserted or none is. When persistent, all metadata updates commit in
    /// one transaction.
    pub fn insert_batch(
        &mut self,
        items: Vec<(ObjectId, DataObject, Option<Attributes>)>,
    ) -> Result<(), ServiceError> {
        // Invalidate cached replies before any state changes; bumping on
        // a failed insert merely over-invalidates, which is always safe.
        self.cache.bump_epoch();
        // Encode attribute payloads before mutating anything so an encoding
        // failure leaves both engine and storage untouched.
        let mut encoded_attrs = Vec::with_capacity(items.len());
        for (_, _, attributes) in &items {
            encoded_attrs.push(match attributes {
                Some(attrs) => Some(ferret_attr::store::encode_attributes(attrs)?),
                None => None,
            });
        }
        let objects: Vec<(ObjectId, DataObject)> = items
            .iter()
            .map(|(id, obj, _)| (*id, obj.clone()))
            .collect();
        self.engine.insert_batch(objects)?;
        if let Some(db) = self.db.as_mut() {
            let mut txn = db.begin();
            for ((id, object, _), encoded) in items.iter().zip(&encoded_attrs) {
                txn.put(FEATURES_TABLE, &id.0.to_le_bytes(), &encode_object(object));
                if let Some(bytes) = encoded {
                    txn.put(ferret_attr::ATTR_TABLE, &id.0.to_le_bytes(), bytes);
                }
            }
            if let Err(e) = txn.commit() {
                // Roll the engine back so memory matches storage.
                for (id, _, _) in &items {
                    self.engine.remove(*id).ok();
                }
                self.record_store_error("insert_batch");
                return Err(e.into());
            }
        }
        if let Some(reg) = &self.telemetry {
            reg.inc_counter(
                "ferret_inserts_total",
                "Objects inserted.",
                &[],
                items.len() as u64,
            );
            reg.histogram(
                "ferret_insert_batch_size",
                "Objects per insert batch.",
                &[],
                &SIZE_BUCKETS,
                Unit::Raw,
            )
            .observe(items.len() as u64);
        }
        for (id, _, attributes) in items {
            if let Some(attrs) = attributes {
                self.attrs.index_mut().insert(id, attrs);
            }
        }
        Ok(())
    }

    /// Inserts an object with optional attributes; all metadata updates for
    /// the object commit in one transaction when persistent.
    pub fn insert(
        &mut self,
        id: ObjectId,
        object: DataObject,
        attributes: Option<Attributes>,
    ) -> Result<(), ServiceError> {
        self.cache.bump_epoch();
        self.engine.insert(id, object.clone())?;
        if let Some(db) = self.db.as_mut() {
            let mut txn = db.begin();
            txn.put(FEATURES_TABLE, &id.0.to_le_bytes(), &encode_object(&object));
            if let Some(attrs) = &attributes {
                txn.put(
                    ferret_attr::ATTR_TABLE,
                    &id.0.to_le_bytes(),
                    &ferret_attr::store::encode_attributes(attrs)?,
                );
            }
            if let Err(e) = txn.commit() {
                // Roll the engine back so memory matches storage.
                self.engine.remove(id).ok();
                self.record_store_error("insert");
                return Err(e.into());
            }
        }
        if let Some(reg) = &self.telemetry {
            reg.inc_counter("ferret_inserts_total", "Objects inserted.", &[], 1);
        }
        if let Some(attrs) = attributes {
            // Persistence (when durable) happened in the object transaction
            // above; here only the in-memory index is updated.
            self.attrs.index_mut().insert(id, attrs);
        }
        Ok(())
    }

    /// Removes an object and its attributes.
    pub fn remove(&mut self, id: ObjectId) -> Result<bool, ServiceError> {
        self.cache.bump_epoch();
        let present = self.engine.remove(id)?;
        if let Some(db) = self.db.as_mut() {
            let mut txn = db.begin();
            txn.delete(FEATURES_TABLE, &id.0.to_le_bytes());
            txn.delete(ferret_attr::ATTR_TABLE, &id.0.to_le_bytes());
            if let Err(e) = txn.commit() {
                self.record_store_error("remove");
                return Err(e.into());
            }
        }
        self.attrs.index_mut().remove(id);
        Ok(present)
    }

    /// Re-sketches the whole index with parameters derived from the stored
    /// data (per-dimension min/max), keeping `nbits`/`xor_folds`. No-op on
    /// an empty index. The paper's evaluation tool exists exactly for this
    /// tuning loop (§4.3).
    pub fn retune_sketches(
        &mut self,
        nbits: usize,
        xor_folds: usize,
        seed: u64,
    ) -> Result<(), ServiceError> {
        self.cache.bump_epoch();
        if self.engine.is_empty() {
            return Ok(());
        }
        let params = self.engine.derive_sketch_params(nbits, xor_folds)?;
        self.engine = self.engine.rebuild(params, seed)?;
        Ok(())
    }

    /// Flushes buffered commits (persistent services only).
    pub fn flush(&mut self) -> Result<(), ServiceError> {
        if let Some(db) = self.db.as_mut() {
            if let Err(e) = db.flush() {
                self.record_store_error("flush");
                return Err(e.into());
            }
        }
        Ok(())
    }

    /// Applies finished background compactions and schedules any due
    /// segment maintenance, without blocking on it. A no-op for
    /// monolithic engines. Results are bit-identical across compactions,
    /// so the result-cache epoch is deliberately left alone — cached
    /// replies stay valid.
    pub fn maintain(&mut self) -> Result<(), ServiceError> {
        Ok(self.engine.maintain()?)
    }

    /// Runs segment compaction to quiescence inline (monolithic engines
    /// rebuild their index stop-the-world). Epoch-neutral for the result
    /// cache: compaction never changes query results.
    pub fn compact(&mut self) -> Result<(), ServiceError> {
        Ok(self.engine.compact()?)
    }

    /// Checkpoints the metadata store (persistent services only).
    pub fn checkpoint(&mut self) -> Result<(), ServiceError> {
        if let Some(db) = self.db.as_mut() {
            if let Err(e) = db.checkpoint() {
                self.record_store_error("checkpoint");
                return Err(e.into());
            }
        }
        Ok(())
    }

    /// Runs a similarity query seeded by a stored object, optionally
    /// restricted by an attribute expression.
    pub fn query(
        &self,
        seed: ObjectId,
        mut options: QueryOptions,
        attr_expr: Option<&str>,
    ) -> Result<QueryResponse, ServiceError> {
        if let Some(expr) = attr_expr {
            let hits: HashSet<ObjectId> = self
                .attrs
                .search_str(expr)
                .map_err(|e| ServiceError::BadRequest(e.to_string()))?;
            options.restrict = Some(hits);
        }
        Ok(self.engine.query_by_id(seed, &options)?)
    }

    fn record_command(&self, command: &Command, ok: bool) {
        if let Some(reg) = &self.telemetry {
            let name = match command {
                Command::Query { .. } => "query",
                Command::Attr { .. } => "attr",
                Command::Delete { .. } => "delete",
                Command::Stat => "stat",
                Command::Help => "help",
                Command::Quit => "quit",
            };
            let outcome = if ok { "ok" } else { "error" };
            reg.inc_counter(
                "ferret_commands_total",
                "Protocol commands executed, by command and outcome.",
                &[("command", name), ("outcome", outcome)],
                1,
            );
        }
    }

    /// Executes one parsed protocol command. This typed entry point is
    /// the documented public surface: parse with
    /// [`crate::protocol::parse_command`], execute here, render with
    /// [`crate::protocol::render_response`].
    ///
    /// Read commands ([`Command::is_read`]) are delegated to
    /// [`FerretService::execute_read`] and never mutate the service;
    /// callers holding only a shared reference can invoke that method
    /// directly (this is what lets the server run N queries on N
    /// connections concurrently under `RwLock::read`).
    pub fn execute(&mut self, command: &Command) -> Result<Response, ServiceError> {
        if command.is_read() {
            return self.execute_read(command);
        }
        let result = self.execute_write_inner(command);
        self.record_command(command, result.is_ok());
        result
    }

    /// Executes a read-only protocol command through a shared reference.
    ///
    /// Rejects write commands with a `BadRequest` error — the server's
    /// read/write classification ([`Command::is_read`]) must route those
    /// through [`FerretService::execute`] under an exclusive lock.
    pub fn execute_read(&self, command: &Command) -> Result<Response, ServiceError> {
        let result = self.execute_read_inner(command);
        self.record_command(command, result.is_ok());
        result
    }

    /// Executes a similarity query with fusion ranking: the similarity
    /// pool (top `k`, unrestricted) is blended with the attribute
    /// ranking of `attr_expr` under the requested merge rule, then the
    /// query shape (min-similarity, limit) is applied to the fused
    /// list. `min_similarity` constrains the *similarity* component, so
    /// attribute-only hits (no distance) are dropped when it is set.
    /// `options` describes the similarity pool query only.
    fn query_fused(
        &self,
        req: &FusedRequest<'_>,
        options: QueryOptions,
    ) -> Result<Vec<FusedHit>, ServiceError> {
        let scored = self
            .attrs
            .search_scored_str(req.attr_expr)
            .map_err(|e| ServiceError::BadRequest(e.to_string()))?;
        let attr_rank = rank_attr_scores(&scored);
        let resp = self.engine.query_by_id(req.id, &options)?;
        if let Some(trace) = resp.trace {
            self.record_trace(trace);
        }
        let sim: Vec<(ObjectId, f64)> = resp.results.iter().map(|r| (r.id, r.distance)).collect();
        let (mut hits, mode_label) = match req.fusion {
            FusionMode::Rrf { k } => (rrf_fuse(&sim, &attr_rank, k), "rrf"),
            FusionMode::Weighted { attr_weight } => {
                (weighted_fuse(&sim, &attr_rank, attr_weight), "weighted")
            }
            FusionMode::None => {
                return Err(ServiceError::BadRequest(
                    "fusion mode required on the fused path".into(),
                ))
            }
        };
        if let Some(ms) = req.min_similarity {
            hits.retain(|h| {
                h.distance
                    .is_some_and(|d| similarity_from_distance(d) >= ms)
            });
        }
        hits.truncate(req.limit.unwrap_or(req.k));
        if let Some(reg) = &self.telemetry {
            reg.inc_counter(
                "ferret_fusion_queries_total",
                "Hybrid fusion-ranked queries, by merge rule.",
                &[("mode", mode_label)],
                1,
            );
        }
        Ok(hits)
    }

    fn execute_read_inner(&self, command: &Command) -> Result<Response, ServiceError> {
        match command {
            Command::Query {
                id,
                k,
                mode,
                filter,
                attr,
                weights,
                fusion,
                min_similarity,
                limit,
                json: _,
            } => {
                // The cache key covers every parameter that affects the
                // response value (the output format only affects its
                // rendering). A hit skips execution — and therefore
                // trace recording — entirely.
                let key = self.cache.enabled().then(|| query_cache_key(command));
                if let Some(key) = &key {
                    if let Some(cached) = self.cache.lookup(key) {
                        return Ok(cached);
                    }
                }
                let mut options = QueryOptions::default()
                    .with_k(*k)
                    .with_mode(*mode)
                    .with_filter(filter.clone());
                options.weight_override = weights.clone();
                let resp = if *fusion == FusionMode::None {
                    options.min_similarity = *min_similarity;
                    options.limit = *limit;
                    let resp = self.query(*id, options, attr.as_deref())?;
                    if let Some(trace) = resp.trace {
                        self.record_trace(trace);
                    }
                    Response::Results(resp.results.iter().map(|r| (r.id, r.distance)).collect())
                } else {
                    let attr_expr = attr.as_deref().ok_or_else(|| {
                        ServiceError::BadRequest("fusion requires an attr expression".into())
                    })?;
                    Response::Fused(self.query_fused(
                        &FusedRequest {
                            id: *id,
                            k: *k,
                            attr_expr,
                            fusion: *fusion,
                            min_similarity: *min_similarity,
                            limit: *limit,
                        },
                        options,
                    )?)
                };
                if let Some(key) = key {
                    self.cache.store(key, resp.clone());
                }
                Ok(resp)
            }
            Command::Attr { expression } => {
                let mut hits: Vec<ObjectId> = self
                    .attrs
                    .search_str(expression)
                    .map_err(|e| ServiceError::BadRequest(e.to_string()))?
                    .into_iter()
                    .collect();
                hits.sort();
                Ok(Response::Ids(hits))
            }
            Command::Stat => {
                let fp = self.engine.metadata_footprint();
                let st = self.engine.storage_stats();
                Ok(Response::Stat {
                    objects: self.engine.len(),
                    segments: fp.segments,
                    sketch_bytes: fp.sketch_bytes,
                    feature_bytes: fp.feature_vector_bytes,
                    index_bytes: self.engine.filter_index_bytes(),
                    index_segments: st.sealed_segments,
                    memtable_objects: st.memtable_objects,
                })
            }
            Command::Help => Ok(Response::Help),
            Command::Quit => Ok(Response::Bye),
            Command::Delete { .. } => Err(ServiceError::BadRequest(
                "write command on the read-only path".into(),
            )),
        }
    }

    fn execute_write_inner(&mut self, command: &Command) -> Result<Response, ServiceError> {
        match command {
            Command::Delete { id } => {
                if self.remove(*id)? {
                    Ok(Response::Ok)
                } else {
                    Err(ServiceError::BadRequest(format!("unknown object {}", id.0)))
                }
            }
            read_only => self.execute_read_inner(read_only),
        }
    }

    /// Parses and executes one protocol line, rendering the response (or
    /// an `ERR` line) in the command's requested format: parse →
    /// [`FerretService::execute`] → [`crate::protocol::render_reply`].
    pub fn execute_line(&mut self, line: &str) -> String {
        match crate::protocol::parse_command(line) {
            Ok(cmd) => match self.execute(&cmd) {
                Ok(resp) => crate::protocol::render_reply(&cmd, &resp),
                Err(e) => crate::protocol::render_error(&e),
            },
            Err(e) => crate::protocol::render_error(&e),
        }
    }
}

/// The fused half of a hybrid query: everything `query_fused` needs
/// beyond the similarity-pool options.
struct FusedRequest<'a> {
    id: ObjectId,
    k: usize,
    attr_expr: &'a str,
    fusion: FusionMode,
    min_similarity: Option<f64>,
    limit: Option<usize>,
}

/// The normalized cache key of a query command: every parameter that
/// determines the response *value*. The output format is deliberately
/// excluded — `format=text` and `format=json` share one cached entry.
fn query_cache_key(command: &Command) -> String {
    let Command::Query {
        id,
        k,
        mode,
        filter,
        attr,
        weights,
        fusion,
        min_similarity,
        limit,
        json: _,
    } = command
    else {
        unreachable!("cache keys exist only for queries");
    };
    format!(
        "id={} k={k} mode={mode:?} filter={filter:?} attr={attr:?} weights={weights:?} \
         fusion={fusion:?} minsim={min_similarity:?} limit={limit:?}",
        id.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferret_attr::AttrsBuilder;
    use ferret_core::sketch::SketchParams;
    use ferret_core::vector::FeatureVector;
    use ferret_store::Durability;

    fn config() -> EngineConfig {
        EngineConfig::basic(
            SketchParams::new(128, vec![0.0; 3], vec![1.0; 3]).unwrap(),
            7,
        )
    }

    fn obj(x: f32) -> DataObject {
        DataObject::single(FeatureVector::new(vec![x, x, x]).unwrap())
    }

    fn populated() -> FerretService {
        let mut svc = FerretService::in_memory(config()).unwrap();
        for i in 0..6u64 {
            let attrs = AttrsBuilder::new()
                .keyword("group", if i < 3 { "low" } else { "high" })
                .int("idx", i as i64)
                .build();
            svc.insert(ObjectId(i), obj(0.1 + 0.15 * i as f32), Some(attrs))
                .unwrap();
        }
        svc
    }

    #[test]
    fn query_via_protocol() {
        let mut svc = populated();
        let out = svc.execute_line("query id=0 k=2 mode=brute");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "OK 2");
        assert!(lines[1].starts_with("0 "), "self first: {out}");
        assert!(lines[2].starts_with("1 "), "nearest second: {out}");
    }

    #[test]
    fn attr_restricted_query() {
        let mut svc = populated();
        // Restrict to group=high (ids 3,4,5): nearest to 0 is then 3.
        let out = svc.execute_line("query id=0 k=1 mode=brute attr=\"group:high\"");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "OK 1");
        assert!(lines[1].starts_with("3 "), "{out}");
    }

    #[test]
    fn attr_only_search() {
        let mut svc = populated();
        let out = svc.execute_line("attr group:low");
        assert_eq!(out.lines().next().unwrap(), "OK 3");
        let out = svc.execute_line("attr idx>=4");
        assert_eq!(out.lines().next().unwrap(), "OK 2");
    }

    #[test]
    fn stat_help_quit_delete() {
        let mut svc = populated();
        let out = svc.execute_line("stat");
        assert!(out.contains("objects 6"), "{out}");
        assert!(svc.execute_line("help").contains("query id=<n>"));
        assert_eq!(svc.execute_line("quit"), "OK bye\n");
        assert_eq!(svc.execute_line("delete id=5"), "OK\n");
        assert!(svc.execute_line("delete id=5").starts_with("ERR"));
        let out = svc.execute_line("stat");
        assert!(out.contains("objects 5"), "{out}");
    }

    #[test]
    fn errors_render_as_err_lines() {
        let mut svc = populated();
        assert!(svc.execute_line("nonsense").starts_with("ERR"));
        assert!(svc.execute_line("query id=99").starts_with("ERR"));
        assert!(svc
            .execute_line("query id=0 attr=\"((\"")
            .starts_with("ERR"));
    }

    #[test]
    fn persistence_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ferret-svc-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let db_opts = DbOptions {
            durability: Durability::Sync,
            checkpoint_every: None,
        };
        {
            let mut svc = FerretService::open(&dir, config(), db_opts).unwrap();
            svc.insert(
                ObjectId(1),
                obj(0.2),
                Some(AttrsBuilder::new().keyword("tag", "keep").build()),
            )
            .unwrap();
            svc.insert(ObjectId(2), obj(0.8), None).unwrap();
            svc.insert(ObjectId(3), obj(0.5), None).unwrap();
            svc.remove(ObjectId(3)).unwrap();
            svc.checkpoint().unwrap();
        }
        let mut svc = FerretService::open(&dir, config(), db_opts).unwrap();
        assert_eq!(svc.engine().len(), 2);
        let out = svc.execute_line("query id=1 k=2 mode=brute");
        assert!(out.starts_with("OK 2"), "{out}");
        let out = svc.execute_line("attr tag:keep");
        assert_eq!(out, "OK 1\n1\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut svc = populated();
        assert!(svc.insert(ObjectId(0), obj(0.5), None).is_err());
    }

    #[test]
    fn batch_insert_matches_serial_and_is_atomic() {
        let mut serial = FerretService::in_memory(config()).unwrap();
        let mut batched = FerretService::in_memory(config()).unwrap();
        batched.set_parallelism(Parallelism::Threads(3));
        let attrs = |i: u64| Some(AttrsBuilder::new().int("idx", i as i64).build());
        for i in 0..8u64 {
            serial
                .insert(ObjectId(i), obj(0.1 + 0.1 * i as f32), attrs(i))
                .unwrap();
        }
        let items: Vec<_> = (0..8u64)
            .map(|i| (ObjectId(i), obj(0.1 + 0.1 * i as f32), attrs(i)))
            .collect();
        batched.insert_batch(items).unwrap();
        assert_eq!(
            serial.execute_line("query id=0 k=4"),
            batched.execute_line("query id=0 k=4")
        );
        assert_eq!(
            serial.execute_line("attr idx>=5"),
            batched.execute_line("attr idx>=5")
        );
        // Duplicate id inside a batch leaves the service untouched.
        let dup: Vec<_> = [
            (ObjectId(100), obj(0.3), None),
            (ObjectId(100), obj(0.4), None),
        ]
        .into();
        assert!(batched.insert_batch(dup).is_err());
        assert_eq!(batched.engine().len(), 8);
    }
}
