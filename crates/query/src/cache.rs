//! Epoch-keyed result cache for read-only protocol queries.
//!
//! Entries are keyed on the *normalized query string* (every query
//! parameter except the output format) and stamped with the service's
//! **index epoch** at fill time. Every mutation — insert, remove,
//! sketch retune/rebuild — bumps the epoch, so a lookup only hits when
//! the stored stamp equals the current epoch: a hit is provably the
//! same reply a cold execution would produce right now (rendering is
//! deterministic, so the rendered bytes match too), and a stale entry
//! can never be served — it is dropped on sight instead.
//!
//! Eviction is LRU by insertion/touch order, bounded by entry count;
//! the approximate resident footprint (keys + rendered reply sizes) is
//! published through `ferret_cache_memory_bytes`.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ferret_core::telemetry::MetricsRegistry;
use parking_lot::Mutex;

use crate::protocol::{render_response, Response};

struct Entry {
    epoch: u64,
    resp: Response,
    bytes: usize,
}

struct Inner {
    entries: HashMap<String, Entry>,
    /// Touch order: front = least recently used. May hold stale
    /// duplicates of re-touched keys; eviction skips them.
    order: VecDeque<String>,
    bytes: usize,
}

/// A bounded, epoch-invalidated LRU cache of query responses.
///
/// Capacity 0 disables the cache entirely (lookups miss, stores are
/// dropped), which keeps the disabled path allocation-free.
pub struct ResultCache {
    inner: Mutex<Inner>,
    epoch: AtomicU64,
    capacity: usize,
    telemetry: Mutex<Option<Arc<MetricsRegistry>>>,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` responses.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                order: VecDeque::new(),
                bytes: 0,
            }),
            epoch: AtomicU64::new(0),
            capacity,
            telemetry: Mutex::new(None),
        }
    }

    /// Wires a metrics registry in and eagerly registers the cache
    /// series so they appear (at zero) before any traffic.
    pub fn set_telemetry(&self, registry: Option<Arc<MetricsRegistry>>) {
        if let Some(registry) = &registry {
            registry.counter(
                "ferret_cache_hits_total",
                "Query replies served from the result cache.",
                &[],
            );
            registry.counter(
                "ferret_cache_misses_total",
                "Query-cache lookups that required a cold execution.",
                &[],
            );
            registry.counter(
                "ferret_cache_evictions_total",
                "Cache entries dropped (LRU capacity or stale epoch).",
                &[],
            );
            registry.gauge(
                "ferret_cache_memory_bytes",
                "Approximate resident bytes of cached keys and replies.",
                &[],
            );
        }
        *self.telemetry.lock() = registry;
    }

    /// The current index epoch.
    pub fn epoch(&self) -> u64 {
        // ordering: Acquire pairs with the AcqRel bump; the inner mutex orders entry contents
        self.epoch.load(Ordering::Acquire)
    }

    /// Invalidates every cached reply by advancing the epoch. Called on
    /// any mutation of the underlying index; O(1) — stale entries are
    /// dropped lazily as lookups encounter them or LRU pushes them out.
    pub fn bump_epoch(&self) {
        // ordering: AcqRel; release publishes the invalidation to epoch() readers, and no other atomic participates so SeqCst buys nothing
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Whether the cache can ever store anything.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Looks `key` up; returns the cached response only if it was
    /// stored at the current epoch. A stale entry is removed (counted
    /// as an eviction) and reported as a miss.
    pub fn lookup(&self, key: &str) -> Option<Response> {
        if !self.enabled() {
            return None;
        }
        let mut inner = self.inner.lock();
        // The epoch must be read under the lock: reading it first races
        // with a concurrent bump+store, and the reader would then remove
        // the freshly stored entry as "stale" (its epoch is newer than
        // the one the reader loaded).
        let epoch = self.epoch();
        let mut evicted_stale = false;
        let result = match inner.entries.get(key) {
            Some(entry) if entry.epoch == epoch => {
                let resp = entry.resp.clone();
                inner.order.push_back(key.to_string());
                Some(resp)
            }
            Some(_) => {
                if let Some(entry) = inner.entries.remove(key) {
                    inner.bytes -= entry.bytes;
                    evicted_stale = true;
                }
                None
            }
            None => None,
        };
        let bytes = inner.bytes;
        // Counters are bumped only after the cache lock is released, so the
        // telemetry mutex never nests inside it (see LOCK_ORDER.txt).
        drop(inner);
        if evicted_stale {
            self.count("ferret_cache_evictions_total", 1);
        }
        match &result {
            Some(_) => self.count("ferret_cache_hits_total", 1),
            None => self.count("ferret_cache_misses_total", 1),
        }
        self.publish_bytes(bytes);
        result
    }

    /// Stores a response under `key`, stamped with the current epoch,
    /// evicting least-recently-used entries beyond capacity.
    pub fn store(&self, key: String, resp: Response) {
        if !self.enabled() {
            return;
        }
        let epoch = self.epoch();
        // Approximate footprint: the key plus the rendered reply size.
        let entry_bytes = key.len() + render_response(&resp).len();
        let mut inner = self.inner.lock();
        if let Some(old) = inner.entries.remove(&key) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += entry_bytes;
        inner.order.push_back(key.clone());
        inner.entries.insert(
            key,
            Entry {
                epoch,
                resp,
                bytes: entry_bytes,
            },
        );
        let mut evicted = 0u64;
        while inner.entries.len() > self.capacity {
            let Some(victim) = inner.order.pop_front() else {
                break;
            };
            // The touch queue may hold stale duplicates of keys that
            // were re-touched (and thus re-pushed) later; only the
            // *last* occurrence speaks for the entry.
            if inner.order.iter().any(|k| k == &victim) {
                continue;
            }
            if let Some(entry) = inner.entries.remove(&victim) {
                inner.bytes -= entry.bytes;
                evicted += 1;
            }
        }
        let bytes = inner.bytes;
        drop(inner);
        if evicted > 0 {
            self.count("ferret_cache_evictions_total", evicted);
        }
        self.publish_bytes(bytes);
    }

    fn count(&self, name: &'static str, n: u64) {
        if let Some(registry) = self.telemetry.lock().as_ref() {
            registry.inc_counter(name, "", &[], n);
        }
    }

    fn publish_bytes(&self, bytes: usize) {
        if let Some(registry) = self.telemetry.lock().as_ref() {
            registry
                .gauge(
                    "ferret_cache_memory_bytes",
                    "Approximate resident bytes of cached keys and replies.",
                    &[],
                )
                .set(bytes as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferret_core::object::ObjectId;

    fn resp(id: u64) -> Response {
        Response::Results(vec![(ObjectId(id), 0.5)])
    }

    #[test]
    fn hit_only_at_matching_epoch() {
        let cache = ResultCache::new(4);
        cache.store("q1".into(), resp(7));
        assert_eq!(cache.lookup("q1"), Some(resp(7)));
        cache.bump_epoch();
        assert_eq!(cache.lookup("q1"), None, "stale entry must not hit");
        // The stale entry was dropped, not just skipped.
        assert_eq!(cache.lookup("q1"), None);
    }

    #[test]
    fn lru_eviction_respects_touch_order() {
        let cache = ResultCache::new(2);
        cache.store("a".into(), resp(1));
        cache.store("b".into(), resp(2));
        // Touch "a" so "b" becomes the LRU victim.
        assert!(cache.lookup("a").is_some());
        cache.store("c".into(), resp(3));
        assert!(cache.lookup("a").is_some());
        assert!(cache.lookup("b").is_none());
        assert!(cache.lookup("c").is_some());
    }

    #[test]
    fn capacity_zero_disables() {
        let cache = ResultCache::new(0);
        cache.store("a".into(), resp(1));
        assert!(cache.lookup("a").is_none());
    }

    #[test]
    fn restore_after_bump_serves_fresh_reply() {
        let cache = ResultCache::new(4);
        cache.store("q".into(), resp(1));
        cache.bump_epoch();
        cache.store("q".into(), resp(2));
        assert_eq!(cache.lookup("q"), Some(resp(2)));
    }

    #[test]
    fn telemetry_counts_hits_misses_evictions_and_bytes() {
        let registry = Arc::new(MetricsRegistry::new());
        let cache = ResultCache::new(1);
        cache.set_telemetry(Some(Arc::clone(&registry)));
        assert!(cache.lookup("a").is_none()); // miss
        cache.store("a".into(), resp(1));
        assert!(cache.lookup("a").is_some()); // hit
        cache.store("b".into(), resp(2)); // evicts "a"
        assert_eq!(
            registry.counter_value("ferret_cache_hits_total", &[]),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("ferret_cache_misses_total", &[]),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("ferret_cache_evictions_total", &[]),
            Some(1)
        );
        let gauge = registry.gauge("ferret_cache_memory_bytes", "", &[]);
        assert_eq!(
            gauge.get(),
            ("b".len() + render_response(&resp(2)).len()) as i64
        );
    }
}
