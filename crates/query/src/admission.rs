//! Admission control for concurrent query serving.
//!
//! The paper runs Ferret "as a server" for many clients (§4.1.4); under
//! heavy multi-user traffic an unbounded server melts down instead of
//! degrading. [`AdmissionControl`] caps the number of in-flight queries
//! across every serving surface (TCP protocol and HTTP): a query either
//! gets a slot immediately or is rejected with a `BUSY` protocol error /
//! HTTP 503, so overload produces fast feedback instead of an unbounded
//! queue. The cap is shared — handing one controller to both servers
//! bounds the whole process.
//!
//! Telemetry (when a registry is attached):
//! * `ferret_inflight_queries` — gauge, queries currently executing.
//! * `ferret_inflight_queries_peak` — gauge, high watermark of the above.
//! * `ferret_rejected_total` — counter, queries refused by admission.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ferret_core::telemetry::{Counter, Gauge, MetricsRegistry};

/// Caps concurrently executing queries; see the module docs.
pub struct AdmissionControl {
    max_inflight: usize,
    inflight: AtomicUsize,
    /// Cached metric handles (updates are lock-free).
    inflight_gauge: Option<Arc<Gauge>>,
    peak_gauge: Option<Arc<Gauge>>,
    rejected: Option<Arc<Counter>>,
}

impl AdmissionControl {
    /// Creates a controller admitting at most `max_inflight` concurrent
    /// queries (`0` is treated as unlimited). With a registry, the
    /// in-flight/peak gauges and rejection counter are registered eagerly
    /// so `/metrics` exposes the series from the first scrape.
    pub fn new(max_inflight: usize, registry: Option<&Arc<MetricsRegistry>>) -> Self {
        let inflight_gauge = registry.map(|reg| {
            reg.gauge(
                "ferret_inflight_queries",
                "Queries currently executing across all serving surfaces.",
                &[],
            )
        });
        let peak_gauge = registry.map(|reg| {
            reg.gauge(
                "ferret_inflight_queries_peak",
                "High watermark of concurrently executing queries.",
                &[],
            )
        });
        let rejected = registry.map(|reg| {
            reg.counter(
                "ferret_rejected_total",
                "Queries rejected by admission control (BUSY / HTTP 503).",
                &[],
            )
        });
        Self {
            max_inflight,
            inflight: AtomicUsize::new(0),
            inflight_gauge,
            peak_gauge,
            rejected,
        }
    }

    /// The configured limit (`0` = unlimited).
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Queries executing right now.
    pub fn inflight(&self) -> usize {
        // ordering: Relaxed; monitoring read, admission itself re-reads via compare_exchange
        self.inflight.load(Ordering::Relaxed)
    }

    /// Tries to admit one query. `None` means the server is saturated and
    /// the caller must answer `BUSY`/503; `Some` holds the slot until the
    /// guard drops.
    pub fn try_admit(self: &Arc<Self>) -> Option<AdmissionGuard> {
        // ordering: Relaxed; just seeds the CAS loop, the CAS validates it
        let mut current = self.inflight.load(Ordering::Relaxed);
        loop {
            if self.max_inflight != 0 && current >= self.max_inflight {
                if let Some(c) = &self.rejected {
                    c.inc();
                }
                return None;
            }
            match self.inflight.compare_exchange_weak(
                current,
                current + 1,
                // ordering: AcqRel success pairs with the AcqRel release in AdmissionGuard::drop so slot reuse is ordered
                Ordering::AcqRel,
                // ordering: Relaxed failure only feeds the retry loop
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
        let now = current as i64 + 1;
        if let Some(g) = &self.inflight_gauge {
            // ordering: Relaxed; gauge refresh is advisory
            g.set(self.inflight.load(Ordering::Relaxed) as i64);
        }
        if let Some(g) = &self.peak_gauge {
            g.fetch_max(now);
        }
        Some(AdmissionGuard {
            control: Arc::clone(self),
        })
    }
}

/// An admitted query's slot; releases it (and updates the in-flight
/// gauge) on drop.
pub struct AdmissionGuard {
    control: Arc<AdmissionControl>,
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        // ordering: AcqRel; release publishes this query's effects before the slot frees, acquire pairs with the admit CAS
        let before = self.control.inflight.fetch_sub(1, Ordering::AcqRel);
        if let Some(g) = &self.control.inflight_gauge {
            g.set(before.saturating_sub(1) as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_limit_then_rejects() {
        let ctl = Arc::new(AdmissionControl::new(2, None));
        let a = ctl.try_admit().expect("first");
        let b = ctl.try_admit().expect("second");
        assert!(ctl.try_admit().is_none(), "third must be rejected");
        assert_eq!(ctl.inflight(), 2);
        drop(a);
        let c = ctl.try_admit().expect("slot freed");
        assert_eq!(ctl.inflight(), 2);
        drop(b);
        drop(c);
        assert_eq!(ctl.inflight(), 0);
    }

    #[test]
    fn zero_limit_is_unlimited() {
        let ctl = Arc::new(AdmissionControl::new(0, None));
        let guards: Vec<_> = (0..100).map(|_| ctl.try_admit().unwrap()).collect();
        assert_eq!(ctl.inflight(), 100);
        drop(guards);
        assert_eq!(ctl.inflight(), 0);
    }

    #[test]
    fn telemetry_tracks_inflight_peak_and_rejections() {
        let reg = Arc::new(MetricsRegistry::new());
        let ctl = Arc::new(AdmissionControl::new(2, Some(&reg)));
        // Eager registration: series exist before any traffic.
        let gauge = reg.gauge("ferret_inflight_queries", "", &[]);
        let peak = reg.gauge("ferret_inflight_queries_peak", "", &[]);
        assert_eq!(gauge.get(), 0);
        assert_eq!(reg.counter_value("ferret_rejected_total", &[]), Some(0));

        let a = ctl.try_admit().unwrap();
        let b = ctl.try_admit().unwrap();
        assert!(ctl.try_admit().is_none());
        assert_eq!(gauge.get(), 2);
        assert_eq!(peak.get(), 2);
        assert_eq!(reg.counter_value("ferret_rejected_total", &[]), Some(1));
        drop(a);
        drop(b);
        assert_eq!(gauge.get(), 0);
        // Peak watermark survives the drain.
        assert_eq!(peak.get(), 2);
    }

    #[test]
    fn concurrent_admission_never_exceeds_limit() {
        let ctl = Arc::new(AdmissionControl::new(4, None));
        let max_seen = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let ctl = Arc::clone(&ctl);
                let max_seen = Arc::clone(&max_seen);
                scope.spawn(move || {
                    for _ in 0..200 {
                        if let Some(_guard) = ctl.try_admit() {
                            let now = ctl.inflight();
                            max_seen.fetch_max(now, Ordering::Relaxed);
                            assert!(now <= 4, "inflight {now} exceeded limit");
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert_eq!(ctl.inflight(), 0);
        assert!(max_seen.load(Ordering::Relaxed) >= 1);
    }
}
