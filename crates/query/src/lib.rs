//! # ferret-query
//!
//! The query-facing layer of the Ferret toolkit: the command-line query
//! protocol (paper §4.1.4), the composed search service (core engine +
//! attribute search + transactional metadata), a TCP line-protocol server,
//! and the minimal web interface (§4.3).
//!
//! ```
//! use ferret_core::engine::EngineConfig;
//! use ferret_core::object::{DataObject, ObjectId};
//! use ferret_core::sketch::SketchParams;
//! use ferret_core::vector::FeatureVector;
//! use ferret_query::FerretService;
//!
//! let config = EngineConfig::basic(
//!     SketchParams::new(64, vec![0.0; 2], vec![1.0; 2]).unwrap(), 1);
//! let mut service = FerretService::in_memory(config).unwrap();
//! service.insert(
//!     ObjectId(1),
//!     DataObject::single(FeatureVector::new(vec![0.5, 0.5]).unwrap()),
//!     None,
//! ).unwrap();
//! let reply = service.execute_line("query id=1 k=1 mode=brute");
//! assert!(reply.starts_with("OK 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod fusion;
pub mod http;
pub mod protocol;
pub mod server;
pub mod service;

pub use admission::{AdmissionControl, AdmissionGuard};
pub use cache::ResultCache;
pub use fusion::{rrf_fuse, weighted_fuse, FusedHit};
pub use http::HttpServer;
pub use protocol::{
    parse_command, render_error, render_reply, render_response, response_to_json, Command,
    ProtocolError, BUSY_LINE, HELP_TEXT,
};
pub use server::{Client, ServeConfig, Server};
pub use service::{
    FerretService, Response, ServiceBuilder, ServiceError, DEFAULT_TRACE_CAPACITY, FEATURES_TABLE,
};
