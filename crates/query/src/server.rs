//! TCP line-protocol server.
//!
//! "When the core components of the toolkit run as a server, we found it
//! very convenient to allow clients to issue queries" (paper §4.1.4). The
//! server speaks the command-line protocol over TCP with a **bounded
//! worker pool** over a shared service:
//!
//! * Commands are classified read vs. write ([`Command::is_read`]). Reads
//!   execute through [`FerretService::execute_read`] under
//!   `RwLock::read()`, so N connections run N queries concurrently —
//!   each still using the engine's sharded scan internally. Only writes
//!   (`delete`) take the exclusive lock.
//! * A fixed number of worker threads ([`ServeConfig::workers`]) serve
//!   connections from a bounded queue ([`ServeConfig::queue_depth`]);
//!   when the queue is full, new connections get one `BUSY` line and are
//!   closed instead of piling up.
//! * Admission control ([`AdmissionControl`]) caps in-flight queries
//!   across the process; a saturated server answers `BUSY` immediately
//!   rather than queueing forever.
//! * Shutdown drains gracefully: workers finish the command in flight,
//!   then close their connections.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use ferret_core::telemetry::MetricsRegistry;

use crate::admission::AdmissionControl;
use crate::protocol::{parse_command, render_error, render_reply, Command, BUSY_LINE};
use crate::service::FerretService;

/// Serving configuration shared by the TCP and HTTP servers.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads serving connections. A connection occupies its
    /// worker until it disconnects, so this also bounds concurrently
    /// *connected* clients.
    pub workers: usize,
    /// Connections allowed to wait for a free worker before new arrivals
    /// are turned away with a `BUSY` line.
    pub queue_depth: usize,
    /// Maximum queries executing at once across all connections
    /// (`0` = unlimited); excess queries get `BUSY`/503.
    pub max_inflight: usize,
    /// Artificial latency injected per admitted query (slot held while
    /// sleeping) — a load/soak-testing knob, `None` in production.
    pub hold: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(4);
        Self {
            workers,
            queue_depth: 4 * workers,
            max_inflight: 4 * workers,
            hold: None,
        }
    }
}

/// Shared state between an accept loop and its connection workers
/// (used by both the TCP and HTTP servers).
pub(crate) struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    depth: usize,
}

impl ConnQueue {
    pub(crate) fn new(depth: usize) -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// Enqueues a connection; on a full queue the stream is handed back
    /// so the caller can reject it.
    pub(crate) fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut q = self.queue.lock().expect("queue poisoned");
        if q.len() >= self.depth {
            return Err(stream);
        }
        q.push_back(stream);
        self.ready.notify_one();
        Ok(())
    }

    /// Wakes every waiting worker (used during shutdown).
    pub(crate) fn notify_all(&self) {
        self.ready.notify_all();
    }

    /// Pops the next connection, or `None` once `shutdown` is set.
    pub(crate) fn pop(&self, shutdown: &AtomicBool) -> Option<TcpStream> {
        let mut q = self.queue.lock().expect("queue poisoned");
        loop {
            // ordering: Relaxed; flag only ends the wait loop, queue mutex + join order the rest
            if shutdown.load(Ordering::Relaxed) {
                return None;
            }
            if let Some(stream) = q.pop_front() {
                return Some(stream);
            }
            let (guard, _) = self
                .ready
                .wait_timeout(q, Duration::from_millis(100))
                .expect("queue poisoned");
            q = guard;
        }
    }
}

/// Everything a connection worker needs to serve commands.
struct ServeContext {
    service: Arc<RwLock<FerretService>>,
    admission: Arc<AdmissionControl>,
    registry: Option<Arc<MetricsRegistry>>,
    hold: Option<Duration>,
}

impl ServeContext {
    fn observe_lock_wait(&self, lock: &str, waited: Duration) {
        if let Some(reg) = &self.registry {
            reg.observe_latency(
                "ferret_lock_wait_seconds",
                "Time spent waiting for the service lock, by lock kind.",
                &[("lock", lock)],
                waited,
            );
        }
    }

    /// Executes one parsed command with read/write dispatch, admission
    /// control, and lock-wait accounting; returns the rendered reply.
    fn dispatch(&self, command: &Command) -> String {
        if command.is_read() {
            // Similarity queries are the expensive reads; they are the
            // unit admission control meters.
            let _slot = if matches!(command, Command::Query { .. }) {
                match self.admission.try_admit() {
                    Some(guard) => Some(guard),
                    None => return BUSY_LINE.to_string(),
                }
            } else {
                None
            };
            let start = Instant::now();
            let svc = self.service.read();
            self.observe_lock_wait("read", start.elapsed());
            let reply = match svc.execute_read(command) {
                Ok(resp) => render_reply(command, &resp),
                Err(e) => render_error(&e),
            };
            drop(svc);
            if let (Some(hold), Command::Query { .. }) = (self.hold, command) {
                std::thread::sleep(hold);
            }
            reply
        } else {
            let start = Instant::now();
            let mut svc = self.service.write();
            self.observe_lock_wait("write", start.elapsed());
            match svc.execute(command) {
                Ok(resp) => render_reply(command, &resp),
                Err(e) => render_error(&e),
            }
        }
    }
}

/// A running TCP server.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts serving `service` on `addr` (use port 0 for an ephemeral
    /// port) with default [`ServeConfig`] and a private admission
    /// controller. Returns once the listener is bound.
    pub fn start(service: Arc<RwLock<FerretService>>, addr: &str) -> std::io::Result<Self> {
        let config = ServeConfig::default();
        let registry = service.read().telemetry().cloned();
        let admission = Arc::new(AdmissionControl::new(
            config.max_inflight,
            registry.as_ref(),
        ));
        Self::start_with(service, addr, config, admission)
    }

    /// Starts serving with an explicit configuration and admission
    /// controller. Pass the same controller to the HTTP server to cap
    /// in-flight queries across both surfaces.
    pub fn start_with(
        service: Arc<RwLock<FerretService>>,
        addr: &str,
        config: ServeConfig,
        admission: Arc<AdmissionControl>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_accept = Arc::clone(&shutdown);
        let registry = service.read().telemetry().cloned();
        let context = Arc::new(ServeContext {
            service,
            admission,
            registry,
            hold: config.hold,
        });
        let queue = Arc::new(ConnQueue::new(config.queue_depth));
        // Nonblocking accept loop so shutdown is prompt.
        listener.set_nonblocking(true)?;
        let workers = config.workers.max(1);
        let handle = std::thread::spawn(move || {
            let pool: Vec<_> = (0..workers)
                .map(|_| {
                    let queue = Arc::clone(&queue);
                    let stop = Arc::clone(&shutdown_accept);
                    let ctx = Arc::clone(&context);
                    std::thread::spawn(move || {
                        while let Some(stream) = queue.pop(&stop) {
                            let _ = handle_connection(stream, &ctx, &stop);
                        }
                    })
                })
                .collect();
            loop {
                // ordering: Relaxed; stop flag carries no data, stop()/drop join after
                if shutdown_accept.load(Ordering::Relaxed) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        if let Err(mut rejected) = queue.push(stream) {
                            // Queue full: one BUSY line, then close.
                            let _ = rejected.write_all(BUSY_LINE.as_bytes());
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            queue.notify_all();
            for w in pool {
                let _ = w.join();
            }
        });
        Ok(Self {
            addr: local,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown and joins the accept loop and workers (graceful
    /// drain: each worker finishes the command in flight first).
    pub fn stop(mut self) {
        // ordering: Relaxed; the join below is the real synchronization point
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // ordering: Relaxed; the join below is the real synchronization point
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    context: &ServeContext,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    writer.write_all(b"ferret ready\n")?;
    let mut line = String::new();
    loop {
        // ordering: Relaxed; graceful-drain check between commands, no data rides on it
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF.
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                // Parse outside any lock; only execution needs the
                // service.
                let reply = match parse_command(trimmed) {
                    Ok(cmd) => context.dispatch(&cmd),
                    Err(e) => render_error(&e),
                };
                writer.write_all(reply.as_bytes())?;
                writer.flush()?;
                if reply.starts_with("OK bye") {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    Ok(())
}

/// A minimal blocking client for the line protocol (used by tools, tests,
/// and the web interface).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects and consumes the greeting line.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let mut greeting = String::new();
        reader.read_line(&mut greeting)?;
        Ok(Self { reader, writer })
    }

    /// Sends one command and reads the full response.
    ///
    /// The first line is `OK <n>` / `OK <tag>` / `ERR <msg>`; `n` further
    /// payload lines follow for numeric statuses, and help responses are
    /// read until their known length.
    pub fn send(&mut self, command: &str) -> std::io::Result<String> {
        self.writer.write_all(command.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut status = String::new();
        self.reader.read_line(&mut status)?;
        let mut out = status.clone();
        let mut extra_lines = 0usize;
        if let Some(rest) = status.strip_prefix("OK ") {
            let tag = rest.trim();
            if let Ok(n) = tag.parse::<usize>() {
                extra_lines = n;
            } else if tag == "help" {
                extra_lines = crate::protocol::HELP_TEXT.lines().count();
            }
        }
        for _ in 0..extra_lines {
            let mut line = String::new();
            self.reader.read_line(&mut line)?;
            out.push_str(&line);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferret_core::engine::EngineConfig;
    use ferret_core::object::{DataObject, ObjectId};
    use ferret_core::sketch::SketchParams;
    use ferret_core::vector::FeatureVector;

    fn service() -> Arc<RwLock<FerretService>> {
        let config = EngineConfig::basic(
            SketchParams::new(64, vec![0.0; 2], vec![1.0; 2]).unwrap(),
            3,
        );
        let mut svc = FerretService::in_memory(config).unwrap();
        for i in 0..5u64 {
            let x = 0.1 + i as f32 * 0.2;
            svc.insert(
                ObjectId(i),
                DataObject::single(FeatureVector::new(vec![x, x]).unwrap()),
                None,
            )
            .unwrap();
        }
        Arc::new(RwLock::new(svc))
    }

    #[test]
    fn query_over_tcp() {
        let server = Server::start(service(), "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let reply = client.send("query id=0 k=2 mode=brute").unwrap();
        let lines: Vec<&str> = reply.lines().collect();
        assert_eq!(lines[0], "OK 2");
        assert!(lines[1].starts_with("0 "));
        assert!(lines[2].starts_with("1 "));
        server.stop();
    }

    #[test]
    fn multiple_commands_one_connection() {
        let server = Server::start(service(), "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        assert!(client.send("stat").unwrap().contains("objects 5"));
        assert!(client.send("help").unwrap().contains("delete id=<n>"));
        assert!(client.send("bogus").unwrap().starts_with("ERR"));
        assert!(client.send("quit").unwrap().starts_with("OK bye"));
        server.stop();
    }

    #[test]
    fn concurrent_clients() {
        let server = Server::start(service(), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    for _ in 0..5 {
                        let reply = c.send("query id=1 k=3 mode=sketch").unwrap();
                        assert!(reply.starts_with("OK 3"), "{reply}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.stop();
    }

    #[test]
    fn mutation_over_tcp_is_shared() {
        let svc = service();
        let server = Server::start(Arc::clone(&svc), "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        assert_eq!(client.send("delete id=4").unwrap(), "OK\n");
        assert_eq!(svc.read().engine().len(), 4);
        server.stop();
    }

    #[test]
    fn saturated_admission_returns_busy_not_a_hang() {
        let svc = service();
        let registry = Arc::new(ferret_core::telemetry::MetricsRegistry::new());
        svc.write().enable_telemetry(Arc::clone(&registry));
        let admission = Arc::new(AdmissionControl::new(1, Some(&registry)));
        let config = ServeConfig {
            workers: 4,
            queue_depth: 8,
            max_inflight: 1,
            hold: Some(Duration::from_millis(400)),
        };
        let server =
            Server::start_with(Arc::clone(&svc), "127.0.0.1:0", config, admission).unwrap();
        let addr = server.addr();

        // One client occupies the single slot for ≥400ms...
        let slow = std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            c.send("query id=0 k=2 mode=brute").unwrap()
        });
        // ...while a second keeps trying until it gets turned away. The
        // reply must come back promptly (BUSY, not a queued hang).
        let mut fast = Client::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut saw_busy = false;
        while Instant::now() < deadline {
            let start = Instant::now();
            let reply = fast.send("query id=1 k=1 mode=brute").unwrap();
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "reply took {:?}",
                start.elapsed()
            );
            if reply.starts_with("ERR BUSY") {
                saw_busy = true;
                break;
            }
            assert!(reply.starts_with("OK"), "{reply}");
        }
        assert!(saw_busy, "saturating the limit never produced BUSY");
        assert!(slow.join().unwrap().starts_with("OK"));
        assert!(
            registry
                .counter_value("ferret_rejected_total", &[])
                .unwrap()
                >= 1
        );
        server.stop();
    }

    #[test]
    fn non_query_commands_bypass_admission() {
        let svc = service();
        let registry = Arc::new(ferret_core::telemetry::MetricsRegistry::new());
        svc.write().enable_telemetry(Arc::clone(&registry));
        // A zero-slot controller rejects every query...
        let admission = Arc::new(AdmissionControl::new(1, Some(&registry)));
        let _held = admission.try_admit().unwrap();
        let config = ServeConfig {
            workers: 2,
            queue_depth: 4,
            max_inflight: 1,
            hold: None,
        };
        let server =
            Server::start_with(Arc::clone(&svc), "127.0.0.1:0", config, admission).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        // ...but stat/attr/help/delete still work.
        assert!(client.send("query id=0").unwrap().starts_with("ERR BUSY"));
        assert!(client.send("stat").unwrap().contains("objects 5"));
        assert_eq!(client.send("delete id=4").unwrap(), "OK\n");
        server.stop();
    }
}
