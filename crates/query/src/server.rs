//! TCP line-protocol server.
//!
//! "When the core components of the toolkit run as a server, we found it
//! very convenient to allow clients to issue queries" (paper §4.1.4). The
//! server speaks the command-line protocol over TCP, one command per line,
//! one thread per connection over a shared service.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::service::FerretService;

/// A running TCP server.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts serving `service` on `addr` (use port 0 for an ephemeral
    /// port). Returns once the listener is bound.
    pub fn start(service: Arc<RwLock<FerretService>>, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_accept = Arc::clone(&shutdown);
        // Nonblocking accept loop so shutdown is prompt.
        listener.set_nonblocking(true)?;
        let handle = std::thread::spawn(move || {
            let mut workers = Vec::new();
            loop {
                if shutdown_accept.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let svc = Arc::clone(&service);
                        let stop = Arc::clone(&shutdown_accept);
                        workers.push(std::thread::spawn(move || {
                            let _ = handle_connection(stream, svc, stop);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(Self {
            addr: local,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown and joins the accept loop.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    service: Arc<RwLock<FerretService>>,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(std::time::Duration::from_millis(200)))
        .ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    writer.write_all(b"ferret ready\n")?;
    let mut line = String::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF.
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                let reply = service.write().execute_line(trimmed);
                writer.write_all(reply.as_bytes())?;
                writer.flush()?;
                if reply.starts_with("OK bye") {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    Ok(())
}

/// A minimal blocking client for the line protocol (used by tools, tests,
/// and the web interface).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects and consumes the greeting line.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let mut greeting = String::new();
        reader.read_line(&mut greeting)?;
        Ok(Self { reader, writer })
    }

    /// Sends one command and reads the full response.
    ///
    /// The first line is `OK <n>` / `OK <tag>` / `ERR <msg>`; `n` further
    /// payload lines follow for numeric statuses, and help responses are
    /// read until their known length.
    pub fn send(&mut self, command: &str) -> std::io::Result<String> {
        self.writer.write_all(command.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut status = String::new();
        self.reader.read_line(&mut status)?;
        let mut out = status.clone();
        let mut extra_lines = 0usize;
        if let Some(rest) = status.strip_prefix("OK ") {
            let tag = rest.trim();
            if let Ok(n) = tag.parse::<usize>() {
                extra_lines = n;
            } else if tag == "help" {
                extra_lines = crate::protocol::HELP_TEXT.lines().count();
            }
        }
        for _ in 0..extra_lines {
            let mut line = String::new();
            self.reader.read_line(&mut line)?;
            out.push_str(&line);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferret_core::engine::EngineConfig;
    use ferret_core::object::{DataObject, ObjectId};
    use ferret_core::sketch::SketchParams;
    use ferret_core::vector::FeatureVector;

    fn service() -> Arc<RwLock<FerretService>> {
        let config = EngineConfig::basic(
            SketchParams::new(64, vec![0.0; 2], vec![1.0; 2]).unwrap(),
            3,
        );
        let mut svc = FerretService::in_memory(config);
        for i in 0..5u64 {
            let x = 0.1 + i as f32 * 0.2;
            svc.insert(
                ObjectId(i),
                DataObject::single(FeatureVector::new(vec![x, x]).unwrap()),
                None,
            )
            .unwrap();
        }
        Arc::new(RwLock::new(svc))
    }

    #[test]
    fn query_over_tcp() {
        let server = Server::start(service(), "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let reply = client.send("query id=0 k=2 mode=brute").unwrap();
        let lines: Vec<&str> = reply.lines().collect();
        assert_eq!(lines[0], "OK 2");
        assert!(lines[1].starts_with("0 "));
        assert!(lines[2].starts_with("1 "));
        server.stop();
    }

    #[test]
    fn multiple_commands_one_connection() {
        let server = Server::start(service(), "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        assert!(client.send("stat").unwrap().contains("objects 5"));
        assert!(client.send("help").unwrap().contains("delete id=<n>"));
        assert!(client.send("bogus").unwrap().starts_with("ERR"));
        assert!(client.send("quit").unwrap().starts_with("OK bye"));
        server.stop();
    }

    #[test]
    fn concurrent_clients() {
        let server = Server::start(service(), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    for _ in 0..5 {
                        let reply = c.send("query id=1 k=3 mode=sketch").unwrap();
                        assert!(reply.starts_with("OK 3"), "{reply}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.stop();
    }

    #[test]
    fn mutation_over_tcp_is_shared() {
        let svc = service();
        let server = Server::start(Arc::clone(&svc), "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        assert_eq!(client.send("delete id=4").unwrap(), "OK\n");
        assert_eq!(svc.read().engine().len(), 4);
        server.stop();
    }
}
