//! The command-line query protocol (paper §4.1.4).
//!
//! A line-oriented text protocol "designed to process client queries with
//! various parameters including the number of results to return, filter
//! parameters, and attributes". One command per line:
//!
//! ```text
//! query id=42 k=10 mode=filter r=2 cand=40 attr="collection:corel"
//! attr collection:corel AND caption:dog
//! delete id=42
//! stat
//! help
//! quit
//! ```

use ferret_core::engine::QueryMode;
use ferret_core::filter::FilterParams;
use ferret_core::object::ObjectId;

/// A parsed protocol command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Similarity query seeded by a stored object.
    Query {
        /// Seed object id.
        id: ObjectId,
        /// Number of results.
        k: usize,
        /// Traversal mode.
        mode: QueryMode,
        /// Filtering parameters.
        filter: FilterParams,
        /// Optional attribute pre-filter expression.
        attr: Option<String>,
        /// Optional adjusted query segment weights (paper §4.1.4).
        weights: Option<Vec<f32>>,
    },
    /// Attribute-only search.
    Attr {
        /// The attribute query expression.
        expression: String,
    },
    /// Remove an object.
    Delete {
        /// The object to remove.
        id: ObjectId,
    },
    /// Engine statistics.
    Stat,
    /// Usage help.
    Help,
    /// Close the session.
    Quit,
}

impl Command {
    /// True for commands that only read service state.
    ///
    /// This classification is the serving concurrency contract: read
    /// commands execute through `FerretService::execute_read(&self)` under
    /// a shared (`RwLock::read`) lock, so any number of connections can
    /// run them at once; write commands take the exclusive lock.
    pub fn is_read(&self) -> bool {
        match self {
            Command::Query { .. } | Command::Attr { .. } => true,
            Command::Stat | Command::Help | Command::Quit => true,
            Command::Delete { .. } => false,
        }
    }
}

/// A structured command response, renderable as protocol text (see
/// [`render_response`]) or JSON (`http::response_to_json`).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Ranked similarity results: `(id, distance)`.
    Results(Vec<(ObjectId, f64)>),
    /// Attribute search hits.
    Ids(Vec<ObjectId>),
    /// Statistics summary.
    Stat {
        /// Stored objects.
        objects: usize,
        /// Stored segments.
        segments: usize,
        /// Sketch metadata bytes.
        sketch_bytes: usize,
        /// Feature-vector metadata bytes.
        feature_bytes: usize,
        /// Approximate filter-index bytes (0 with the scan strategy).
        index_bytes: usize,
    },
    /// Help text.
    Help,
    /// Session close acknowledgment.
    Bye,
    /// Generic acknowledgment.
    Ok,
}

/// Renders a [`Response`] in the line protocol's text form: one
/// `OK`/`ERR` status line plus payload lines.
pub fn render_response(resp: &Response) -> String {
    match resp {
        Response::Results(results) => {
            let mut out = format!("OK {}\n", results.len());
            for (id, d) in results {
                out.push_str(&format!("{} {:.6}\n", id.0, d));
            }
            out
        }
        Response::Ids(ids) => {
            let mut out = format!("OK {}\n", ids.len());
            for id in ids {
                out.push_str(&format!("{}\n", id.0));
            }
            out
        }
        Response::Stat {
            objects,
            segments,
            sketch_bytes,
            feature_bytes,
            index_bytes,
        } => {
            format!(
                "OK 5\nobjects {objects}\nsegments {segments}\nsketch_bytes {sketch_bytes}\nfeature_bytes {feature_bytes}\nindex_bytes {index_bytes}\n"
            )
        }
        Response::Help => format!("OK help\n{HELP_TEXT}\n"),
        Response::Bye => "OK bye\n".to_string(),
        Response::Ok => "OK\n".to_string(),
    }
}

/// Renders an error in the line protocol's text form (`ERR <message>`).
pub fn render_error(message: &dyn std::fmt::Display) -> String {
    format!("ERR {message}\n")
}

/// The protocol line an overloaded server answers with when admission
/// control rejects a query (clients should back off and retry).
pub const BUSY_LINE: &str = "ERR BUSY too many in-flight queries, retry later\n";

impl Response {
    /// Renders the protocol text form ([`render_response`]).
    pub fn render(&self) -> String {
        render_response(self)
    }
}

/// A protocol parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

/// Splits a command line into whitespace-separated tokens, honoring
/// double-quoted values in `key="..."` arguments.
fn tokenize(line: &str) -> Result<Vec<String>, ProtocolError> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut quoted = false;
    for c in line.chars() {
        match c {
            '"' => quoted = !quoted,
            c if c.is_whitespace() && !quoted => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            c => current.push(c),
        }
    }
    if quoted {
        return Err(ProtocolError("unterminated quote".into()));
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    Ok(tokens)
}

fn parse_kv(token: &str) -> Result<(&str, &str), ProtocolError> {
    token
        .split_once('=')
        .ok_or_else(|| ProtocolError(format!("expected key=value, got {token:?}")))
}

/// Parses one protocol line.
pub fn parse_command(line: &str) -> Result<Command, ProtocolError> {
    let tokens = tokenize(line)?;
    let Some(verb) = tokens.first() else {
        return Err(ProtocolError("empty command".into()));
    };
    match verb.as_str() {
        "query" => {
            let mut id: Option<u64> = None;
            let mut k = 10usize;
            let mut mode = QueryMode::Filtering;
            let mut filter = FilterParams::default();
            let mut attr = None;
            let mut weights = None;
            for token in &tokens[1..] {
                let (key, value) = parse_kv(token)?;
                match key {
                    "id" => {
                        id = Some(
                            value
                                .parse()
                                .map_err(|_| ProtocolError(format!("invalid id {value:?}")))?,
                        );
                    }
                    "k" => {
                        k = value
                            .parse()
                            .map_err(|_| ProtocolError(format!("invalid k {value:?}")))?;
                    }
                    "mode" => {
                        mode = match value {
                            "brute" | "brute-force-original" => QueryMode::BruteForceOriginal,
                            "sketch" | "brute-force-sketch" => QueryMode::BruteForceSketch,
                            "filter" | "filtering" => QueryMode::Filtering,
                            other => {
                                return Err(ProtocolError(format!("unknown mode {other:?}")));
                            }
                        };
                    }
                    "r" => {
                        filter.query_segments = value
                            .parse()
                            .map_err(|_| ProtocolError(format!("invalid r {value:?}")))?;
                    }
                    "cand" => {
                        filter.candidates_per_segment = value
                            .parse()
                            .map_err(|_| ProtocolError(format!("invalid cand {value:?}")))?;
                    }
                    "threshold" => {
                        filter.base_threshold =
                            Some(value.parse().map_err(|_| {
                                ProtocolError(format!("invalid threshold {value:?}"))
                            })?);
                    }
                    "attr" => attr = Some(value.to_string()),
                    "weights" => {
                        let parsed: Result<Vec<f32>, _> =
                            value.split(',').map(str::parse::<f32>).collect();
                        weights =
                            Some(parsed.map_err(|_| {
                                ProtocolError(format!("invalid weights {value:?}"))
                            })?);
                    }
                    other => {
                        return Err(ProtocolError(format!("unknown parameter {other:?}")));
                    }
                }
            }
            let id = id.ok_or_else(|| ProtocolError("query requires id=<n>".into()))?;
            Ok(Command::Query {
                id: ObjectId(id),
                k,
                mode,
                filter,
                attr,
                weights,
            })
        }
        "attr" => {
            if tokens.len() < 2 {
                return Err(ProtocolError("attr requires an expression".into()));
            }
            Ok(Command::Attr {
                expression: tokens[1..].join(" "),
            })
        }
        "delete" => {
            let mut id = None;
            for token in &tokens[1..] {
                let (key, value) = parse_kv(token)?;
                if key == "id" {
                    id = Some(
                        value
                            .parse()
                            .map_err(|_| ProtocolError(format!("invalid id {value:?}")))?,
                    );
                }
            }
            let id = id.ok_or_else(|| ProtocolError("delete requires id=<n>".into()))?;
            Ok(Command::Delete { id: ObjectId(id) })
        }
        "stat" => Ok(Command::Stat),
        "help" => Ok(Command::Help),
        "quit" | "exit" => Ok(Command::Quit),
        other => Err(ProtocolError(format!("unknown command {other:?}"))),
    }
}

/// The help text returned for `help`.
pub const HELP_TEXT: &str = "\
commands:
  query id=<n> [k=<n>] [mode=brute|sketch|filter] [r=<n>] [cand=<n>] [threshold=<bits>] [attr=\"<expr>\"] [weights=<w1,w2,...>]
  attr <expression>
  delete id=<n>
  stat
  help
  quit";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal_query() {
        let cmd = parse_command("query id=42").unwrap();
        match cmd {
            Command::Query {
                id, k, mode, attr, ..
            } => {
                assert_eq!(id, ObjectId(42));
                assert_eq!(k, 10);
                assert_eq!(mode, QueryMode::Filtering);
                assert!(attr.is_none());
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_full_query() {
        let cmd = parse_command(
            "query id=7 k=25 mode=sketch r=3 cand=80 threshold=12 attr=\"collection:corel AND dog\"",
        )
        .unwrap();
        match cmd {
            Command::Query {
                id,
                k,
                mode,
                filter,
                attr,
                ..
            } => {
                assert_eq!(id, ObjectId(7));
                assert_eq!(k, 25);
                assert_eq!(mode, QueryMode::BruteForceSketch);
                assert_eq!(filter.query_segments, 3);
                assert_eq!(filter.candidates_per_segment, 80);
                assert_eq!(filter.base_threshold, Some(12));
                assert_eq!(attr.as_deref(), Some("collection:corel AND dog"));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_mode_aliases() {
        for (alias, mode) in [
            ("brute", QueryMode::BruteForceOriginal),
            ("brute-force-original", QueryMode::BruteForceOriginal),
            ("sketch", QueryMode::BruteForceSketch),
            ("filtering", QueryMode::Filtering),
        ] {
            match parse_command(&format!("query id=1 mode={alias}")).unwrap() {
                Command::Query { mode: m, .. } => assert_eq!(m, mode, "{alias}"),
                other => panic!("wrong command {other:?}"),
            }
        }
    }

    #[test]
    fn parse_other_commands() {
        assert_eq!(
            parse_command("attr collection:corel AND dog").unwrap(),
            Command::Attr {
                expression: "collection:corel AND dog".into()
            }
        );
        assert_eq!(
            parse_command("delete id=9").unwrap(),
            Command::Delete { id: ObjectId(9) }
        );
        assert_eq!(parse_command("stat").unwrap(), Command::Stat);
        assert_eq!(parse_command("help").unwrap(), Command::Help);
        assert_eq!(parse_command("quit").unwrap(), Command::Quit);
        assert_eq!(parse_command("exit").unwrap(), Command::Quit);
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "   ",
            "frobnicate",
            "query",
            "query id=abc",
            "query id=1 k=x",
            "query id=1 mode=warp",
            "query id=1 bogus=3",
            "query id=1 attr=\"unterminated",
            "delete",
            "delete id=zz",
            "attr",
            "query id",
        ] {
            assert!(parse_command(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_weights() {
        match parse_command("query id=1 weights=0.5,0.25,0.25").unwrap() {
            Command::Query { weights, .. } => {
                assert_eq!(weights, Some(vec![0.5, 0.25, 0.25]));
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse_command("query id=1 weights=a,b").is_err());
        assert!(parse_command("query id=1 weights=").is_err());
    }

    #[test]
    fn quoted_values_keep_spaces() {
        let toks = tokenize("a=\"x y z\" b=2").unwrap();
        assert_eq!(toks, vec!["a=x y z", "b=2"]);
    }

    #[test]
    fn help_text_lists_commands() {
        for verb in ["query", "attr", "delete", "stat", "help", "quit"] {
            assert!(HELP_TEXT.contains(verb), "{verb} missing from help");
        }
    }
}
