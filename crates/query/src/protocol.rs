//! The command-line query protocol (paper §4.1.4).
//!
//! A line-oriented text protocol "designed to process client queries with
//! various parameters including the number of results to return, filter
//! parameters, and attributes". One command per line:
//!
//! ```text
//! query id=42 k=10 mode=filter r=2 cand=40 attr="collection:corel"
//! attr collection:corel AND caption:dog
//! delete id=42
//! stat
//! help
//! quit
//! ```

use ferret_core::engine::{FusionMode, QueryMode};
use ferret_core::filter::FilterParams;
use ferret_core::object::ObjectId;

use crate::fusion::FusedHit;

/// A parsed protocol command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Similarity query seeded by a stored object.
    Query {
        /// Seed object id.
        id: ObjectId,
        /// Number of results.
        k: usize,
        /// Traversal mode.
        mode: QueryMode,
        /// Filtering parameters.
        filter: FilterParams,
        /// Optional attribute pre-filter expression.
        attr: Option<String>,
        /// Optional adjusted query segment weights (paper §4.1.4).
        weights: Option<Vec<f32>>,
        /// How (whether) to fuse the attribute rank with the
        /// similarity rank. Requires `attr` when not `None`.
        fusion: FusionMode,
        /// Drop results whose similarity `1/(1+distance)` falls below
        /// this threshold.
        min_similarity: Option<f64>,
        /// Cap on the number of returned results (after fusion).
        limit: Option<usize>,
        /// Render the reply as single-line JSON instead of the text
        /// protocol's `OK`-prefixed form.
        json: bool,
    },
    /// Attribute-only search.
    Attr {
        /// The attribute query expression.
        expression: String,
    },
    /// Remove an object.
    Delete {
        /// The object to remove.
        id: ObjectId,
    },
    /// Engine statistics.
    Stat,
    /// Usage help.
    Help,
    /// Close the session.
    Quit,
}

impl Command {
    /// True for commands that only read service state.
    ///
    /// This classification is the serving concurrency contract: read
    /// commands execute through `FerretService::execute_read(&self)` under
    /// a shared (`RwLock::read`) lock, so any number of connections can
    /// run them at once; write commands take the exclusive lock.
    pub fn is_read(&self) -> bool {
        match self {
            Command::Query { .. } | Command::Attr { .. } => true,
            Command::Stat | Command::Help | Command::Quit => true,
            Command::Delete { .. } => false,
        }
    }
}

/// A structured command response, renderable as protocol text (see
/// [`render_response`]) or JSON (`http::response_to_json`).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Ranked similarity results: `(id, distance)`.
    Results(Vec<(ObjectId, f64)>),
    /// Fusion-ranked hybrid results (fused score, optional distance).
    Fused(Vec<FusedHit>),
    /// Attribute search hits.
    Ids(Vec<ObjectId>),
    /// Statistics summary.
    Stat {
        /// Stored objects.
        objects: usize,
        /// Stored segments.
        segments: usize,
        /// Sketch metadata bytes.
        sketch_bytes: usize,
        /// Feature-vector metadata bytes.
        feature_bytes: usize,
        /// Approximate filter-index bytes (0 with the scan strategy).
        index_bytes: usize,
        /// Immutable sealed index segments (0 for the monolithic layout).
        index_segments: usize,
        /// Objects in the mutable memtable (0 for the monolithic layout).
        memtable_objects: usize,
    },
    /// Help text.
    Help,
    /// Session close acknowledgment.
    Bye,
    /// Generic acknowledgment.
    Ok,
}

/// Renders a [`Response`] in the line protocol's text form: one
/// `OK`/`ERR` status line plus payload lines.
pub fn render_response(resp: &Response) -> String {
    match resp {
        Response::Results(results) => {
            let mut out = format!("OK {}\n", results.len());
            for (id, d) in results {
                out.push_str(&format!("{} {:.6}\n", id.0, d));
            }
            out
        }
        Response::Fused(hits) => {
            let mut out = format!("OK {}\n", hits.len());
            for h in hits {
                match h.distance {
                    Some(d) => out.push_str(&format!("{} {:.6} {:.6}\n", h.id.0, h.score, d)),
                    // Attribute-only hits have no similarity distance.
                    None => out.push_str(&format!("{} {:.6} -\n", h.id.0, h.score)),
                }
            }
            out
        }
        Response::Ids(ids) => {
            let mut out = format!("OK {}\n", ids.len());
            for id in ids {
                out.push_str(&format!("{}\n", id.0));
            }
            out
        }
        Response::Stat {
            objects,
            segments,
            sketch_bytes,
            feature_bytes,
            index_bytes,
            index_segments,
            memtable_objects,
        } => {
            format!(
                "OK 7\nobjects {objects}\nsegments {segments}\nsketch_bytes {sketch_bytes}\nfeature_bytes {feature_bytes}\nindex_bytes {index_bytes}\nindex_segments {index_segments}\nmemtable_objects {memtable_objects}\n"
            )
        }
        Response::Help => format!("OK help\n{HELP_TEXT}\n"),
        Response::Bye => "OK bye\n".to_string(),
        Response::Ok => "OK\n".to_string(),
    }
}

/// Renders an error in the line protocol's text form (`ERR <message>`).
pub fn render_error(message: &dyn std::fmt::Display) -> String {
    format!("ERR {message}\n")
}

/// The protocol line an overloaded server answers with when admission
/// control rejects a query (clients should back off and retry).
pub const BUSY_LINE: &str = "ERR BUSY too many in-flight queries, retry later\n";

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a service [`Response`] as JSON.
pub fn response_to_json(resp: &Response) -> String {
    match resp {
        Response::Results(results) => {
            let items: Vec<String> = results
                .iter()
                .map(|(id, d)| format!("{{\"id\":{},\"distance\":{:.6}}}", id.0, d))
                .collect();
            format!("{{\"ok\":true,\"results\":[{}]}}", items.join(","))
        }
        Response::Fused(hits) => {
            let items: Vec<String> = hits
                .iter()
                .map(|h| match h.distance {
                    Some(d) => format!(
                        "{{\"id\":{},\"score\":{:.6},\"distance\":{:.6}}}",
                        h.id.0, h.score, d
                    ),
                    None => format!(
                        "{{\"id\":{},\"score\":{:.6},\"distance\":null}}",
                        h.id.0, h.score
                    ),
                })
                .collect();
            format!("{{\"ok\":true,\"results\":[{}]}}", items.join(","))
        }
        Response::Ids(ids) => {
            let items: Vec<String> = ids.iter().map(|id| id.0.to_string()).collect();
            format!("{{\"ok\":true,\"ids\":[{}]}}", items.join(","))
        }
        Response::Stat {
            objects,
            segments,
            sketch_bytes,
            feature_bytes,
            index_bytes,
            index_segments,
            memtable_objects,
        } => format!(
            "{{\"ok\":true,\"objects\":{objects},\"segments\":{segments},\"sketch_bytes\":{sketch_bytes},\"feature_bytes\":{feature_bytes},\"index_bytes\":{index_bytes},\"index_segments\":{index_segments},\"memtable_objects\":{memtable_objects}}}"
        ),
        Response::Help => format!("{{\"ok\":true,\"help\":\"{}\"}}", json_escape(HELP_TEXT)),
        Response::Bye | Response::Ok => "{\"ok\":true}".to_string(),
    }
}

/// Renders a reply in the form the command asked for: single-line JSON
/// when the command was a `format=json` query, otherwise the text
/// protocol. Errors always render as `ERR` text lines regardless of the
/// requested format, so a client can detect failure without parsing.
pub fn render_reply(cmd: &Command, resp: &Response) -> String {
    if matches!(cmd, Command::Query { json: true, .. }) {
        let mut out = response_to_json(resp);
        out.push('\n');
        return out;
    }
    render_response(resp)
}

impl Response {
    /// Renders the protocol text form ([`render_response`]).
    pub fn render(&self) -> String {
        render_response(self)
    }
}

/// A protocol parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

/// Splits a command line into whitespace-separated tokens, honoring
/// double-quoted values in `key="..."` arguments.
fn tokenize(line: &str) -> Result<Vec<String>, ProtocolError> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut quoted = false;
    for c in line.chars() {
        match c {
            '"' => quoted = !quoted,
            c if c.is_whitespace() && !quoted => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            c => current.push(c),
        }
    }
    if quoted {
        return Err(ProtocolError("unterminated quote".into()));
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    Ok(tokens)
}

fn parse_kv(token: &str) -> Result<(&str, &str), ProtocolError> {
    token
        .split_once('=')
        .ok_or_else(|| ProtocolError(format!("expected key=value, got {token:?}")))
}

/// Parses one protocol line.
pub fn parse_command(line: &str) -> Result<Command, ProtocolError> {
    let tokens = tokenize(line)?;
    let Some(verb) = tokens.first() else {
        return Err(ProtocolError("empty command".into()));
    };
    match verb.as_str() {
        "query" => {
            let mut id: Option<u64> = None;
            let mut k = 10usize;
            let mut mode = QueryMode::Filtering;
            let mut filter = FilterParams::default();
            let mut attr = None;
            let mut weights = None;
            let mut fusion_name: Option<String> = None;
            let mut rrfk: Option<u32> = None;
            let mut fw: Option<f64> = None;
            let mut min_similarity: Option<f64> = None;
            let mut limit: Option<usize> = None;
            let mut json = false;
            for token in &tokens[1..] {
                let (key, value) = parse_kv(token)?;
                match key {
                    "id" => {
                        id = Some(
                            value
                                .parse()
                                .map_err(|_| ProtocolError(format!("invalid id {value:?}")))?,
                        );
                    }
                    "k" => {
                        k = value
                            .parse()
                            .map_err(|_| ProtocolError(format!("invalid k {value:?}")))?;
                    }
                    "mode" => {
                        mode = match value {
                            "brute" | "brute-force-original" => QueryMode::BruteForceOriginal,
                            "sketch" | "brute-force-sketch" => QueryMode::BruteForceSketch,
                            "filter" | "filtering" => QueryMode::Filtering,
                            other => {
                                return Err(ProtocolError(format!("unknown mode {other:?}")));
                            }
                        };
                    }
                    "r" => {
                        filter.query_segments = value
                            .parse()
                            .map_err(|_| ProtocolError(format!("invalid r {value:?}")))?;
                    }
                    "cand" => {
                        filter.candidates_per_segment = value
                            .parse()
                            .map_err(|_| ProtocolError(format!("invalid cand {value:?}")))?;
                    }
                    "threshold" => {
                        filter.base_threshold =
                            Some(value.parse().map_err(|_| {
                                ProtocolError(format!("invalid threshold {value:?}"))
                            })?);
                    }
                    "attr" => attr = Some(value.to_string()),
                    "fusion" => {
                        match value {
                            "none" | "rrf" | "weighted" => {}
                            other => {
                                return Err(ProtocolError(format!("unknown fusion {other:?}")));
                            }
                        }
                        fusion_name = Some(value.to_string());
                    }
                    "rrfk" => {
                        let parsed: u32 = value
                            .parse()
                            .map_err(|_| ProtocolError(format!("invalid rrfk {value:?}")))?;
                        if parsed == 0 {
                            return Err(ProtocolError("rrfk must be >= 1".into()));
                        }
                        rrfk = Some(parsed);
                    }
                    "fw" => {
                        let parsed: f64 = value
                            .parse()
                            .map_err(|_| ProtocolError(format!("invalid fw {value:?}")))?;
                        if !parsed.is_finite() || !(0.0..=1.0).contains(&parsed) {
                            return Err(ProtocolError(format!("fw {value:?} outside [0, 1]")));
                        }
                        fw = Some(parsed);
                    }
                    "minsim" => {
                        let parsed: f64 = value
                            .parse()
                            .map_err(|_| ProtocolError(format!("invalid minsim {value:?}")))?;
                        if !parsed.is_finite() || !(0.0..=1.0).contains(&parsed) {
                            return Err(ProtocolError(format!("minsim {value:?} outside [0, 1]")));
                        }
                        min_similarity = Some(parsed);
                    }
                    "limit" => {
                        let parsed: usize = value
                            .parse()
                            .map_err(|_| ProtocolError(format!("invalid limit {value:?}")))?;
                        if parsed == 0 {
                            return Err(ProtocolError("limit must be >= 1".into()));
                        }
                        limit = Some(parsed);
                    }
                    "format" => {
                        json = match value {
                            "text" => false,
                            "json" => true,
                            other => {
                                return Err(ProtocolError(format!("unknown format {other:?}")));
                            }
                        };
                    }
                    "weights" => {
                        let parsed: Result<Vec<f32>, _> =
                            value.split(',').map(str::parse::<f32>).collect();
                        weights =
                            Some(parsed.map_err(|_| {
                                ProtocolError(format!("invalid weights {value:?}"))
                            })?);
                    }
                    other => {
                        return Err(ProtocolError(format!("unknown parameter {other:?}")));
                    }
                }
            }
            let id = id.ok_or_else(|| ProtocolError("query requires id=<n>".into()))?;
            // Cross-parameter validation: fusion needs an attribute
            // ranking to blend with, and each tuning knob belongs to
            // exactly one fusion rule.
            let fusion = match fusion_name.as_deref() {
                None | Some("none") => {
                    if rrfk.is_some() {
                        return Err(ProtocolError("rrfk requires fusion=rrf".into()));
                    }
                    if fw.is_some() {
                        return Err(ProtocolError("fw requires fusion=weighted".into()));
                    }
                    FusionMode::None
                }
                Some("rrf") => {
                    if fw.is_some() {
                        return Err(ProtocolError("fw requires fusion=weighted".into()));
                    }
                    FusionMode::Rrf {
                        k: rrfk.unwrap_or(60),
                    }
                }
                Some("weighted") => {
                    if rrfk.is_some() {
                        return Err(ProtocolError("rrfk requires fusion=rrf".into()));
                    }
                    FusionMode::Weighted {
                        attr_weight: fw.unwrap_or(0.5),
                    }
                }
                Some(_) => unreachable!("fusion names validated at parse"),
            };
            if fusion != FusionMode::None && attr.is_none() {
                return Err(ProtocolError(
                    "fusion requires attr=\"<expr>\" to rank against".into(),
                ));
            }
            Ok(Command::Query {
                id: ObjectId(id),
                k,
                mode,
                filter,
                attr,
                weights,
                fusion,
                min_similarity,
                limit,
                json,
            })
        }
        "attr" => {
            if tokens.len() < 2 {
                return Err(ProtocolError("attr requires an expression".into()));
            }
            Ok(Command::Attr {
                expression: tokens[1..].join(" "),
            })
        }
        "delete" => {
            let mut id = None;
            for token in &tokens[1..] {
                let (key, value) = parse_kv(token)?;
                if key == "id" {
                    id = Some(
                        value
                            .parse()
                            .map_err(|_| ProtocolError(format!("invalid id {value:?}")))?,
                    );
                }
            }
            let id = id.ok_or_else(|| ProtocolError("delete requires id=<n>".into()))?;
            Ok(Command::Delete { id: ObjectId(id) })
        }
        "stat" => Ok(Command::Stat),
        "help" => Ok(Command::Help),
        "quit" | "exit" => Ok(Command::Quit),
        other => Err(ProtocolError(format!("unknown command {other:?}"))),
    }
}

/// The help text returned for `help`.
pub const HELP_TEXT: &str = "\
commands:
  query id=<n> [k=<n>] [mode=brute|sketch|filter] [r=<n>] [cand=<n>] [threshold=<bits>] [attr=\"<expr>\"] [weights=<w1,w2,...>]
        [fusion=none|rrf|weighted] [rrfk=<n>] [fw=<0..1>] [minsim=<0..1>] [limit=<n>] [format=text|json]
  attr <expression>
  delete id=<n>
  stat
  help
  quit";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal_query() {
        let cmd = parse_command("query id=42").unwrap();
        match cmd {
            Command::Query {
                id, k, mode, attr, ..
            } => {
                assert_eq!(id, ObjectId(42));
                assert_eq!(k, 10);
                assert_eq!(mode, QueryMode::Filtering);
                assert!(attr.is_none());
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_full_query() {
        let cmd = parse_command(
            "query id=7 k=25 mode=sketch r=3 cand=80 threshold=12 attr=\"collection:corel AND dog\"",
        )
        .unwrap();
        match cmd {
            Command::Query {
                id,
                k,
                mode,
                filter,
                attr,
                ..
            } => {
                assert_eq!(id, ObjectId(7));
                assert_eq!(k, 25);
                assert_eq!(mode, QueryMode::BruteForceSketch);
                assert_eq!(filter.query_segments, 3);
                assert_eq!(filter.candidates_per_segment, 80);
                assert_eq!(filter.base_threshold, Some(12));
                assert_eq!(attr.as_deref(), Some("collection:corel AND dog"));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_mode_aliases() {
        for (alias, mode) in [
            ("brute", QueryMode::BruteForceOriginal),
            ("brute-force-original", QueryMode::BruteForceOriginal),
            ("sketch", QueryMode::BruteForceSketch),
            ("filtering", QueryMode::Filtering),
        ] {
            match parse_command(&format!("query id=1 mode={alias}")).unwrap() {
                Command::Query { mode: m, .. } => assert_eq!(m, mode, "{alias}"),
                other => panic!("wrong command {other:?}"),
            }
        }
    }

    #[test]
    fn parse_other_commands() {
        assert_eq!(
            parse_command("attr collection:corel AND dog").unwrap(),
            Command::Attr {
                expression: "collection:corel AND dog".into()
            }
        );
        assert_eq!(
            parse_command("delete id=9").unwrap(),
            Command::Delete { id: ObjectId(9) }
        );
        assert_eq!(parse_command("stat").unwrap(), Command::Stat);
        assert_eq!(parse_command("help").unwrap(), Command::Help);
        assert_eq!(parse_command("quit").unwrap(), Command::Quit);
        assert_eq!(parse_command("exit").unwrap(), Command::Quit);
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "   ",
            "frobnicate",
            "query",
            "query id=abc",
            "query id=1 k=x",
            "query id=1 mode=warp",
            "query id=1 bogus=3",
            "query id=1 attr=\"unterminated",
            "delete",
            "delete id=zz",
            "attr",
            "query id",
        ] {
            assert!(parse_command(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_weights() {
        match parse_command("query id=1 weights=0.5,0.25,0.25").unwrap() {
            Command::Query { weights, .. } => {
                assert_eq!(weights, Some(vec![0.5, 0.25, 0.25]));
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse_command("query id=1 weights=a,b").is_err());
        assert!(parse_command("query id=1 weights=").is_err());
    }

    #[test]
    fn quoted_values_keep_spaces() {
        let toks = tokenize("a=\"x y z\" b=2").unwrap();
        assert_eq!(toks, vec!["a=x y z", "b=2"]);
    }

    #[test]
    fn parse_fusion_query() {
        match parse_command("query id=1 attr=\"collection:corel\" fusion=rrf rrfk=30").unwrap() {
            Command::Query { fusion, .. } => assert_eq!(fusion, FusionMode::Rrf { k: 30 }),
            other => panic!("wrong command {other:?}"),
        }
        // Defaults: rrfk=60, fw=0.5.
        match parse_command("query id=1 attr=\"dog\" fusion=rrf").unwrap() {
            Command::Query { fusion, .. } => assert_eq!(fusion, FusionMode::Rrf { k: 60 }),
            other => panic!("wrong command {other:?}"),
        }
        match parse_command("query id=1 attr=\"dog\" fusion=weighted fw=0.75").unwrap() {
            Command::Query { fusion, .. } => {
                assert_eq!(fusion, FusionMode::Weighted { attr_weight: 0.75 });
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse_command("query id=1 attr=\"dog\" fusion=weighted").unwrap() {
            Command::Query { fusion, .. } => {
                assert_eq!(fusion, FusionMode::Weighted { attr_weight: 0.5 });
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_shape_and_format() {
        match parse_command("query id=1 minsim=0.25 limit=5 format=json").unwrap() {
            Command::Query {
                min_similarity,
                limit,
                json,
                ..
            } => {
                assert_eq!(min_similarity, Some(0.25));
                assert_eq!(limit, Some(5));
                assert!(json);
            }
            other => panic!("wrong command {other:?}"),
        }
        // format=text is the explicit default.
        match parse_command("query id=1 format=text").unwrap() {
            Command::Query { json, .. } => assert!(!json),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn fusion_parameter_combinations_are_validated() {
        for bad in [
            // Fusion without an attribute ranking to blend with.
            "query id=1 fusion=rrf",
            "query id=1 fusion=weighted",
            // Knobs tied to the wrong (or no) fusion rule.
            "query id=1 attr=\"dog\" rrfk=10",
            "query id=1 attr=\"dog\" fw=0.5",
            "query id=1 attr=\"dog\" fusion=rrf fw=0.5",
            "query id=1 attr=\"dog\" fusion=weighted rrfk=10",
            "query id=1 attr=\"dog\" fusion=none rrfk=10",
            // Out-of-range values.
            "query id=1 attr=\"dog\" fusion=rrf rrfk=0",
            "query id=1 attr=\"dog\" fusion=weighted fw=1.5",
            "query id=1 attr=\"dog\" fusion=weighted fw=nan",
            "query id=1 minsim=1.5",
            "query id=1 minsim=-0.1",
            "query id=1 minsim=abc",
            "query id=1 limit=0",
            "query id=1 limit=x",
            "query id=1 fusion=bogus",
            "query id=1 format=xml",
        ] {
            assert!(parse_command(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn render_fused_text_and_json() {
        let resp = Response::Fused(vec![
            FusedHit {
                id: ObjectId(3),
                score: 0.5,
                distance: Some(0.125),
            },
            FusedHit {
                id: ObjectId(9),
                score: 0.25,
                distance: None,
            },
        ]);
        assert_eq!(
            render_response(&resp),
            "OK 2\n3 0.500000 0.125000\n9 0.250000 -\n"
        );
        assert_eq!(
            response_to_json(&resp),
            "{\"ok\":true,\"results\":[{\"id\":3,\"score\":0.500000,\"distance\":0.125000},{\"id\":9,\"score\":0.250000,\"distance\":null}]}"
        );
    }

    #[test]
    fn render_reply_honors_requested_format() {
        let resp = Response::Results(vec![(ObjectId(1), 0.5)]);
        let text_cmd = parse_command("query id=1").unwrap();
        let json_cmd = parse_command("query id=1 format=json").unwrap();
        assert_eq!(render_reply(&text_cmd, &resp), render_response(&resp));
        assert_eq!(
            render_reply(&json_cmd, &resp),
            "{\"ok\":true,\"results\":[{\"id\":1,\"distance\":0.500000}]}\n"
        );
        // Non-query commands always use the text protocol.
        assert_eq!(
            render_reply(&Command::Stat, &Response::Ok),
            render_response(&Response::Ok)
        );
    }

    #[test]
    fn help_text_lists_commands() {
        for verb in ["query", "attr", "delete", "stat", "help", "quit"] {
            assert!(HELP_TEXT.contains(verb), "{verb} missing from help");
        }
    }
}
