//! Minimal web interface (paper §4.3).
//!
//! "The web interface provides users with a simple, yet platform
//! independent way to issue query and present search results." The paper
//! used a small Python web server speaking the command-line protocol; here
//! a dependency-free HTTP/1.1 server maps `GET` endpoints onto the same
//! service:
//!
//! * `GET /search?id=42&k=10&mode=filter&attr=<urlencoded>` → JSON results
//! * `GET /attr?q=<urlencoded expression>` → JSON id list
//! * `GET /stat` → JSON statistics
//! * `GET /metrics` → Prometheus text exposition (telemetry must be on)
//! * `GET /trace?id=<n>` → stage breakdown of a recent query as JSON
//! * `GET /` → a small HTML query form

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use crate::admission::AdmissionControl;
use crate::server::{ConnQueue, ServeConfig};
use crate::service::FerretService;

/// Percent-decodes a URL component (`%41` → `A`, `+` → space).
pub fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                // Two hex digits must follow; otherwise keep the literal '%'.
                if i + 3 <= bytes.len() {
                    let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).unwrap_or("");
                    if let Ok(v) = u8::from_str_radix(hex, 16) {
                        out.push(v);
                        i += 3;
                        continue;
                    }
                }
                out.push(b'%');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parses a query string into key/value pairs.
pub fn parse_query_string(qs: &str) -> Vec<(String, String)> {
    qs.split('&')
        .filter(|p| !p.is_empty())
        .map(|p| match p.split_once('=') {
            Some((k, v)) => (url_decode(k), url_decode(v)),
            None => (url_decode(p), String::new()),
        })
        .collect()
}

use crate::protocol::json_escape;
pub use crate::protocol::response_to_json;

const INDEX_HTML: &str = "<!DOCTYPE html>\n<html><head><title>Ferret similarity search</title></head>\n<body>\n<h1>Ferret similarity search</h1>\n<form action=\"/search\" method=\"get\">\n  seed object id: <input name=\"id\" value=\"0\">\n  results: <input name=\"k\" value=\"10\">\n  mode: <select name=\"mode\"><option>filter</option><option>sketch</option><option>brute</option></select>\n  attributes: <input name=\"attr\" value=\"\">\n  <button type=\"submit\">search</button>\n</form>\n<p>Endpoints: /search?id=&amp;k=&amp;mode=&amp;attr= &middot; /attr?q= &middot; /stat &middot; /metrics &middot; /trace?id=</p>\n</body></html>\n";

fn http_reply(status: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// Routes one HTTP request path (with query string) to a JSON/HTML reply,
/// without admission control (every query is executed).
pub fn route(
    service: &Arc<RwLock<FerretService>>,
    path_and_query: &str,
) -> (String, String, String) {
    route_with(service, None, None, path_and_query)
}

/// Routes one HTTP request with optional admission control for `/search`
/// (a saturated server answers 503 instead of queueing) and an optional
/// artificial per-query hold (load-testing knob; see
/// [`ServeConfig::hold`]).
pub fn route_with(
    service: &Arc<RwLock<FerretService>>,
    admission: Option<&Arc<AdmissionControl>>,
    hold: Option<Duration>,
    path_and_query: &str,
) -> (String, String, String) {
    let (path, qs) = match path_and_query.split_once('?') {
        Some((p, q)) => (p, q),
        None => (path_and_query, ""),
    };
    let params = parse_query_string(qs);
    let get = |key: &str| {
        params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    };
    match path {
        "/" => (
            "200 OK".into(),
            "text/html; charset=utf-8".into(),
            INDEX_HTML.into(),
        ),
        "/metrics" => {
            let registry = service.read().telemetry().cloned();
            match registry {
                Some(reg) => (
                    "200 OK".into(),
                    "text/plain; version=0.0.4; charset=utf-8".into(),
                    reg.render_prometheus(),
                ),
                None => (
                    "404 Not Found".into(),
                    "application/json".into(),
                    "{\"ok\":false,\"error\":\"telemetry disabled\"}".into(),
                ),
            }
        }
        "/trace" => {
            let svc = service.read();
            let found = match get("id") {
                Some(raw) => match raw.parse::<u64>() {
                    Ok(id) => svc.trace(id).map(|t| (id, t)),
                    Err(_) => return error_json("invalid id parameter"),
                },
                None => svc.last_trace(),
            };
            match found {
                Some((id, trace)) => (
                    "200 OK".into(),
                    "application/json".into(),
                    format!("{{\"ok\":true,\"id\":{id},\"trace\":{}}}", trace.to_json()),
                ),
                None => (
                    "404 Not Found".into(),
                    "application/json".into(),
                    "{\"ok\":false,\"error\":\"no trace recorded\"}".into(),
                ),
            }
        }
        "/stat" => {
            let svc = service.read();
            match svc.execute_read(&crate::protocol::Command::Stat) {
                Ok(resp) => (
                    "200 OK".into(),
                    "application/json".into(),
                    response_to_json(&resp),
                ),
                Err(e) => error_json(&e.to_string()),
            }
        }
        "/attr" => {
            let Some(q) = get("q") else {
                return error_json("missing q parameter");
            };
            let svc = service.read();
            match svc.execute_read(&crate::protocol::Command::Attr { expression: q }) {
                Ok(resp) => (
                    "200 OK".into(),
                    "application/json".into(),
                    response_to_json(&resp),
                ),
                Err(e) => error_json(&e.to_string()),
            }
        }
        "/search" => {
            // Rebuild a protocol line and reuse its validation.
            let mut line = String::from("query");
            if let Some(id) = get("id") {
                line.push_str(&format!(" id={id}"));
            }
            for key in [
                "k",
                "mode",
                "r",
                "cand",
                "threshold",
                "fusion",
                "rrfk",
                "fw",
                "minsim",
                "limit",
            ] {
                if let Some(v) = get(key) {
                    line.push_str(&format!(" {key}={v}"));
                }
            }
            if let Some(attr) = get("attr") {
                if !attr.is_empty() {
                    line.push_str(&format!(" attr=\"{attr}\""));
                }
            }
            match crate::protocol::parse_command(&line) {
                Ok(cmd) => {
                    // Similarity queries are what admission control
                    // meters; a saturated server answers 503 at once.
                    let _slot = match admission {
                        Some(ctl) => match ctl.try_admit() {
                            Some(guard) => Some(guard),
                            None => {
                                return (
                                    "503 Service Unavailable".into(),
                                    "application/json".into(),
                                    "{\"ok\":false,\"error\":\"BUSY too many in-flight queries, retry later\"}"
                                        .into(),
                                )
                            }
                        },
                        None => None,
                    };
                    let svc = service.read();
                    let result = svc.execute_read(&cmd);
                    drop(svc);
                    if let Some(hold) = hold {
                        std::thread::sleep(hold);
                    }
                    match result {
                        Ok(resp) => (
                            "200 OK".into(),
                            "application/json".into(),
                            response_to_json(&resp),
                        ),
                        Err(e) => error_json(&e.to_string()),
                    }
                }
                Err(e) => error_json(&e.to_string()),
            }
        }
        _ => (
            "404 Not Found".into(),
            "application/json".into(),
            "{\"ok\":false,\"error\":\"not found\"}".into(),
        ),
    }
}

fn error_json(msg: &str) -> (String, String, String) {
    (
        "400 Bad Request".into(),
        "application/json".into(),
        format!("{{\"ok\":false,\"error\":\"{}\"}}", json_escape(msg)),
    )
}

/// A running HTTP server.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Everything an HTTP worker needs to serve requests.
struct HttpContext {
    service: Arc<RwLock<FerretService>>,
    admission: Arc<AdmissionControl>,
    hold: Option<Duration>,
}

impl HttpServer {
    /// Starts the web interface on `addr` (port 0 for ephemeral) with a
    /// default [`ServeConfig`] and a private admission controller.
    pub fn start(service: Arc<RwLock<FerretService>>, addr: &str) -> std::io::Result<Self> {
        let config = ServeConfig::default();
        let registry = service.read().telemetry().cloned();
        let admission = Arc::new(AdmissionControl::new(
            config.max_inflight,
            registry.as_ref(),
        ));
        Self::start_with(service, addr, config, admission)
    }

    /// Starts the web interface with an explicit configuration and
    /// admission controller. Pass the TCP server's controller to cap
    /// in-flight queries across both surfaces.
    pub fn start_with(
        service: Arc<RwLock<FerretService>>,
        addr: &str,
        config: ServeConfig,
        admission: Arc<AdmissionControl>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let context = Arc::new(HttpContext {
            service,
            admission,
            hold: config.hold,
        });
        let queue = Arc::new(ConnQueue::new(config.queue_depth));
        let workers = config.workers.max(1);
        let handle = std::thread::spawn(move || {
            let pool: Vec<_> = (0..workers)
                .map(|_| {
                    let queue = Arc::clone(&queue);
                    let stop = Arc::clone(&stop);
                    let ctx = Arc::clone(&context);
                    std::thread::spawn(move || {
                        while let Some(stream) = queue.pop(&stop) {
                            let _ = serve_one(stream, &ctx);
                        }
                    })
                })
                .collect();
            loop {
                // ordering: Relaxed; stop flag carries no data, stop()/drop join after
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        if let Err(mut rejected) = queue.push(stream) {
                            // Connection queue full: fast 503, then close.
                            let reply = http_reply(
                                "503 Service Unavailable",
                                "application/json",
                                "{\"ok\":false,\"error\":\"server overloaded\"}",
                            );
                            let _ = rejected.write_all(reply.as_bytes());
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            queue.notify_all();
            for w in pool {
                let _ = w.join();
            }
        });
        Ok(Self {
            addr: local,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server.
    pub fn stop(mut self) {
        // ordering: Relaxed; the join below is the real synchronization point
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        // ordering: Relaxed; the join below is the real synchronization point
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Bounded label for per-endpoint metrics: known paths keep their name,
/// everything else collapses to `other` so clients cannot explode the
/// label cardinality by probing random paths.
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/" => "/",
        "/search" => "/search",
        "/attr" => "/attr",
        "/stat" => "/stat",
        "/metrics" => "/metrics",
        "/trace" => "/trace",
        _ => "other",
    }
}

fn serve_one(stream: TcpStream, context: &HttpContext) -> std::io::Result<()> {
    let service = &context.service;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next();
    let version = parts.next();
    // Drain headers.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    // A malformed request line (missing target, missing or non-HTTP
    // version, or a target that is not an absolute path) gets a proper
    // 400 reply instead of a dropped connection.
    let well_formed = target.is_some_and(|t| t.starts_with('/'))
        && version.is_some_and(|v| v.starts_with("HTTP/"));
    let reply = if !well_formed {
        http_reply(
            "400 Bad Request",
            "application/json",
            "{\"ok\":false,\"error\":\"malformed request line\"}",
        )
    } else if method != "GET" {
        http_reply(
            "405 Method Not Allowed",
            "application/json",
            "{\"ok\":false,\"error\":\"GET only\"}",
        )
    } else {
        let target = target.expect("well-formed request has a target");
        let registry = service.read().telemetry().cloned();
        let start = registry.is_some().then(Instant::now);
        let (status, ctype, body) =
            route_with(service, Some(&context.admission), context.hold, target);
        if let (Some(reg), Some(start)) = (registry, start) {
            let path = target.split_once('?').map_or(target, |(p, _)| p);
            let endpoint = endpoint_label(path);
            let code = status.split_whitespace().next().unwrap_or("0");
            reg.inc_counter(
                "ferret_http_requests_total",
                "HTTP requests served, by endpoint and status code.",
                &[("endpoint", endpoint), ("status", code)],
                1,
            );
            reg.observe_latency(
                "ferret_http_request_seconds",
                "HTTP request latency, by endpoint.",
                &[("endpoint", endpoint)],
                start.elapsed(),
            );
        }
        http_reply(&status, &ctype, &body)
    };
    writer.write_all(reply.as_bytes())?;
    writer.flush()
}

/// Fetches `path` from a running [`HttpServer`] (test/tooling helper).
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or((response.as_str(), ""));
    let status = head.lines().next().unwrap_or("").to_string();
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferret_attr::AttrsBuilder;
    use ferret_core::engine::EngineConfig;
    use ferret_core::object::{DataObject, ObjectId};
    use ferret_core::sketch::SketchParams;
    use ferret_core::vector::FeatureVector;

    fn service() -> Arc<RwLock<FerretService>> {
        let config = EngineConfig::basic(
            SketchParams::new(64, vec![0.0; 2], vec![1.0; 2]).unwrap(),
            3,
        );
        let mut svc = FerretService::in_memory(config).unwrap();
        for i in 0..4u64 {
            let x = 0.1 + i as f32 * 0.25;
            svc.insert(
                ObjectId(i),
                DataObject::single(FeatureVector::new(vec![x, x]).unwrap()),
                Some(
                    AttrsBuilder::new()
                        .keyword("parity", if i % 2 == 0 { "even" } else { "odd" })
                        .build(),
                ),
            )
            .unwrap();
        }
        Arc::new(RwLock::new(svc))
    }

    #[test]
    fn url_decoding() {
        assert_eq!(url_decode("a+b%3Ac"), "a b:c");
        assert_eq!(url_decode("plain"), "plain");
        assert_eq!(url_decode("%zz"), "%zz");
        assert_eq!(url_decode("trailing%"), "trailing%");
        // Truncated escape: only one hex digit follows the '%'.
        assert_eq!(url_decode("%4"), "%4");
        assert_eq!(url_decode("a%4"), "a%4");
        // '+' is a space even when adjacent to escapes.
        assert_eq!(url_decode("+%41+"), " A ");
        // An embedded NUL byte decodes without truncating the string.
        assert_eq!(url_decode("a%00b"), "a\0b");
        // Invalid UTF-8 from decoded bytes is replaced, not panicked on.
        assert_eq!(url_decode("%ff"), "\u{fffd}");
        assert_eq!(
            parse_query_string("id=1&attr=a%20b&flag"),
            vec![
                ("id".to_string(), "1".to_string()),
                ("attr".to_string(), "a b".to_string()),
                ("flag".to_string(), String::new())
            ]
        );
    }

    #[test]
    fn routes_without_network() {
        let svc = service();
        let (status, _, body) = route(&svc, "/stat");
        assert_eq!(status, "200 OK");
        assert!(body.contains("\"objects\":4"), "{body}");
        let (status, _, body) = route(&svc, "/search?id=0&k=2&mode=brute");
        assert_eq!(status, "200 OK");
        assert!(body.contains("\"id\":0"), "{body}");
        let (status, _, body) = route(&svc, "/attr?q=parity%3Aeven");
        assert_eq!(status, "200 OK");
        assert!(body.contains("\"ids\":[0,2]"), "{body}");
        let (status, _, _) = route(&svc, "/nope");
        assert_eq!(status, "404 Not Found");
        let (status, _, body) = route(&svc, "/search?id=99");
        assert_eq!(status, "400 Bad Request");
        assert!(body.contains("unknown object"), "{body}");
        let (_, ctype, body) = route(&svc, "/");
        assert!(ctype.contains("text/html"));
        assert!(body.contains("<form"));
    }

    #[test]
    fn http_server_end_to_end() {
        let server = HttpServer::start(service(), "127.0.0.1:0").unwrap();
        let (status, body) = http_get(server.addr(), "/search?id=1&k=2&mode=sketch").unwrap();
        assert!(status.contains("200"), "{status}");
        assert!(body.starts_with("{\"ok\":true"), "{body}");
        let (status, body) = http_get(server.addr(), "/stat").unwrap();
        assert!(status.contains("200"));
        assert!(body.contains("\"segments\":4"));
        server.stop();
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn metrics_and_trace_routes() {
        let svc = service();
        // Telemetry off: /metrics and /trace report their absence.
        let (status, _, body) = route(&svc, "/metrics");
        assert_eq!(status, "404 Not Found");
        assert!(body.contains("telemetry disabled"), "{body}");

        let registry = Arc::new(ferret_core::telemetry::MetricsRegistry::new());
        svc.write().enable_telemetry(Arc::clone(&registry));
        let (status, _, body) = route(&svc, "/trace");
        assert_eq!(status, "404 Not Found");
        assert!(body.contains("no trace recorded"), "{body}");
        let (status, _, body) = route(&svc, "/trace?id=borked");
        assert_eq!(status, "400 Bad Request");
        assert!(body.contains("invalid id"), "{body}");

        // A query populates both the registry and the trace ring.
        let (status, _, _) = route(&svc, "/search?id=0&k=2&mode=filter");
        assert_eq!(status, "200 OK");
        let (status, ctype, body) = route(&svc, "/metrics");
        assert_eq!(status, "200 OK");
        assert!(ctype.starts_with("text/plain"), "{ctype}");
        assert!(
            body.contains("ferret_queries_total{mode=\"filtering\"} 1"),
            "{body}"
        );
        assert!(body.contains("ferret_query_seconds_count"), "{body}");
        let (status, _, body) = route(&svc, "/trace");
        assert_eq!(status, "200 OK");
        assert!(body.contains("\"mode\":\"filtering\""), "{body}");
        let (status, _, body) = route(&svc, "/trace?id=999");
        assert_eq!(status, "404 Not Found");
        assert!(body.contains("no trace"), "{body}");
    }

    /// Sends raw bytes as an HTTP request and returns the status line.
    fn raw_request(addr: SocketAddr, payload: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(payload.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response.lines().next().unwrap_or("").to_string()
    }

    #[test]
    fn malformed_request_lines_get_400_not_dropped() {
        let server = HttpServer::start(service(), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        // No target or version at all.
        assert!(raw_request(addr, "GET\r\n\r\n").contains("400"));
        // Target does not start with '/'.
        assert!(raw_request(addr, "GET nope HTTP/1.1\r\n\r\n").contains("400"));
        // Version token is not HTTP/x.
        assert!(raw_request(addr, "GET / FTP/1.0\r\n\r\n").contains("400"));
        // Garbage line.
        assert!(raw_request(addr, "??\r\n\r\n").contains("400"));
        // Non-GET methods still get 405, unknown endpoints 404.
        assert!(raw_request(addr, "POST /stat HTTP/1.1\r\n\r\n").contains("405"));
        assert!(raw_request(addr, "GET /nope HTTP/1.1\r\n\r\n").contains("404"));
        server.stop();
    }

    #[test]
    fn saturated_search_gets_503_then_recovers() {
        let svc = service();
        let registry = Arc::new(ferret_core::telemetry::MetricsRegistry::new());
        svc.write().enable_telemetry(Arc::clone(&registry));
        let admission = Arc::new(AdmissionControl::new(1, Some(&registry)));
        let held = admission.try_admit().unwrap();
        let (status, _, body) =
            route_with(&svc, Some(&admission), None, "/search?id=0&k=2&mode=brute");
        assert_eq!(status, "503 Service Unavailable");
        assert!(body.contains("BUSY"), "{body}");
        // Non-query endpoints are never metered by admission.
        let (status, _, _) = route_with(&svc, Some(&admission), None, "/stat");
        assert_eq!(status, "200 OK");
        drop(held);
        let (status, _, _) =
            route_with(&svc, Some(&admission), None, "/search?id=0&k=2&mode=brute");
        assert_eq!(status, "200 OK");
        assert_eq!(
            registry.counter_value("ferret_rejected_total", &[]),
            Some(1)
        );
    }

    #[test]
    fn http_requests_recorded_in_registry() {
        let svc = service();
        let registry = Arc::new(ferret_core::telemetry::MetricsRegistry::new());
        svc.write().enable_telemetry(Arc::clone(&registry));
        let server = HttpServer::start(svc, "127.0.0.1:0").unwrap();
        let (status, _) = http_get(server.addr(), "/stat").unwrap();
        assert!(status.contains("200"));
        let (status, _) = http_get(server.addr(), "/definitely-not-real").unwrap();
        assert!(status.contains("404"));
        server.stop();
        assert_eq!(
            registry.counter_value(
                "ferret_http_requests_total",
                &[("endpoint", "/stat"), ("status", "200")],
            ),
            Some(1)
        );
        assert_eq!(
            registry.counter_value(
                "ferret_http_requests_total",
                &[("endpoint", "other"), ("status", "404")],
            ),
            Some(1)
        );
        let snap = registry
            .histogram_snapshot("ferret_http_request_seconds", &[("endpoint", "/stat")])
            .unwrap();
        assert_eq!(snap.count, 1);
    }
}
