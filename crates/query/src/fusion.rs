//! Fusion ranking: blending an attribute-match ranking with a
//! similarity (EMD/sketch) ranking into one deterministic total order.
//!
//! Two merge rules are offered, both standard in metasearch/IR:
//!
//! * **Reciprocal rank fusion** (RRF): each list contributes
//!   `1 / (K + rank)` per hit, ranks starting at 1. Robust to
//!   incomparable score scales because only positions matter.
//! * **Weighted score merge**: normalizes each list's scores into
//!   `[0, 1]` (similarity via `1 / (1 + distance)`, attribute scores by
//!   the list maximum) and blends them as
//!   `attr_weight * attr + (1 - attr_weight) * sim`.
//!
//! Both sort the fused hits by `(score descending, object id
//! ascending)` — a total order (scores compared via `f64::total_cmp`),
//! so equal-score ties always break toward the smaller id and repeated
//! runs are byte-identical.

use std::collections::HashMap;

use ferret_core::engine::similarity_from_distance;
use ferret_core::object::ObjectId;

/// One fused hit: the blended score plus, when the object appeared in
/// the similarity list, its raw distance.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedHit {
    /// The object.
    pub id: ObjectId,
    /// The fused score (higher is better).
    pub score: f64,
    /// Raw similarity distance, if the object was similarity-ranked.
    /// `None` means the hit came from the attribute list alone.
    pub distance: Option<f64>,
}

/// Ranks a scored attribute result map: `(score descending, id
/// ascending)`, so equal-score attribute matches are ordered by id.
pub fn rank_attr_scores(scores: &HashMap<ObjectId, f64>) -> Vec<(ObjectId, f64)> {
    let mut ranked: Vec<(ObjectId, f64)> = scores.iter().map(|(&id, &s)| (id, s)).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked
}

fn sort_fused(hits: &mut [FusedHit]) {
    hits.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.id.cmp(&b.id)));
}

/// Reciprocal rank fusion of a similarity ranking (id, distance; best
/// first) and an attribute ranking (id, attr score; best first).
///
/// `k` is the RRF damping constant (classically 60): larger values
/// flatten the contribution difference between adjacent ranks.
pub fn rrf_fuse(sim: &[(ObjectId, f64)], attr: &[(ObjectId, f64)], k: u32) -> Vec<FusedHit> {
    let mut scores: HashMap<ObjectId, FusedHit> = HashMap::new();
    for (rank0, &(id, distance)) in sim.iter().enumerate() {
        let contrib = 1.0 / (f64::from(k) + (rank0 + 1) as f64);
        scores.insert(
            id,
            FusedHit {
                id,
                score: contrib,
                distance: Some(distance),
            },
        );
    }
    for (rank0, &(id, _)) in attr.iter().enumerate() {
        let contrib = 1.0 / (f64::from(k) + (rank0 + 1) as f64);
        scores
            .entry(id)
            .and_modify(|h| h.score += contrib)
            .or_insert(FusedHit {
                id,
                score: contrib,
                distance: None,
            });
    }
    let mut hits: Vec<FusedHit> = scores.into_values().collect();
    sort_fused(&mut hits);
    hits
}

/// Weighted score merge: similarity scores are `1 / (1 + distance)`,
/// attribute scores are normalized by the attribute list's maximum, and
/// the blend is `attr_weight * attr + (1 - attr_weight) * sim`.
///
/// `attr_weight` must already be validated into `[0, 1]` by the caller.
pub fn weighted_fuse(
    sim: &[(ObjectId, f64)],
    attr: &[(ObjectId, f64)],
    attr_weight: f64,
) -> Vec<FusedHit> {
    let sim_weight = 1.0 - attr_weight;
    let attr_max = attr
        .iter()
        .map(|&(_, s)| s)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut scores: HashMap<ObjectId, FusedHit> = HashMap::new();
    for &(id, distance) in sim {
        scores.insert(
            id,
            FusedHit {
                id,
                score: sim_weight * similarity_from_distance(distance),
                distance: Some(distance),
            },
        );
    }
    for &(id, s) in attr {
        let contrib = attr_weight * (s / attr_max);
        scores
            .entry(id)
            .and_modify(|h| h.score += contrib)
            .or_insert(FusedHit {
                id,
                score: contrib,
                distance: None,
            });
    }
    let mut hits: Vec<FusedHit> = scores.into_values().collect();
    sort_fused(&mut hits);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ObjectId {
        ObjectId(n)
    }

    #[test]
    fn rrf_prefers_objects_in_both_lists() {
        let sim = vec![(id(1), 0.1), (id(2), 0.2), (id(3), 0.3)];
        let attr = vec![(id(2), 1.0), (id(9), 1.0)];
        let fused = rrf_fuse(&sim, &attr, 60);
        // Object 2 is in both lists, so it outranks the similarity
        // winner despite a worse distance.
        assert_eq!(fused[0].id, id(2));
        assert_eq!(fused[0].distance, Some(0.2));
        // Attribute-only hits carry no distance.
        let nine = fused.iter().find(|h| h.id == id(9)).unwrap();
        assert_eq!(nine.distance, None);
    }

    #[test]
    fn rrf_equal_scores_break_toward_smaller_id() {
        // Two objects each appear only once, at the same rank of their
        // respective list: identical scores, so id order decides.
        let sim = vec![(id(7), 0.5)];
        let attr = vec![(id(3), 1.0)];
        let fused = rrf_fuse(&sim, &attr, 60);
        assert_eq!(fused[0].id, id(3));
        assert_eq!(fused[1].id, id(7));
        assert_eq!(fused[0].score, fused[1].score);
    }

    #[test]
    fn weighted_zero_attr_weight_is_pure_similarity_order() {
        let sim = vec![(id(1), 0.1), (id(2), 0.2)];
        let attr = vec![(id(2), 5.0)];
        let fused = weighted_fuse(&sim, &attr, 0.0);
        assert_eq!(fused[0].id, id(1));
        assert!((fused[0].score - similarity_from_distance(0.1)).abs() < 1e-12);
        // The attribute-only entry contributes zero but is still listed.
        assert_eq!(fused.len(), 2);
    }

    #[test]
    fn weighted_full_attr_weight_ignores_distance() {
        let sim = vec![(id(1), 0.1)];
        let attr = vec![(id(2), 2.0), (id(1), 1.0)];
        let fused = weighted_fuse(&sim, &attr, 1.0);
        assert_eq!(fused[0].id, id(2));
        assert!((fused[0].score - 1.0).abs() < 1e-12);
        assert!((fused[1].score - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_empty_attr_list_does_not_divide_by_zero() {
        let sim = vec![(id(1), 0.0)];
        let fused = weighted_fuse(&sim, &[], 0.5);
        assert_eq!(fused.len(), 1);
        assert!(fused[0].score.is_finite());
    }

    #[test]
    fn attr_rank_orders_by_score_then_id() {
        let scores = HashMap::from([(id(5), 1.0), (id(2), 2.0), (id(3), 1.0)]);
        let ranked = rank_attr_scores(&scores);
        assert_eq!(ranked, vec![(id(2), 2.0), (id(3), 1.0), (id(5), 1.0)],);
    }
}
