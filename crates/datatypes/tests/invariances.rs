//! Invariance and robustness properties of the data-type pipelines.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use ferret_core::distance::lp::L1;
use ferret_core::distance::SegmentDistance;
use ferret_core::plugin::Extractor;
use ferret_datatypes::audio::{split_segments, AudioExtractor, SegmenterConfig};
use ferret_datatypes::image::raster::{RegionShape, RegionSpec, SceneSpec};
use ferret_datatypes::image::segment::{segment, SegmenterParams};
use ferret_datatypes::image::ImageExtractor;
use ferret_datatypes::shape::{Primitive, ShapeExtractor, ShapeSpec};

/// Scaling a model uniformly must leave the spherical-harmonic descriptor
/// (nearly) unchanged: the descriptor normalizes by the maximal radius.
#[test]
fn shape_descriptor_is_scale_invariant() {
    let extractor = ShapeExtractor::with_grid(40);
    let base = |s: f64| {
        ShapeSpec::unrotated(vec![
            Primitive::Cuboid {
                center: [0.1 * s, 0.0, 0.0],
                half: [0.5 * s, 0.12 * s, 0.12 * s],
            },
            Primitive::Ellipsoid {
                center: [-0.2 * s, 0.15 * s, 0.0],
                radii: [0.18 * s, 0.18 * s, 0.18 * s],
            },
        ])
    };
    let d1 = extractor.extract_spec(&base(1.0)).unwrap();
    let d2 = extractor.extract_spec(&base(0.55)).unwrap();
    let sphere = extractor
        .extract_spec(&ShapeSpec::unrotated(vec![Primitive::Ellipsoid {
            center: [0.0; 3],
            radii: [0.5, 0.5, 0.5],
        }]))
        .unwrap();
    let v = |o: &ferret_core::object::DataObject| o.segment(0).vector.components().to_vec();
    let scale_dist = L1.eval(&v(&d1), &v(&d2));
    let other_dist = L1.eval(&v(&d1), &v(&sphere));
    assert!(
        scale_dist < other_dist * 0.4,
        "scaled dist {scale_dist} vs other-shape dist {other_dist}"
    );
}

/// Translating a model must also leave the descriptor (nearly) unchanged:
/// shells are centered on the center of mass.
#[test]
fn shape_descriptor_is_translation_invariant() {
    let extractor = ShapeExtractor::with_grid(40);
    let bar = |dx: f64, dy: f64| {
        ShapeSpec::unrotated(vec![Primitive::Cuboid {
            center: [dx, dy, 0.0],
            half: [0.35, 0.1, 0.1],
        }])
    };
    let d1 = extractor.extract_spec(&bar(0.0, 0.0)).unwrap();
    let d2 = extractor.extract_spec(&bar(0.3, -0.25)).unwrap();
    let sphere = extractor
        .extract_spec(&ShapeSpec::unrotated(vec![Primitive::Ellipsoid {
            center: [0.0; 3],
            radii: [0.4, 0.4, 0.4],
        }]))
        .unwrap();
    let v = |o: &ferret_core::object::DataObject| o.segment(0).vector.components().to_vec();
    let translate_dist = L1.eval(&v(&d1), &v(&d2));
    let other_dist = L1.eval(&v(&d1), &v(&sphere));
    assert!(
        translate_dist < other_dist * 0.4,
        "translated dist {translate_dist} vs other-shape dist {other_dist}"
    );
}

/// The image extractor must be insensitive to mirror-flipping noise seeds:
/// the same scene rendered with two different noise realizations gives
/// nearly identical features.
#[test]
fn image_features_robust_to_noise_realization() {
    let scene = SceneSpec {
        background: [0.15, 0.2, 0.75],
        regions: vec![
            RegionSpec {
                shape: RegionShape::Rect,
                cx: 0.3,
                cy: 0.4,
                rx: 0.2,
                ry: 0.25,
                color: [0.85, 0.2, 0.15],
            },
            RegionSpec {
                shape: RegionShape::Ellipse,
                cx: 0.7,
                cy: 0.65,
                rx: 0.18,
                ry: 0.15,
                color: [0.2, 0.8, 0.25],
            },
        ],
    };
    let extractor = ImageExtractor::new(3);
    let mut rng1 = ChaCha8Rng::seed_from_u64(100);
    let mut rng2 = ChaCha8Rng::seed_from_u64(200);
    let o1 = extractor
        .extract(&scene.render(48, 48, 0.02, &mut rng1))
        .unwrap();
    let o2 = extractor
        .extract(&scene.render(48, 48, 0.02, &mut rng2))
        .unwrap();
    assert_eq!(o1.num_segments(), o2.num_segments());
    // EMD between the two realizations is small compared to the spread of
    // random scenes (≈ 2–6 in thresholded-l1 units).
    let emd = ferret_core::distance::emd::Emd::new(L1);
    use ferret_core::distance::ObjectDistance;
    let d = emd.distance(&o1, &o2).unwrap();
    assert!(d < 0.5, "noise realizations too far apart: {d}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Segmentation always yields compact labels covering the raster, and
    /// the extractor always produces valid normalized objects.
    #[test]
    fn segmentation_always_valid(seed in 0u64..500) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let scene = ferret_datatypes::image::random_scene(&mut rng);
        let raster = scene.render(32, 32, 0.03, &mut rng);
        let seg = segment(&raster, &SegmenterParams::default(), &mut rng);
        let n = seg.num_segments();
        prop_assert!(n >= 1);
        let max = *seg.labels().iter().max().unwrap() as usize;
        prop_assert_eq!(max + 1, n, "labels not compact");
        // The extractor runs its own (differently seeded) segmentation;
        // its object must still be valid and deterministic.
        let extractor = ImageExtractor::new(seed);
        let obj = extractor.extract(&raster).unwrap();
        prop_assert!(obj.num_segments() >= 1);
        prop_assert!((obj.total_weight() - 1.0).abs() < 1e-4);
        prop_assert_eq!(&obj, &extractor.extract(&raster).unwrap());
    }

    /// The audio word splitter yields ordered, disjoint, in-bounds spans
    /// on arbitrary piecewise signals.
    #[test]
    fn audio_splitter_spans_are_sane(
        bursts in prop::collection::vec((200usize..4000, 200usize..4000), 1..6),
    ) {
        // Build alternating silence/noise bursts.
        let mut pcm = Vec::new();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        use rand::Rng;
        for (sil, act) in &bursts {
            pcm.extend(std::iter::repeat_n(0.0f32, *sil));
            for _ in 0..*act {
                pcm.push(rng.random_range(-0.5f32..0.5));
            }
        }
        let spans = split_segments(&pcm, &SegmenterConfig::word());
        for w in spans.windows(2) {
            prop_assert!(w[0].end <= w[1].start, "overlapping spans");
        }
        for s in &spans {
            prop_assert!(s.start < s.end);
            prop_assert!(s.end <= pcm.len());
        }
    }

    /// Word features always have the fixed 192-d shape, whatever the input
    /// length or content.
    #[test]
    fn audio_features_fixed_shape(len in 1usize..30_000, seed in 0u64..100) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        use rand::Rng;
        let pcm: Vec<f32> = (0..len).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        let e = AudioExtractor::new();
        let f = e.word_features(&pcm);
        prop_assert_eq!(f.dim(), 192);
        prop_assert!(f.components().iter().all(|c| c.is_finite()));
    }
}
