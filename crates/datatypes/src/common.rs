//! Shared dataset and ground-truth types for the data-type plug-ins.
//!
//! The paper's quality benchmarks (VARY, TIMIT, PSB) are collections of
//! objects plus human-defined *similarity sets*: "using any object in a
//! similarity set as the query item should retrieve the other objects in
//! the similarity set as highly ranked search results" (§6.1). The
//! synthetic generators in this crate produce the same structure with
//! planted ground truth.

use ferret_core::object::{DataObject, ObjectId};

/// A generated benchmark dataset with planted ground truth.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable dataset name.
    pub name: String,
    /// All objects with their ids.
    pub objects: Vec<(ObjectId, DataObject)>,
    /// Ground-truth similarity sets (ids into `objects`). Objects not in
    /// any set are distractors.
    pub similarity_sets: Vec<Vec<ObjectId>>,
    /// Dimensionality of the feature vectors.
    pub feature_dim: usize,
}

impl Dataset {
    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if the dataset has no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Average number of segments per object.
    pub fn avg_segments(&self) -> f64 {
        if self.objects.is_empty() {
            return 0.0;
        }
        let total: usize = self.objects.iter().map(|(_, o)| o.num_segments()).sum();
        total as f64 / self.objects.len() as f64
    }

    /// Looks up an object by id (linear scan; datasets are built once).
    pub fn object(&self, id: ObjectId) -> Option<&DataObject> {
        self.objects
            .iter()
            .find(|(oid, _)| *oid == id)
            .map(|(_, o)| o)
    }

    /// Basic sanity checks: unique ids, non-empty similarity sets whose
    /// members exist, consistent dimensionality.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = std::collections::HashSet::new();
        for (id, obj) in &self.objects {
            if !seen.insert(*id) {
                return Err(format!("duplicate object id {id}"));
            }
            if obj.dim() != self.feature_dim {
                return Err(format!(
                    "object {id} has dim {} != dataset dim {}",
                    obj.dim(),
                    self.feature_dim
                ));
            }
        }
        for (i, set) in self.similarity_sets.iter().enumerate() {
            if set.len() < 2 {
                return Err(format!("similarity set {i} has fewer than 2 members"));
            }
            for id in set {
                if !seen.contains(id) {
                    return Err(format!("similarity set {i} references missing {id}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferret_core::vector::FeatureVector;

    fn obj(x: f32) -> DataObject {
        DataObject::single(FeatureVector::new(vec![x, x]).unwrap())
    }

    fn dataset() -> Dataset {
        Dataset {
            name: "test".into(),
            objects: vec![
                (ObjectId(0), obj(0.0)),
                (ObjectId(1), obj(0.1)),
                (ObjectId(2), obj(5.0)),
            ],
            similarity_sets: vec![vec![ObjectId(0), ObjectId(1)]],
            feature_dim: 2,
        }
    }

    #[test]
    fn accessors() {
        let d = dataset();
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.avg_segments(), 1.0);
        assert!(d.object(ObjectId(2)).is_some());
        assert!(d.object(ObjectId(9)).is_none());
        d.validate().unwrap();
    }

    #[test]
    fn validate_catches_duplicates() {
        let mut d = dataset();
        d.objects.push((ObjectId(0), obj(1.0)));
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_sets() {
        let mut d = dataset();
        d.similarity_sets.push(vec![ObjectId(0)]);
        assert!(d.validate().is_err());
        let mut d = dataset();
        d.similarity_sets.push(vec![ObjectId(0), ObjectId(77)]);
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_catches_dim_mismatch() {
        let mut d = dataset();
        d.feature_dim = 3;
        assert!(d.validate().is_err());
    }
}
