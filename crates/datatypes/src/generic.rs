//! Generic pre-extracted feature-vector files.
//!
//! Not every user plugs raw media into the toolkit; many (like the
//! genomics group in §5.4) already have feature vectors. The `.fvec` text
//! format carries one object per file as weighted segments:
//!
//! ```text
//! # comment
//! <weight> <v1> <v2> ... <vD>
//! <weight> <v1> <v2> ... <vD>
//! ```
//!
//! Every data line is one segment; all lines must share a dimensionality.

use std::path::Path;

use ferret_core::error::{CoreError, Result};
use ferret_core::object::DataObject;
use ferret_core::plugin::{Extractor, FileExtractor};
use ferret_core::vector::FeatureVector;

/// Parses the `.fvec` text format into a [`DataObject`].
pub fn parse_fvec(text: &str) -> Result<DataObject> {
    let mut parts: Vec<(FeatureVector, f32)> = Vec::new();
    let mut dim: Option<usize> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut nums = Vec::new();
        for tok in line.split_whitespace() {
            let v: f32 = tok.parse().map_err(|_| {
                CoreError::Extraction(format!("fvec line {}: bad number {tok:?}", lineno + 1))
            })?;
            nums.push(v);
        }
        if nums.len() < 2 {
            return Err(CoreError::Extraction(format!(
                "fvec line {}: need a weight and at least one component",
                lineno + 1
            )));
        }
        let weight = nums[0];
        let components = nums[1..].to_vec();
        match dim {
            None => dim = Some(components.len()),
            Some(d) if d != components.len() => {
                return Err(CoreError::Extraction(format!(
                    "fvec line {}: dimensionality {} != {}",
                    lineno + 1,
                    components.len(),
                    d
                )));
            }
            Some(_) => {}
        }
        parts.push((FeatureVector::new(components)?, weight));
    }
    DataObject::new(parts)
}

/// Serializes a [`DataObject`] to the `.fvec` text format.
pub fn format_fvec(obj: &DataObject) -> String {
    let mut out = String::from("# ferret fvec: one weighted segment per line\n");
    for seg in obj.segments() {
        out.push_str(&format!("{}", seg.weight));
        for c in seg.vector.components() {
            out.push_str(&format!(" {c}"));
        }
        out.push('\n');
    }
    out
}

/// Extractor over `.fvec` file contents.
#[derive(Debug, Clone, Copy, Default)]
pub struct FvecExtractor {
    /// Expected dimensionality (0 = accept any).
    pub dim: usize,
}

impl FvecExtractor {
    /// An extractor that requires `dim`-dimensional vectors.
    pub fn new(dim: usize) -> Self {
        Self { dim }
    }
}

impl Extractor for FvecExtractor {
    type Input = str;

    fn name(&self) -> &'static str {
        "fvec"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn extract(&self, input: &str) -> Result<DataObject> {
        let obj = parse_fvec(input)?;
        if self.dim != 0 && obj.dim() != self.dim {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim,
                actual: obj.dim(),
            });
        }
        Ok(obj)
    }
}

impl FileExtractor for FvecExtractor {
    fn name(&self) -> &'static str {
        "fvec"
    }

    fn extract_file(&self, path: &Path) -> Result<DataObject> {
        // ferret-lint: allow(vfs-bypass) -- read-only load of a user input file for feature extraction; durability is not involved
        let text = std::fs::read_to_string(path)
            .map_err(|e| CoreError::Extraction(format!("read {}: {e}", path.display())))?;
        self.extract(&text)
    }
}

#[cfg(test)]
// Tests write fixture files directly; the Vfs seam is for production durability.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let obj = parse_fvec("# two segments\n1.0 0.5 0.5\n3.0 0.1 0.9\n").unwrap();
        assert_eq!(obj.num_segments(), 2);
        assert_eq!(obj.dim(), 2);
        assert!((obj.segment(0).weight - 0.25).abs() < 1e-6);
        assert!((obj.segment(1).weight - 0.75).abs() < 1e-6);
    }

    #[test]
    fn roundtrip() {
        let obj = parse_fvec("0.5 1 2 3\n0.5 4 5 6\n").unwrap();
        let text = format_fvec(&obj);
        let back = parse_fvec(&text).unwrap();
        assert_eq!(obj, back);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_fvec("").is_err());
        assert!(parse_fvec("# only comments\n").is_err());
        assert!(parse_fvec("1.0\n").is_err());
        assert!(parse_fvec("1.0 nope\n").is_err());
        assert!(parse_fvec("1.0 1 2\n1.0 1 2 3\n").is_err());
        assert!(parse_fvec("-1.0 1 2\n").is_err()); // Negative weight.
    }

    #[test]
    fn extractor_checks_dim() {
        let e = FvecExtractor::new(3);
        assert!(e.extract("1 1 2 3\n").is_ok());
        assert!(e.extract("1 1 2\n").is_err());
        assert_eq!(Extractor::name(&e), "fvec");
        assert_eq!(Extractor::dim(&e), 3);
        // Unconstrained extractor accepts anything consistent.
        assert!(FvecExtractor::default().extract("1 7\n").is_ok());
    }

    #[test]
    fn file_extractor_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ferret-fvec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("obj.fvec");
        std::fs::write(&path, "1.0 0.1 0.2\n2.0 0.3 0.4\n").unwrap();
        let e = FvecExtractor::default();
        let obj = e.extract_file(&path).unwrap();
        assert_eq!(obj.num_segments(), 2);
        assert!(e.extract_file(Path::new("/no/such/file")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
