//! Region feature extraction: 14-dimensional vectors.
//!
//! Per paper §5.1: "each image segment is represented by a 14-dimensional
//! feature vector: 9 dimensions for color moments and 5 dimensions for
//! bounding box information ... aspect ratio (width/height), bounding box
//! size, area ratio (segment size/bounding box size), and segment
//! centroids. The weight of each segment is proportional to the square
//! root of that segment's size."

use ferret_core::error::Result;
use ferret_core::object::DataObject;
use ferret_core::vector::FeatureVector;

use super::raster::Raster;
use super::segment::Segmentation;

/// Dimensionality of the image region features.
pub const IMAGE_DIM: usize = 14;

/// Per-dimension minimum values for sketching parameters.
pub fn feature_mins() -> Vec<f32> {
    // 9 color moments: means in [0,1], stddevs in [0,0.5], skews in [-1,1];
    // 5 bbox: aspect in [0,8], bbox size in [0,1], area ratio in [0,1],
    // centroid x/y in [0,1].
    vec![
        0.0, 0.0, 0.0, // channel means
        0.0, 0.0, 0.0, // channel stddevs
        -1.0, -1.0, -1.0, // channel skews (cube-rooted)
        0.0, 0.0, 0.0, 0.0, 0.0, // bbox features
    ]
}

/// Per-dimension maximum values for sketching parameters.
pub fn feature_maxs() -> Vec<f32> {
    vec![
        1.0, 1.0, 1.0, // channel means
        0.5, 0.5, 0.5, // channel stddevs
        1.0, 1.0, 1.0, // channel skews
        8.0, 1.0, 1.0, 1.0, 1.0, // bbox features
    ]
}

/// Computes the 9 color moments of a set of pixel colors: per-channel mean,
/// standard deviation, and cube-rooted skewness.
pub fn color_moments(colors: impl Iterator<Item = [f32; 3]> + Clone) -> [f32; 9] {
    let mut n = 0usize;
    let mut mean = [0.0f64; 3];
    for c in colors.clone() {
        n += 1;
        for ch in 0..3 {
            mean[ch] += f64::from(c[ch]);
        }
    }
    let nf = n.max(1) as f64;
    for m in mean.iter_mut() {
        *m /= nf;
    }
    let mut var = [0.0f64; 3];
    let mut skew = [0.0f64; 3];
    for c in colors {
        for ch in 0..3 {
            let d = f64::from(c[ch]) - mean[ch];
            var[ch] += d * d;
            skew[ch] += d * d * d;
        }
    }
    let mut out = [0.0f32; 9];
    for ch in 0..3 {
        let std = (var[ch] / nf).sqrt();
        // Cube root of the third central moment — same scale as the values.
        let sk = (skew[ch] / nf).cbrt();
        out[ch] = mean[ch] as f32;
        out[3 + ch] = std as f32;
        out[6 + ch] = sk.clamp(-1.0, 1.0) as f32;
    }
    out
}

/// Extracts the 14-d feature vector and pixel count of every segment.
pub fn extract_region_features(raster: &Raster, seg: &Segmentation) -> Vec<(FeatureVector, usize)> {
    let n = seg.num_segments();
    let (w, h) = (raster.width(), raster.height());
    #[derive(Clone)]
    struct Acc {
        count: usize,
        min_x: usize,
        max_x: usize,
        min_y: usize,
        max_y: usize,
        sum_x: f64,
        sum_y: f64,
        colors: Vec<[f32; 3]>,
    }
    let mut accs = vec![
        Acc {
            count: 0,
            min_x: usize::MAX,
            max_x: 0,
            min_y: usize::MAX,
            max_y: 0,
            sum_x: 0.0,
            sum_y: 0.0,
            colors: Vec::new(),
        };
        n
    ];
    for y in 0..h {
        for x in 0..w {
            let l = seg.label(x, y) as usize;
            let a = &mut accs[l];
            a.count += 1;
            a.min_x = a.min_x.min(x);
            a.max_x = a.max_x.max(x);
            a.min_y = a.min_y.min(y);
            a.max_y = a.max_y.max(y);
            a.sum_x += x as f64;
            a.sum_y += y as f64;
            a.colors.push(raster.get(x, y));
        }
    }
    let mut out = Vec::with_capacity(n);
    for a in accs.into_iter().filter(|a| a.count > 0) {
        let moments = color_moments(a.colors.iter().copied());
        let bw = (a.max_x - a.min_x + 1) as f32;
        let bh = (a.max_y - a.min_y + 1) as f32;
        let aspect = (bw / bh).min(8.0);
        let bbox_size = (bw * bh) / (w as f32 * h as f32);
        let area_ratio = a.count as f32 / (bw * bh);
        let centroid_x = (a.sum_x / a.count as f64) as f32 / w as f32;
        let centroid_y = (a.sum_y / a.count as f64) as f32 / h as f32;
        let mut components = Vec::with_capacity(IMAGE_DIM);
        components.extend_from_slice(&moments);
        components.extend_from_slice(&[aspect, bbox_size, area_ratio, centroid_x, centroid_y]);
        out.push((FeatureVector::from_components(components), a.count));
    }
    out
}

/// Builds a [`DataObject`] from region features, weighting each segment by
/// the square root of its pixel count.
pub fn regions_to_object(features: Vec<(FeatureVector, usize)>) -> Result<DataObject> {
    DataObject::new(
        features
            .into_iter()
            .map(|(v, count)| (v, (count as f32).sqrt()))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::raster::{RegionShape, RegionSpec, SceneSpec};
    use crate::image::segment::{segment, SegmenterParams};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn color_moments_of_constant_color() {
        let colors = [[0.25f32, 0.5, 0.75]; 10];
        let m = color_moments(colors.iter().copied());
        assert!((m[0] - 0.25).abs() < 1e-6);
        assert!((m[1] - 0.5).abs() < 1e-6);
        assert!((m[2] - 0.75).abs() < 1e-6);
        // Zero variance and skew.
        for &v in &m[3..9] {
            assert!(v.abs() < 1e-6);
        }
    }

    #[test]
    fn color_moments_capture_spread() {
        let colors = [[0.0f32, 0.0, 0.0], [1.0, 0.0, 0.0]];
        let m = color_moments(colors.iter().copied());
        assert!((m[0] - 0.5).abs() < 1e-6);
        assert!((m[3] - 0.5).abs() < 1e-6); // stddev of {0,1} is 0.5
        assert!(m[4].abs() < 1e-6);
    }

    #[test]
    fn skew_sign_tracks_asymmetry() {
        // Mostly low values with one high outlier: positive skew.
        let mut colors = vec![[0.1f32, 0.5, 0.5]; 9];
        colors.push([1.0, 0.5, 0.5]);
        let m = color_moments(colors.iter().copied());
        assert!(m[6] > 0.0);
    }

    #[test]
    fn extraction_produces_14d_features() {
        let scene = SceneSpec {
            background: [0.1, 0.1, 0.8],
            regions: vec![RegionSpec {
                shape: RegionShape::Rect,
                cx: 0.3,
                cy: 0.5,
                rx: 0.2,
                ry: 0.3,
                color: [0.9, 0.2, 0.1],
            }],
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let raster = scene.render(32, 32, 0.01, &mut rng);
        let seg = segment(&raster, &SegmenterParams::default(), &mut rng);
        let feats = extract_region_features(&raster, &seg);
        assert_eq!(feats.len(), seg.num_segments());
        for (v, count) in &feats {
            assert_eq!(v.dim(), IMAGE_DIM);
            assert!(*count > 0);
        }
        let obj = regions_to_object(feats).unwrap();
        assert_eq!(obj.dim(), IMAGE_DIM);
        assert!((obj.total_weight() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn bbox_features_are_sane() {
        // A rect occupying the left half: centroid_x ~ 0.25, area ratio ~ 1.
        let scene = SceneSpec {
            background: [0.9, 0.9, 0.9],
            regions: vec![RegionSpec {
                shape: RegionShape::Rect,
                cx: 0.25,
                cy: 0.5,
                rx: 0.25,
                ry: 0.5,
                color: [0.1, 0.1, 0.1],
            }],
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let raster = scene.render(40, 40, 0.0, &mut rng);
        let seg = segment(&raster, &SegmenterParams::default(), &mut rng);
        let feats = extract_region_features(&raster, &seg);
        // Find the dark region (mean red < 0.5).
        let dark = feats.iter().find(|(v, _)| v.get(0) < 0.5).unwrap();
        let v = &dark.0;
        assert!((v.get(12) - 0.25).abs() < 0.08, "centroid_x {}", v.get(12));
        assert!((v.get(11) - 1.0).abs() < 0.1, "area ratio {}", v.get(11));
        assert!(v.get(10) <= 0.6, "bbox size {}", v.get(10));
    }

    #[test]
    fn weights_follow_sqrt_area() {
        let scene = SceneSpec {
            background: [0.9, 0.9, 0.9],
            regions: vec![RegionSpec {
                shape: RegionShape::Rect,
                cx: 0.25,
                cy: 0.25,
                rx: 0.24,
                ry: 0.24,
                color: [0.1, 0.1, 0.1],
            }],
        };
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let raster = scene.render(64, 64, 0.0, &mut rng);
        let seg = segment(&raster, &SegmenterParams::default(), &mut rng);
        let feats = extract_region_features(&raster, &seg);
        let counts: Vec<usize> = feats.iter().map(|(_, c)| *c).collect();
        let obj = regions_to_object(feats).unwrap();
        // weight_i / weight_j == sqrt(count_i / count_j).
        let r_weights = obj.segment(0).weight / obj.segment(1).weight;
        let r_counts = ((counts[0] as f32) / (counts[1] as f32)).sqrt();
        assert!((r_weights - r_counts).abs() < 1e-4);
    }

    #[test]
    fn feature_ranges_cover_extraction() {
        let mins = feature_mins();
        let maxs = feature_maxs();
        assert_eq!(mins.len(), IMAGE_DIM);
        assert_eq!(maxs.len(), IMAGE_DIM);
        let scene = SceneSpec {
            background: [0.5, 0.3, 0.7],
            regions: vec![RegionSpec {
                shape: RegionShape::Ellipse,
                cx: 0.6,
                cy: 0.4,
                rx: 0.3,
                ry: 0.2,
                color: [0.2, 0.8, 0.3],
            }],
        };
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let raster = scene.render(32, 32, 0.05, &mut rng);
        let seg = segment(&raster, &SegmenterParams::default(), &mut rng);
        for (v, _) in extract_region_features(&raster, &seg) {
            for (i, &c) in v.components().iter().enumerate() {
                assert!(
                    c >= mins[i] - 1e-5 && c <= maxs[i] + 1e-5,
                    "dim {i} value {c} outside [{}, {}]",
                    mins[i],
                    maxs[i]
                );
            }
        }
    }
}
